//! Property-based tests for the DDR4 channel model's timing legality.

use proptest::prelude::*;
use rmcc_dram::channel::{Channel, ReqKind, TrafficClass};
use rmcc_dram::config::DramConfig;

proptest! {
    /// Completions never precede their service start, starts never precede
    /// issue, and every access takes at least a burst.
    #[test]
    fn timing_is_causal(reqs in prop::collection::vec((0u64..1_000_000, any::<u64>()), 1..300)) {
        let cfg = DramConfig::table1();
        let mut ch = Channel::new(cfg.clone());
        let mut t = 0u64;
        for (dt, addr) in reqs {
            t += dt;
            let c = ch.access(t, addr % (1 << 37), ReqKind::Read, TrafficClass::Data);
            prop_assert!(c.start >= t, "start {} before issue {}", c.start, t);
            prop_assert!(c.done >= c.start + cfg.t_burst);
        }
    }

    /// The shared data bus is never double-booked: all completions are
    /// pairwise separated by at least one burst.
    #[test]
    fn bus_is_exclusive(reqs in prop::collection::vec(any::<u64>(), 2..200)) {
        let cfg = DramConfig::table1();
        let mut ch = Channel::new(cfg.clone());
        let mut dones: Vec<u64> = reqs
            .iter()
            .map(|&a| ch.access(0, a % (1 << 37), ReqKind::Read, TrafficClass::Data).done)
            .collect();
        dones.sort_unstable();
        for w in dones.windows(2) {
            prop_assert!(w[1] >= w[0] + cfg.t_burst, "bursts overlap: {} vs {}", w[0], w[1]);
        }
    }

    /// Row-buffer outcome accounting matches the number of requests.
    #[test]
    fn stats_reconcile(reqs in prop::collection::vec((0u64..10_000, any::<u64>(), any::<bool>()), 1..300)) {
        let mut ch = Channel::new(DramConfig::table1());
        let mut t = 0;
        for (dt, addr, w) in &reqs {
            t += dt;
            let kind = if *w { ReqKind::Write } else { ReqKind::Read };
            ch.access(t, addr % (1 << 37), kind, TrafficClass::Counter);
        }
        let s = ch.stats();
        prop_assert_eq!(s.total_requests(), reqs.len() as u64);
        prop_assert_eq!(s.row_hits + s.row_closed + s.row_conflicts, reqs.len() as u64);
        prop_assert_eq!(s.classes[1].requests, reqs.len() as u64);
    }
}
