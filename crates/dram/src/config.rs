//! DDR4 timing and geometry configuration.
//!
//! Defaults follow Table I of the RMCC paper: 128 GB DDR4 at 3.2 GT/s,
//! tCL = tRCD = tRP = 13.75 ns, tRFC = 350 ns, one channel, eight ranks, a
//! 500 ns open-row timeout, and 256-entry read/write queues.

/// Simulation time unit: picoseconds. Integer picoseconds keep the model
/// deterministic and hashable while resolving the paper's 13.75 ns timings
/// exactly.
pub type Ps = u64;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: Ps = 1_000;

/// Converts nanoseconds (possibly fractional) to picoseconds.
pub fn ns(value: f64) -> Ps {
    (value * PS_PER_NS as f64).round() as Ps
}

/// DDR4 channel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Column access strobe latency.
    pub t_cl: Ps,
    /// Row-to-column delay.
    pub t_rcd: Ps,
    /// Row precharge time.
    pub t_rp: Ps,
    /// Refresh cycle time (bank unavailable while refreshing).
    pub t_rfc: Ps,
    /// Average refresh interval per rank.
    pub t_refi: Ps,
    /// Time to burst one 64 B line over the data bus
    /// (8 transfers at 3.2 GT/s on an 8-byte bus = 2.5 ns).
    pub t_burst: Ps,
    /// Open-row policy: a row left idle this long is considered precharged
    /// in the background ("500ns timeout" row buffer policy, Table I).
    pub row_timeout: Ps,
    /// Number of ranks on the channel.
    pub ranks: usize,
    /// Banks per rank (DDR4: 4 bank groups × 4 banks).
    pub banks_per_rank: usize,
    /// Row size in bytes (8 KB typical for DDR4 x8 devices).
    pub row_bytes: u64,
    /// Combined read/write queue capacity.
    pub queue_capacity: usize,
    /// FR-FCFS-Capped: maximum consecutive row-buffer hits a bank may
    /// service before the scheduler forces the row closed so older requests
    /// make progress.
    pub row_hit_cap: u32,
}

impl DramConfig {
    /// Table I configuration.
    pub fn table1() -> Self {
        DramConfig {
            t_cl: ns(13.75),
            t_rcd: ns(13.75),
            t_rp: ns(13.75),
            t_rfc: ns(350.0),
            t_refi: ns(7800.0),
            t_burst: ns(2.5),
            row_timeout: ns(500.0),
            ranks: 8,
            banks_per_rank: 16,
            row_bytes: 8 << 10,
            queue_capacity: 256,
            row_hit_cap: 4,
        }
    }

    /// Total banks across all ranks.
    pub fn total_banks(&self) -> usize {
        self.ranks * self.banks_per_rank
    }

    /// Latency of a row-buffer hit (CAS + burst).
    pub fn hit_latency(&self) -> Ps {
        self.t_cl + self.t_burst
    }

    /// Latency when the bank has no open row (ACT + CAS + burst).
    pub fn closed_latency(&self) -> Ps {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Latency of a row-buffer conflict (PRE + ACT + CAS + burst).
    pub fn conflict_latency(&self) -> Ps {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table1()
    }
}

impl std::fmt::Display for DramConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DDR4 channel:")?;
        writeln!(
            f,
            "  tCL/tRCD/tRP = {:.2}/{:.2}/{:.2} ns",
            self.t_cl as f64 / 1e3,
            self.t_rcd as f64 / 1e3,
            self.t_rp as f64 / 1e3
        )?;
        writeln!(
            f,
            "  tRFC = {:.0} ns, tREFI = {:.0} ns",
            self.t_rfc as f64 / 1e3,
            self.t_refi as f64 / 1e3
        )?;
        writeln!(
            f,
            "  ranks = {}, banks/rank = {}",
            self.ranks, self.banks_per_rank
        )?;
        writeln!(
            f,
            "  row buffer = {} B, timeout = {:.0} ns",
            self.row_bytes,
            self.row_timeout as f64 / 1e3
        )?;
        write!(
            f,
            "  queue = {} entries, row-hit cap = {}",
            self.queue_capacity, self.row_hit_cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion() {
        assert_eq!(ns(13.75), 13_750);
        assert_eq!(ns(0.0), 0);
        assert_eq!(ns(2.5), 2_500);
    }

    #[test]
    fn table1_matches_paper() {
        let c = DramConfig::table1();
        assert_eq!(c.t_cl, 13_750);
        assert_eq!(c.t_rfc, 350_000);
        assert_eq!(c.ranks, 8);
        assert_eq!(c.queue_capacity, 256);
        assert_eq!(c.total_banks(), 128);
    }

    #[test]
    fn latency_ordering() {
        let c = DramConfig::table1();
        assert!(c.hit_latency() < c.closed_latency());
        assert!(c.closed_latency() < c.conflict_latency());
    }

    #[test]
    fn display_mentions_key_timings() {
        let s = DramConfig::table1().to_string();
        assert!(s.contains("13.75"));
        assert!(s.contains("350"));
    }
}
