//! Physical-address → (rank, bank, row) mapping.
//!
//! Table I specifies an "XOR-based mapping function like Skylake", referring
//! to the DRAMA reverse-engineering work: bank bits are derived by XORing
//! pairs of address bits so that consecutive rows spread across banks and
//! row-conflict adversarial patterns are broken up.

use crate::config::DramConfig;

/// A decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Rank index on the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

/// XOR-based address mapping.
///
/// # Examples
///
/// ```
/// use rmcc_dram::config::DramConfig;
/// use rmcc_dram::mapping::AddressMapping;
///
/// let map = AddressMapping::new(&DramConfig::table1());
/// let a = map.decode(0);
/// let b = map.decode(64);
/// // Adjacent lines stay in the same row of the same bank.
/// assert_eq!((a.rank, a.bank, a.row), (b.rank, b.bank, b.row));
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapping {
    rank_bits: u32,
    bank_bits: u32,
    row_shift: u32,
}

impl AddressMapping {
    /// Builds the mapping for `config`'s geometry.
    ///
    /// # Panics
    ///
    /// Panics if rank or bank counts are not powers of two.
    pub fn new(config: &DramConfig) -> Self {
        assert!(
            config.ranks.is_power_of_two(),
            "rank count must be a power of two"
        );
        assert!(
            config.banks_per_rank.is_power_of_two(),
            "bank count must be a power of two"
        );
        AddressMapping {
            rank_bits: config.ranks.trailing_zeros(),
            bank_bits: config.banks_per_rank.trailing_zeros(),
            row_shift: config.row_bytes.trailing_zeros(),
        }
    }

    /// Decodes a byte address.
    pub fn decode(&self, byte_addr: u64) -> DramCoord {
        let row_all = byte_addr >> self.row_shift;
        // Plain (non-XOR) bank/rank fields from the low bits above the row
        // offset.
        let bank_plain = (row_all & ((1 << self.bank_bits) - 1)) as usize;
        let rank_plain = ((row_all >> self.bank_bits) & ((1 << self.rank_bits) - 1)) as usize;
        let row = row_all >> (self.bank_bits + self.rank_bits);
        // Skylake-style XOR: fold row bits into the bank/rank selects so
        // same-bank rows interleave (DRAMA functions XOR pairs of bits).
        let bank = bank_plain ^ (row as usize & ((1 << self.bank_bits) - 1));
        let rank = rank_plain ^ ((row >> self.bank_bits) as usize & ((1 << self.rank_bits) - 1));
        DramCoord { rank, bank, row }
    }

    /// Flat bank index across all ranks, for indexing bank-state arrays.
    pub fn flat_bank(&self, coord: DramCoord) -> usize {
        coord.rank * (1usize << self.bank_bits) + coord.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMapping {
        AddressMapping::new(&DramConfig::table1())
    }

    #[test]
    fn same_row_same_coord() {
        let m = map();
        let a = m.decode(0x12340);
        let b = m.decode(0x12340 + 63);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_is_injective_over_coords() {
        // Different addresses within a scan must never collide on
        // (rank, bank, row) + row offset; equivalently, the number of
        // distinct coords seen when striding by row_bytes must equal the
        // stride count up to the geometry size.
        let m = map();
        let cfg = DramConfig::table1();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let coord = m.decode(i * cfg.row_bytes);
            assert!(seen.insert(coord), "coord collision at stride {i}");
        }
    }

    #[test]
    fn row_strides_spread_across_banks() {
        // Sequential rows should hit different banks thanks to the XOR fold.
        let m = map();
        let cfg = DramConfig::table1();
        let banks: std::collections::HashSet<usize> = (0..16u64)
            .map(|i| {
                let c = m.decode(i * cfg.row_bytes);
                m.flat_bank(c)
            })
            .collect();
        assert!(banks.len() > 8, "only {} distinct banks", banks.len());
    }

    #[test]
    fn flat_bank_bounds() {
        let m = map();
        let cfg = DramConfig::table1();
        for i in 0..100_000u64 {
            let c = m.decode(i * 64);
            assert!(c.rank < cfg.ranks);
            assert!(c.bank < cfg.banks_per_rank);
            assert!(m.flat_bank(c) < cfg.total_banks());
        }
    }
}
