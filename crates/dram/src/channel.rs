//! Transaction-level DDR4 channel timing model.
//!
//! The model tracks per-bank open rows (with the paper's 500 ns timeout
//! policy), rank refresh windows, data-bus serialization, queue
//! backpressure, and an FR-FCFS-Capped row-hit streak cap. It plays the
//! role Ramulator plays in the paper: given a timestamped stream of
//! requests it answers "when does this access complete, and was it a row
//! hit?".

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::{DramConfig, Ps};
use crate::mapping::AddressMapping;

/// Read or write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// A 64 B read burst.
    Read,
    /// A 64 B write burst.
    Write,
}

/// What kind of traffic a request belongs to, for the Figure 12 bandwidth
/// breakdown (data, counters, level-0 overflow, level-1+ overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand data reads and dirty-data writebacks.
    Data,
    /// Counter-block and integrity-tree-node accesses.
    Counter,
    /// Re-encryption traffic caused by L0 (data-counter) overflows.
    OverflowL0,
    /// Re-encryption traffic caused by L1-and-higher overflows.
    OverflowHigher,
}

impl TrafficClass {
    /// All classes, in Figure 12's legend order.
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::Data,
        TrafficClass::Counter,
        TrafficClass::OverflowL0,
        TrafficClass::OverflowHigher,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Counter => 1,
            TrafficClass::OverflowL0 => 2,
            TrafficClass::OverflowHigher => 3,
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficClass::Data => write!(f, "data"),
            TrafficClass::Counter => write!(f, "counters"),
            TrafficClass::OverflowL0 => write!(f, "level 0 overflow"),
            TrafficClass::OverflowHigher => write!(f, "level 1+ overflow"),
        }
    }
}

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was precharged (idle timeout or first touch).
    Closed,
    /// A different row was open and had to be precharged first.
    Conflict,
}

/// Timing result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the channel actually started servicing the request.
    pub start: Ps,
    /// When the last data beat transferred.
    pub done: Ps,
    /// Row-buffer outcome.
    pub row: RowOutcome,
}

impl Completion {
    /// Total request latency from issue to completion.
    pub fn latency(&self, issued_at: Ps) -> Ps {
        self.done.saturating_sub(issued_at)
    }
}

/// Per-traffic-class counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests serviced.
    pub requests: u64,
    /// Data-bus busy time attributable to the class.
    pub bus_ps: Ps,
}

/// Channel-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to precharged banks.
    pub row_closed: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Per-class request/bus accounting.
    pub classes: [ClassStats; 4],
}

impl DramStats {
    /// Bus utilization of `class` over the elapsed window, in `[0, 1]`.
    pub fn utilization(&self, class: TrafficClass, elapsed: Ps) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.classes[class.index()].bus_ps as f64 / elapsed as f64
        }
    }

    /// Total serviced requests.
    pub fn total_requests(&self) -> u64 {
        self.reads + self.writes
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    ready_at: Ps,
    last_use: Ps,
    hit_streak: u32,
}

/// One DDR4 channel.
///
/// # Examples
///
/// ```
/// use rmcc_dram::channel::{Channel, ReqKind, RowOutcome, TrafficClass};
/// use rmcc_dram::config::DramConfig;
///
/// let mut ch = Channel::new(DramConfig::table1());
/// let first = ch.access(0, 0x1000, ReqKind::Read, TrafficClass::Data);
/// // A back-to-back access to the same row is a row hit and faster.
/// let second = ch.access(first.done, 0x1040, ReqKind::Read, TrafficClass::Data);
/// assert_eq!(second.row, RowOutcome::Hit);
/// assert!(second.done - second.start < first.done - first.start);
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: DramConfig,
    map: AddressMapping,
    banks: Vec<BankState>,
    bus_free: Ps,
    outstanding: BinaryHeap<Reverse<Ps>>,
    stats: DramStats,
}

impl Channel {
    /// Creates a channel with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if the geometry in `cfg` is not power-of-two (see
    /// [`AddressMapping::new`]).
    pub fn new(cfg: DramConfig) -> Self {
        let map = AddressMapping::new(&cfg);
        let banks = vec![
            BankState {
                open_row: None,
                ready_at: 0,
                last_use: 0,
                hit_streak: 0
            };
            cfg.total_banks()
        ];
        Channel {
            cfg,
            map,
            banks,
            bus_free: 0,
            outstanding: BinaryHeap::new(),
            stats: DramStats::default(),
        }
    }

    /// The configuration this channel models.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (end of warm-up) without touching timing state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Services a 64 B request issued at time `at` to byte address `addr`.
    ///
    /// Returns when the request started and finished and its row-buffer
    /// outcome. Calls may be non-monotonic in `at` by small amounts (the MC
    /// interleaves flows); the channel serializes via bank and bus state.
    pub fn access(&mut self, at: Ps, addr: u64, kind: ReqKind, class: TrafficClass) -> Completion {
        let mut start = at;

        // Queue backpressure: with `queue_capacity` requests in flight, a new
        // arrival waits until the earliest one drains.
        while let Some(&Reverse(earliest)) = self.outstanding.peek() {
            if earliest <= start {
                self.outstanding.pop();
            } else if self.outstanding.len() >= self.cfg.queue_capacity {
                start = earliest;
                self.outstanding.pop();
            } else {
                break;
            }
        }

        let coord = self.map.decode(addr);
        let flat = self.map.flat_bank(coord);

        // Refresh: rank `r` refreshes for tRFC every tREFI, staggered across
        // ranks. An access landing inside the window waits it out.
        let refi = self.cfg.t_refi;
        let offset = refi / self.cfg.ranks as Ps * coord.rank as Ps;
        let phase = (start + refi - (offset % refi)) % refi;
        if phase < self.cfg.t_rfc {
            start += self.cfg.t_rfc - phase;
        }

        let bank = &mut self.banks[flat];
        start = start.max(bank.ready_at);

        // Row-buffer state, honoring the 500 ns timeout policy and the
        // FR-FCFS row-hit cap.
        let timed_out = start.saturating_sub(bank.last_use) > self.cfg.row_timeout;
        let capped = bank.hit_streak >= self.cfg.row_hit_cap;
        let effective_row = if timed_out || capped {
            None
        } else {
            bank.open_row
        };
        let outcome = match effective_row {
            Some(r) if r == coord.row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        };
        let array_latency = match outcome {
            RowOutcome::Hit => self.cfg.t_cl,
            RowOutcome::Closed => self.cfg.t_rcd + self.cfg.t_cl,
            RowOutcome::Conflict => self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cl,
        };

        // Serialize the data burst on the shared bus.
        let data_start = (start + array_latency).max(self.bus_free);
        let done = data_start + self.cfg.t_burst;
        self.bus_free = done;

        bank.open_row = Some(coord.row);
        bank.ready_at = done;
        bank.last_use = done;
        bank.hit_streak = if outcome == RowOutcome::Hit {
            bank.hit_streak + 1
        } else {
            0
        };

        // Bookkeeping.
        match kind {
            ReqKind::Read => self.stats.reads += 1,
            ReqKind::Write => self.stats.writes += 1,
        }
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Closed => self.stats.row_closed += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        let cs = &mut self.stats.classes[class.index()];
        cs.requests += 1;
        cs.bus_ps += self.cfg.t_burst;

        self.outstanding.push(Reverse(done));
        Completion {
            start,
            done,
            row: outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ns;

    fn ch() -> Channel {
        Channel::new(DramConfig::table1())
    }

    #[test]
    fn cold_access_pays_activation() {
        let mut c = ch();
        let r = c.access(0, 0, ReqKind::Read, TrafficClass::Data);
        assert_eq!(r.row, RowOutcome::Closed);
        // tRCD + tCL + burst, possibly plus refresh skew.
        assert!(r.done >= ns(13.75) * 2 + ns(2.5));
    }

    #[test]
    fn row_hit_is_faster() {
        let mut c = ch();
        let a = c.access(0, 0x100, ReqKind::Read, TrafficClass::Data);
        let b = c.access(a.done, 0x140, ReqKind::Read, TrafficClass::Data);
        assert_eq!(b.row, RowOutcome::Hit);
        assert!(b.done - b.start < a.done - a.start);
    }

    #[test]
    fn conflict_pays_precharge() {
        let cfg = DramConfig::table1();
        let mut c = Channel::new(cfg.clone());
        let a = c.access(0, 0, ReqKind::Read, TrafficClass::Data);
        // Same bank, different row: rows that map to the same bank are
        // found by scanning.
        let map = AddressMapping::new(&cfg);
        let base = map.decode(0);
        let conflict_addr = (1..1_000_000u64)
            .map(|i| i * cfg.row_bytes)
            .find(|&addr| {
                let d = map.decode(addr);
                (d.rank, d.bank) == (base.rank, base.bank) && d.row != base.row
            })
            .expect("some address conflicts");
        let b = c.access(a.done, conflict_addr, ReqKind::Read, TrafficClass::Data);
        assert_eq!(b.row, RowOutcome::Conflict);
        assert!(b.done - b.start > a.done - a.start);
    }

    #[test]
    fn row_timeout_closes_bank() {
        let mut c = ch();
        let a = c.access(0, 0x100, ReqKind::Read, TrafficClass::Data);
        // Well past the 500 ns timeout: the row is treated as precharged.
        let b = c.access(
            a.done + ns(10_000.0),
            0x140,
            ReqKind::Read,
            TrafficClass::Data,
        );
        assert_eq!(b.row, RowOutcome::Closed);
    }

    #[test]
    fn hit_streak_cap_forces_closure() {
        let cfg = DramConfig::table1();
        let cap = cfg.row_hit_cap;
        let mut c = Channel::new(cfg);
        let mut t = 0;
        let mut outcomes = Vec::new();
        for i in 0..(cap as u64 + 2) {
            let r = c.access(t, 0x40 * i, ReqKind::Read, TrafficClass::Data);
            outcomes.push(r.row);
            t = r.done;
        }
        assert_eq!(outcomes[0], RowOutcome::Closed);
        assert!(outcomes[1..=cap as usize]
            .iter()
            .all(|&o| o == RowOutcome::Hit));
        assert_eq!(outcomes[cap as usize + 1], RowOutcome::Closed);
    }

    #[test]
    fn bus_serializes_parallel_banks() {
        let cfg = DramConfig::table1();
        let mut c = Channel::new(cfg.clone());
        // Two requests to different banks at the same instant cannot both
        // hold the data bus.
        let a = c.access(0, 0, ReqKind::Read, TrafficClass::Data);
        let b = c.access(0, cfg.row_bytes, ReqKind::Read, TrafficClass::Data);
        assert!(b.done >= a.done + cfg.t_burst || a.done >= b.done + cfg.t_burst);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = ch();
        c.access(0, 0, ReqKind::Read, TrafficClass::Data);
        c.access(100, 64, ReqKind::Write, TrafficClass::Counter);
        let s = c.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total_requests(), 2);
        assert_eq!(s.classes[0].requests, 1);
        assert_eq!(s.classes[1].requests, 1);
        assert!(s.utilization(TrafficClass::Data, 1_000_000) > 0.0);
        assert_eq!(s.utilization(TrafficClass::Data, 0), 0.0);
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut c = ch();
        let a = c.access(0, 0x100, ReqKind::Read, TrafficClass::Data);
        c.reset_stats();
        assert_eq!(c.stats().total_requests(), 0);
        // Timing state survives: the follow-up is still a row hit.
        let b = c.access(a.done, 0x140, ReqKind::Read, TrafficClass::Data);
        assert_eq!(b.row, RowOutcome::Hit);
    }

    #[test]
    fn queue_backpressure_delays_floods() {
        let cfg = DramConfig::table1();
        let cap = cfg.queue_capacity;
        let mut c = Channel::new(cfg.clone());
        // Issue far more requests than the queue holds, all at t = 0.
        let mut last_start = 0;
        for i in 0..(cap as u64 * 2) {
            let r = c.access(0, i * cfg.row_bytes, ReqKind::Read, TrafficClass::Data);
            last_start = last_start.max(r.start);
        }
        // Later requests must have been pushed past t = 0 by backpressure.
        assert!(last_start > 0);
    }

    #[test]
    fn refresh_window_delays_unlucky_access() {
        let cfg = DramConfig::table1();
        let mut c = Channel::new(cfg.clone());
        // Rank 0's refresh window starts at multiples of tREFI. An access
        // issued right at that boundary must wait out tRFC.
        let r = c.access(cfg.t_refi, 0, ReqKind::Read, TrafficClass::Data);
        assert!(r.start >= cfg.t_refi + cfg.t_rfc - 1);
    }

    #[test]
    fn completion_latency_helper() {
        let done = Completion {
            start: 100,
            done: 300,
            row: RowOutcome::Hit,
        };
        assert_eq!(done.latency(50), 250);
        assert_eq!(done.latency(400), 0);
    }
}
