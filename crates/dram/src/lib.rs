//! Cycle-level DDR4 DRAM timing model for the RMCC secure-memory
//! reproduction — the stand-in for the Ramulator back end the paper uses.
//!
//! * [`config`] — Table I timings (tCL/tRCD/tRP = 13.75 ns, tRFC = 350 ns,
//!   500 ns open-row timeout, 256-entry queues) and the picosecond time base.
//! * [`mapping`] — Skylake-like XOR-based address → (rank, bank, row)
//!   mapping.
//! * [`channel`] — the transaction-level channel model: per-bank row-buffer
//!   state, refresh windows, bus serialization, queue backpressure,
//!   FR-FCFS-Capped hit streaks, and per-traffic-class bandwidth accounting
//!   (for the Figure 12 breakdown).
//!
//! # Example
//!
//! ```
//! use rmcc_dram::channel::{Channel, ReqKind, TrafficClass};
//! use rmcc_dram::config::DramConfig;
//!
//! let mut dram = Channel::new(DramConfig::table1());
//! let done = dram.access(0, 0xabc0, ReqKind::Read, TrafficClass::Data);
//! assert!(done.done > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod channel;
pub mod config;
pub mod mapping;

pub use channel::{Channel, ClassStats, Completion, DramStats, ReqKind, RowOutcome, TrafficClass};
pub use config::{ns, DramConfig, Ps, PS_PER_NS};
pub use mapping::{AddressMapping, DramCoord};
