//! Cryptographic substrate for the RMCC secure-memory reproduction.
//!
//! This crate implements, from scratch, every cryptographic building block
//! the paper *"Self-Reinforcing Memoization for Cryptography Calculations in
//! Secure Memory Systems"* (MICRO 2022) relies on:
//!
//! * [`aes`] — FIPS-197 AES-128/AES-256 block encryption (encrypt-only, as
//!   counter mode needs), selectable per [`Backend`]: byte-wise reference,
//!   T-tables (`fast`, the default), or the bitsliced constant-time
//!   `hardened` circuit that processes 8 blocks per call.
//! * [`clmul`] — carry-less multiplication, including RMCC's truncated
//!   128×128→128 middle-bits combiner (Figure 11).
//! * [`otp`] — one-time-pad pipelines: the SGX-style baseline (address and
//!   counter in a single AES) and RMCC's split counter-only/address-only
//!   pipeline.
//! * [`mac`] — Galois-field dot-product MACs and pad-XOR block
//!   encryption/decryption (Figure 2).
//! * [`nist`] — a subset of the NIST SP 800-22 randomness suite used to
//!   reproduce the paper's §IV-D1 empirical randomness check.
//! * [`stats`] — the static invocation-cost model (AES/clmul per block per
//!   pipeline) and the deterministic paid/saved tally telemetry consumes.
//!
//! # Example: encrypt, MAC, verify, decrypt
//!
//! ```
//! use rmcc_crypto::mac::{compute_mac, verify_mac, xor_with_pads, MacKeys};
//! use rmcc_crypto::otp::{KeySet, OtpPipeline, RmccOtp};
//!
//! let pipeline = RmccOtp::new(KeySet::from_master(42));
//! let mac_keys = MacKeys::from_seed(42);
//!
//! let plaintext = [0x5au8; 64];
//! let (addr, counter) = (0x1234, 17);
//!
//! // Write path: encrypt + MAC.
//! let pads = pipeline.block_pads(addr, counter);
//! let ciphertext = xor_with_pads(&plaintext, &pads);
//! let mac = compute_mac(&mac_keys, &ciphertext, pads.mac);
//!
//! // Read path: verify + decrypt.
//! assert!(verify_mac(&mac_keys, &ciphertext, pads.mac, mac));
//! assert_eq!(xor_with_pads(&ciphertext, &pads), plaintext);
//! ```

#![forbid(unsafe_code)]
// Test code may use lossy casts freely; clippy.toml has no in-tests knob for them.
#![cfg_attr(test, allow(clippy::cast_possible_truncation))]
#![deny(missing_docs)]

pub mod aes;
mod bitslice;
pub mod clmul;
pub mod mac;
pub mod nist;
pub mod otp;
pub mod stats;

pub use aes::{Aes, AesVariant, Backend, KeyLengthError};
pub use clmul::{clmul128, clmul64, clmul_truncate_mid, Product256};
pub use mac::{compute_mac, verify_mac, xor_with_pads, DataBlock, MacKeys};
pub use otp::{BlockPads, KeySet, OtpPipeline, PadPurpose, RmccOtp, SgxOtp};
pub use stats::{CryptoCost, CryptoStats};
