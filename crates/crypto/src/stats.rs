//! Static invocation-cost model for the OTP pipelines, and a running tally.
//!
//! Telemetry wants "AES invocations saved vs. paid" and clmul counts without
//! instrumenting the AES core itself (whose call counts would double-count
//! key-schedule work and test traffic). Instead this module states, per
//! pipeline, how many primitive invocations one block's pads cost — derived
//! from the pipeline structure in [`crate::otp`] — and provides
//! [`CryptoStats`], the deterministic accumulator engines thread through
//! their read/write paths.

use crate::otp::WORDS_PER_BLOCK;

/// Primitive-invocation cost of producing one block's pads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CryptoCost {
    /// AES block-cipher invocations.
    pub aes: u64,
    /// Carry-less multiply + truncate combines.
    pub clmul: u64,
}

impl CryptoCost {
    /// The SGX-style baseline: one AES per word pad plus one for the MAC
    /// pad, no combines.
    pub const fn sgx_block() -> Self {
        CryptoCost {
            aes: WORDS_PER_BLOCK as u64 + 1,
            clmul: 0,
        }
    }

    /// RMCC's split pipeline, full path: two counter-only AES (encryption +
    /// MAC purposes) plus one address-only AES and one combine per pad.
    pub const fn rmcc_block() -> Self {
        CryptoCost {
            aes: 2 + WORDS_PER_BLOCK as u64 + 1,
            clmul: WORDS_PER_BLOCK as u64 + 1,
        }
    }

    /// The counter-only share of [`Self::rmcc_block`] — exactly what a
    /// memoization-table hit skips (§IV-B): the address-only AES and the
    /// combines still run, because they depend on the request's address.
    pub const fn rmcc_counter_share() -> Self {
        CryptoCost { aes: 2, clmul: 0 }
    }
}

/// Running tally of primitive invocations, split into paid and saved.
///
/// Deterministic by construction: plain counters, no clocks, no interior
/// mutability. `saved` counts the invocations a memoization hit avoided;
/// `paid + saved` is therefore the cost the baseline would have incurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CryptoStats {
    /// AES invocations actually executed.
    pub aes_paid: u64,
    /// AES invocations avoided by memoization hits.
    pub aes_saved: u64,
    /// Combines actually executed.
    pub clmul_ops: u64,
    /// MAC verifications performed.
    pub mac_verifies: u64,
}

impl CryptoStats {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fully paid pad computation of the given cost.
    pub fn pay(&mut self, cost: CryptoCost) {
        self.aes_paid = self.aes_paid.saturating_add(cost.aes);
        self.clmul_ops = self.clmul_ops.saturating_add(cost.clmul);
    }

    /// Records a pad computation where `saved` of `full` was skipped
    /// thanks to a memoization hit.
    pub fn pay_with_hit(&mut self, full: CryptoCost, saved: CryptoCost) {
        self.aes_paid = self
            .aes_paid
            .saturating_add(full.aes.saturating_sub(saved.aes));
        self.aes_saved = self.aes_saved.saturating_add(saved.aes);
        self.clmul_ops = self
            .clmul_ops
            .saturating_add(full.clmul.saturating_sub(saved.clmul));
    }

    /// Records one MAC verification.
    pub fn verify_mac(&mut self) {
        self.mac_verifies = self.mac_verifies.saturating_add(1);
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &CryptoStats) {
        self.aes_paid = self.aes_paid.saturating_add(other.aes_paid);
        self.aes_saved = self.aes_saved.saturating_add(other.aes_saved);
        self.clmul_ops = self.clmul_ops.saturating_add(other.clmul_ops);
        self.mac_verifies = self.mac_verifies.saturating_add(other.mac_verifies);
    }

    /// Fraction of would-be AES invocations that memoization saved, in
    /// `[0, 1]`.
    pub fn aes_saved_fraction(&self) -> f64 {
        let would_be = self.aes_paid.saturating_add(self.aes_saved);
        if would_be == 0 {
            0.0
        } else {
            self.aes_saved as f64 / would_be as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_match_pipeline_structure() {
        // 4 words per 64 B block: see otp::WORDS_PER_BLOCK.
        assert_eq!(CryptoCost::sgx_block(), CryptoCost { aes: 5, clmul: 0 });
        assert_eq!(CryptoCost::rmcc_block(), CryptoCost { aes: 7, clmul: 5 });
        assert_eq!(
            CryptoCost::rmcc_counter_share(),
            CryptoCost { aes: 2, clmul: 0 }
        );
    }

    #[test]
    fn hit_accounting_conserves_the_baseline_total() {
        let mut s = CryptoStats::new();
        s.pay(CryptoCost::rmcc_block());
        s.pay_with_hit(CryptoCost::rmcc_block(), CryptoCost::rmcc_counter_share());
        assert_eq!(s.aes_paid, 7 + 5);
        assert_eq!(s.aes_saved, 2);
        assert_eq!(s.clmul_ops, 10);
        // paid + saved equals two full-price blocks.
        assert_eq!(s.aes_paid + s.aes_saved, 2 * 7);
        assert!((s.aes_saved_fraction() - 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_verify_accumulate() {
        let mut a = CryptoStats::new();
        a.verify_mac();
        let mut b = CryptoStats::new();
        b.pay(CryptoCost::sgx_block());
        b.verify_mac();
        a.merge(&b);
        assert_eq!(a.mac_verifies, 2);
        assert_eq!(a.aes_paid, 5);
        assert_eq!(CryptoStats::default().aes_saved_fraction(), 0.0);
    }
}
