//! Bitsliced constant-time AES — the `hardened` backend.
//!
//! Eight 16-byte blocks are transposed into eight 128-bit *bit-planes*:
//! plane `k` holds bit `k` of every byte, and within a plane the bit at
//! position `byte_index * 8 + lane` belongs to byte `byte_index` of block
//! `lane`. Every AES round primitive then becomes a fixed sequence of
//! XOR/AND/rotate operations on whole planes:
//!
//! * **SubBytes** is a boolean circuit: the GF(2^8) inversion `x^254`
//!   (computed by an addition chain over a bitsliced field multiplier)
//!   followed by the affine transform. No table is ever indexed.
//! * **ShiftRows** permutes byte groups with plane rotations masked per
//!   state row (FIPS-197 state is column-major, so row `r` of column `c`
//!   is byte `r + 4c`).
//! * **MixColumns** uses an intra-column byte rotation plus a plane-level
//!   `xtime` (multiplying every byte by 2 is just a reassignment of
//!   planes with two conditional-free XOR corrections).
//! * **AddRoundKey** XORs pre-bitsliced round keys, each key byte
//!   replicated across all eight lanes of its byte group.
//!
//! The key schedule routes its `SubWord` steps through the same circuit,
//! so expansion is constant-time too. The module's defining property —
//! verified by the audit's R5 taint pass with **zero waivers** — is that
//! no key- or state-derived value ever reaches a branch condition, a
//! table index, or a lookup address. Timing depends only on the public
//! variant (round count), never on data.
//!
//! Outputs are bit-identical to the T-table and byte-wise reference
//! backends (`crates/crypto/tests/backend_differential.rs` pins all three
//! against each other and the NIST vectors).

use crate::aes::{AesVariant, Block, RCON};

/// The eight bit-planes of an 8-block batch.
type Planes = [u128; 8];

/// Bytes `r + 4c` (state row `r = 0`) of every column: the low byte group
/// of each 32-bit column group.
const ROW0: u128 = 0x0000_00ff_0000_00ff_0000_00ff_0000_00ff;
/// State row 1 byte groups.
const ROW1: u128 = ROW0 << 8;
/// State row 2 byte groups.
const ROW2: u128 = ROW0 << 16;
/// State row 3 byte groups.
const ROW3: u128 = ROW0 << 24;
/// Rows 0–2 of every column (everything `rot_word` pulls downward).
const LOW_ROWS: u128 = ROW0 | ROW1 | ROW2;

/// Bitsliced GF(2^8) multiply: schoolbook polynomial product of two
/// plane-sets followed by reduction modulo the AES polynomial
/// `x^8 + x^4 + x^3 + x + 1`. Pure AND/XOR — one call multiplies all 128
/// packed bytes pairwise.
fn gf_mul(a: Planes, b: Planes) -> Planes {
    let [a0, a1, a2, a3, a4, a5, a6, a7] = a;
    let [b0, b1, b2, b3, b4, b5, b6, b7] = b;
    // Product coefficients p_k = XOR over i + j = k of a_i AND b_j.
    let mut p0 = a0 & b0;
    let mut p1 = (a0 & b1) ^ (a1 & b0);
    let mut p2 = (a0 & b2) ^ (a1 & b1) ^ (a2 & b0);
    let mut p3 = (a0 & b3) ^ (a1 & b2) ^ (a2 & b1) ^ (a3 & b0);
    let mut p4 = (a0 & b4) ^ (a1 & b3) ^ (a2 & b2) ^ (a3 & b1) ^ (a4 & b0);
    let mut p5 = (a0 & b5) ^ (a1 & b4) ^ (a2 & b3) ^ (a3 & b2) ^ (a4 & b1) ^ (a5 & b0);
    let mut p6 = (a0 & b6) ^ (a1 & b5) ^ (a2 & b4) ^ (a3 & b3) ^ (a4 & b2) ^ (a5 & b1) ^ (a6 & b0);
    let mut p7 = (a0 & b7)
        ^ (a1 & b6)
        ^ (a2 & b5)
        ^ (a3 & b4)
        ^ (a4 & b3)
        ^ (a5 & b2)
        ^ (a6 & b1)
        ^ (a7 & b0);
    let mut p8 = (a1 & b7) ^ (a2 & b6) ^ (a3 & b5) ^ (a4 & b4) ^ (a5 & b3) ^ (a6 & b2) ^ (a7 & b1);
    let mut p9 = (a2 & b7) ^ (a3 & b6) ^ (a4 & b5) ^ (a5 & b4) ^ (a6 & b3) ^ (a7 & b2);
    let mut p10 = (a3 & b7) ^ (a4 & b6) ^ (a5 & b5) ^ (a6 & b4) ^ (a7 & b3);
    let p11 = (a4 & b7) ^ (a5 & b6) ^ (a6 & b5) ^ (a7 & b4);
    let p12 = (a5 & b7) ^ (a6 & b6) ^ (a7 & b5);
    let p13 = (a6 & b7) ^ (a7 & b6);
    let p14 = a7 & b7;
    // Reduction, high coefficient first: x^k ≡ x^{k-4} + x^{k-5} + x^{k-7}
    // + x^{k-8}, applied for k = 14 down to 8 so re-reducible terms
    // (k - 4 ≥ 8) are folded by a later step of the same sequence.
    p10 ^= p14;
    p9 ^= p14;
    p7 ^= p14;
    p6 ^= p14;
    p9 ^= p13;
    p8 ^= p13;
    p6 ^= p13;
    p5 ^= p13;
    p8 ^= p12;
    p7 ^= p12;
    p5 ^= p12;
    p4 ^= p12;
    p7 ^= p11;
    p6 ^= p11;
    p4 ^= p11;
    p3 ^= p11;
    p6 ^= p10;
    p5 ^= p10;
    p3 ^= p10;
    p2 ^= p10;
    p5 ^= p9;
    p4 ^= p9;
    p2 ^= p9;
    p1 ^= p9;
    p4 ^= p8;
    p3 ^= p8;
    p1 ^= p8;
    p0 ^= p8;
    [p0, p1, p2, p3, p4, p5, p6, p7]
}

/// Bitsliced GF(2^8) squaring. Squaring is linear in characteristic 2 —
/// `(Σ a_i x^i)^2 = Σ a_i x^{2i}` — so the product step is free and only
/// the reduction of the even exponents 8, 10, 12, 14 remains.
fn gf_sq(a: Planes) -> Planes {
    let [a0, a1, a2, a3, a4, a5, a6, a7] = a;
    // p0 = a0, p2 = a1, p4 = a2, p6 = a3, p8 = a4, p10 = a5, p12 = a6,
    // p14 = a7; odd coefficients are zero. Same reduction sequence as
    // `gf_mul`, with the zero terms dropped.
    let mut p0 = a0;
    let mut p1 = 0;
    let mut p2 = a1;
    let mut p3 = 0;
    let mut p4 = a2;
    let mut p5 = 0;
    let mut p6 = a3;
    let mut p7 = 0;
    let mut p8 = a4;
    let p9 = a7; // after k = 14 folds p14 into p9 (was zero)
    let mut p10 = a5;
    // k = 14 (p14 = a7)
    p10 ^= a7;
    p7 ^= a7;
    p6 ^= a7;
    // k = 12 (p12 = a6)
    p8 ^= a6;
    p7 ^= a6;
    p5 ^= a6;
    p4 ^= a6;
    // k = 10
    p6 ^= p10;
    p5 ^= p10;
    p3 ^= p10;
    p2 ^= p10;
    // k = 9
    p5 ^= p9;
    p4 ^= p9;
    p2 ^= p9;
    p1 ^= p9;
    // k = 8
    p4 ^= p8;
    p3 ^= p8;
    p1 ^= p8;
    p0 ^= p8;
    [p0, p1, p2, p3, p4, p5, p6, p7]
}

/// Bitsliced GF(2^8) inversion: `x^254` by addition chain
/// (254 = 240 + 12 + 2), mapping 0 to 0 as AES requires.
fn gf_inv(x: Planes) -> Planes {
    let x2 = gf_sq(x);
    let x3 = gf_mul(x2, x);
    let x6 = gf_sq(x3);
    let x12 = gf_sq(x6);
    let x15 = gf_mul(x12, x3);
    let x30 = gf_sq(x15);
    let x60 = gf_sq(x30);
    let x120 = gf_sq(x60);
    let x240 = gf_sq(x120);
    let x14 = gf_mul(x12, x2);
    gf_mul(x240, x14)
}

/// The S-box affine transform, plane-wise:
/// `out_k = in_k ^ in_{k+4} ^ in_{k+5} ^ in_{k+6} ^ in_{k+7}` (indices mod
/// 8) with the constant `0x63` XORed in as all-ones masks on planes 0, 1,
/// 5, and 6.
fn affine(x: Planes) -> Planes {
    let [x0, x1, x2, x3, x4, x5, x6, x7] = x;
    [
        x0 ^ x4 ^ x5 ^ x6 ^ x7 ^ u128::MAX,
        x1 ^ x5 ^ x6 ^ x7 ^ x0 ^ u128::MAX,
        x2 ^ x6 ^ x7 ^ x0 ^ x1,
        x3 ^ x7 ^ x0 ^ x1 ^ x2,
        x4 ^ x0 ^ x1 ^ x2 ^ x3,
        x5 ^ x1 ^ x2 ^ x3 ^ x4 ^ u128::MAX,
        x6 ^ x2 ^ x3 ^ x4 ^ x5 ^ u128::MAX,
        x7 ^ x3 ^ x4 ^ x5 ^ x6,
    ]
}

/// SubBytes on all 128 packed bytes: inversion then affine. This is the
/// whole point of the backend — a fixed circuit, identical work for every
/// input.
fn sub_bytes(planes: Planes) -> Planes {
    affine(gf_inv(planes))
}

/// ShiftRows on one plane. Row `r` of the output takes its bytes from 4
/// byte groups to the left (`+4r` byte positions, wrapping), which is a
/// plane rotation by `32r` bits masked to that row's byte groups.
fn shift_rows_plane(p: u128) -> u128 {
    (p & ROW0)
        | (p.rotate_right(32) & ROW1)
        | (p.rotate_right(64) & ROW2)
        | (p.rotate_right(96) & ROW3)
}

/// ShiftRows across all planes (a pure byte-position permutation, so each
/// plane transforms independently).
fn shift_rows(planes: Planes) -> Planes {
    planes.map(shift_rows_plane)
}

/// Rotates every column's bytes down by one (byte `r` takes byte
/// `r + 1 mod 4` of the same column): the "next byte in the column"
/// operand MixColumns combines with.
fn rot_word(p: u128) -> u128 {
    ((p >> 8) & LOW_ROWS) | ((p << 24) & ROW3)
}

/// MixColumns across all planes. With `u = s ^ rot(s)` and
/// `t = u ^ rot²(u)` (the XOR of all four bytes in the column), the output
/// is `s ^ t ^ xtime(u)`; `xtime` on planes is the reassignment
/// `[u7, u0^u7, u1, u2^u7, u3^u7, u4, u5, u6]`.
fn mix_columns(s: Planes) -> Planes {
    let [s0, s1, s2, s3, s4, s5, s6, s7] = s;
    let u0 = s0 ^ rot_word(s0);
    let u1 = s1 ^ rot_word(s1);
    let u2 = s2 ^ rot_word(s2);
    let u3 = s3 ^ rot_word(s3);
    let u4 = s4 ^ rot_word(s4);
    let u5 = s5 ^ rot_word(s5);
    let u6 = s6 ^ rot_word(s6);
    let u7 = s7 ^ rot_word(s7);
    let t0 = u0 ^ rot_word(rot_word(u0));
    let t1 = u1 ^ rot_word(rot_word(u1));
    let t2 = u2 ^ rot_word(rot_word(u2));
    let t3 = u3 ^ rot_word(rot_word(u3));
    let t4 = u4 ^ rot_word(rot_word(u4));
    let t5 = u5 ^ rot_word(rot_word(u5));
    let t6 = u6 ^ rot_word(rot_word(u6));
    let t7 = u7 ^ rot_word(rot_word(u7));
    [
        s0 ^ t0 ^ u7,
        s1 ^ t1 ^ u0 ^ u7,
        s2 ^ t2 ^ u1,
        s3 ^ t3 ^ u2 ^ u7,
        s4 ^ t4 ^ u3 ^ u7,
        s5 ^ t5 ^ u4,
        s6 ^ t6 ^ u5,
        s7 ^ t7 ^ u6,
    ]
}

/// XORs a round key's planes into the state planes.
fn xor_planes(state: Planes, rk: Planes) -> Planes {
    let [s0, s1, s2, s3, s4, s5, s6, s7] = state;
    let [k0, k1, k2, k3, k4, k5, k6, k7] = rk;
    [
        s0 ^ k0,
        s1 ^ k1,
        s2 ^ k2,
        s3 ^ k3,
        s4 ^ k4,
        s5 ^ k5,
        s6 ^ k6,
        s7 ^ k7,
    ]
}

/// Transposes 8 blocks into bit-planes.
fn pack8(blocks: &[Block; 8]) -> Planes {
    let mut p0 = 0u128;
    let mut p1 = 0u128;
    let mut p2 = 0u128;
    let mut p3 = 0u128;
    let mut p4 = 0u128;
    let mut p5 = 0u128;
    let mut p6 = 0u128;
    let mut p7 = 0u128;
    for (lane, block) in blocks.iter().enumerate() {
        for (pos, &byte) in block.iter().enumerate() {
            let base = pos * 8 + lane;
            let v = u128::from(byte);
            p0 |= (v & 1) << base;
            p1 |= ((v >> 1) & 1) << base;
            p2 |= ((v >> 2) & 1) << base;
            p3 |= ((v >> 3) & 1) << base;
            p4 |= ((v >> 4) & 1) << base;
            p5 |= ((v >> 5) & 1) << base;
            p6 |= ((v >> 6) & 1) << base;
            p7 |= ((v >> 7) & 1) << base;
        }
    }
    [p0, p1, p2, p3, p4, p5, p6, p7]
}

/// Transposes bit-planes back into 8 blocks.
fn unpack8(planes: Planes) -> [Block; 8] {
    let [p0, p1, p2, p3, p4, p5, p6, p7] = planes;
    let mut out = [[0u8; 16]; 8];
    for (lane, block) in out.iter_mut().enumerate() {
        for (pos, slot) in block.iter_mut().enumerate() {
            let base = pos * 8 + lane;
            let v = ((p0 >> base) & 1)
                | (((p1 >> base) & 1) << 1)
                | (((p2 >> base) & 1) << 2)
                | (((p3 >> base) & 1) << 3)
                | (((p4 >> base) & 1) << 4)
                | (((p5 >> base) & 1) << 5)
                | (((p6 >> base) & 1) << 6)
                | (((p7 >> base) & 1) << 7);
            *slot = u8::try_from(v).unwrap_or(0);
        }
    }
    out
}

/// SubWord for the schedule: S-box four bytes through the circuit, each
/// byte in its own bit position (the circuit is position-independent, so
/// any packing where each position holds one byte works).
fn sub_word(word: [u8; 4]) -> [u8; 4] {
    let mut p0 = 0u128;
    let mut p1 = 0u128;
    let mut p2 = 0u128;
    let mut p3 = 0u128;
    let mut p4 = 0u128;
    let mut p5 = 0u128;
    let mut p6 = 0u128;
    let mut p7 = 0u128;
    for (pos, &byte) in word.iter().enumerate() {
        let v = u128::from(byte);
        p0 |= (v & 1) << pos;
        p1 |= ((v >> 1) & 1) << pos;
        p2 |= ((v >> 2) & 1) << pos;
        p3 |= ((v >> 3) & 1) << pos;
        p4 |= ((v >> 4) & 1) << pos;
        p5 |= ((v >> 5) & 1) << pos;
        p6 |= ((v >> 6) & 1) << pos;
        p7 |= ((v >> 7) & 1) << pos;
    }
    let [q0, q1, q2, q3, q4, q5, q6, q7] = sub_bytes([p0, p1, p2, p3, p4, p5, p6, p7]);
    let mut out = [0u8; 4];
    for (pos, slot) in out.iter_mut().enumerate() {
        let v = ((q0 >> pos) & 1)
            | (((q1 >> pos) & 1) << 1)
            | (((q2 >> pos) & 1) << 2)
            | (((q3 >> pos) & 1) << 3)
            | (((q4 >> pos) & 1) << 4)
            | (((q5 >> pos) & 1) << 5)
            | (((q6 >> pos) & 1) << 6)
            | (((q7 >> pos) & 1) << 7);
        *slot = u8::try_from(v).unwrap_or(0);
    }
    out
}

/// Bitslices one 16-byte round key: each key byte's bits are replicated
/// across all eight lanes of its byte group, so AddRoundKey is a plain
/// plane XOR.
fn slice_round_key(bytes: &[u8]) -> Planes {
    let mut p0 = 0u128;
    let mut p1 = 0u128;
    let mut p2 = 0u128;
    let mut p3 = 0u128;
    let mut p4 = 0u128;
    let mut p5 = 0u128;
    let mut p6 = 0u128;
    let mut p7 = 0u128;
    for (pos, &byte) in bytes.iter().take(16).enumerate() {
        let v = u128::from(byte);
        let lanes = pos * 8;
        p0 |= ((v & 1) * 0xff) << lanes;
        p1 |= (((v >> 1) & 1) * 0xff) << lanes;
        p2 |= (((v >> 2) & 1) * 0xff) << lanes;
        p3 |= (((v >> 3) & 1) * 0xff) << lanes;
        p4 |= (((v >> 4) & 1) * 0xff) << lanes;
        p5 |= (((v >> 5) & 1) * 0xff) << lanes;
        p6 |= (((v >> 6) & 1) * 0xff) << lanes;
        p7 |= (((v >> 7) & 1) * 0xff) << lanes;
    }
    [p0, p1, p2, p3, p4, p5, p6, p7]
}

/// A bitsliced key schedule, ready to encrypt 8-block batches.
///
/// The schedule is held as pre-bitsliced planes split into the whitening
/// key, the middle-round keys, and the final-round key, so the round loop
/// needs no slice destructuring or index arithmetic at all.
#[derive(Clone)]
pub(crate) struct Sliced {
    /// Whitening (round 0) key planes.
    opening: Planes,
    /// One plane-set per middle round.
    inner: Vec<Planes>,
    /// Final-round key planes.
    closing: Planes,
}

impl Sliced {
    /// Expands `key` for `variant` entirely through the constant-time
    /// circuit (SubWord included). The caller — [`crate::aes::Aes`]'s
    /// checked constructors — guarantees `key` has the variant's exact
    /// length; no length branch happens here, by design (a branch on
    /// `key.len()` would itself be a secret-adjacent condition under the
    /// audit's conservative taint rules).
    pub(crate) fn expand(key: &[u8], variant: AesVariant) -> Self {
        // Schedule geometry from the public variant selector alone (word
        // count spelled out per variant rather than derived from the key
        // slice, so no secret-adjacent value ever steers the loop below).
        let nk = match variant {
            AesVariant::Aes128 => 4,
            AesVariant::Aes256 => 8,
        };
        let nr = variant.rounds();
        let total_words = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        w.extend(key.chunks_exact(4).map(|c| {
            let mut word = [0u8; 4];
            word.copy_from_slice(c);
            word
        }));
        for i in nk..total_words {
            let mut temp = w.last().copied().unwrap_or_default();
            if i % nk == 0 {
                temp.rotate_left(1);
                temp = sub_word(temp);
                let rc = RCON.get(i / nk - 1).copied().unwrap_or(0);
                for (t, r) in temp.iter_mut().zip([rc, 0, 0, 0]) {
                    *t ^= r;
                }
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            let mut word = w.get(i - nk).copied().unwrap_or_default();
            for (dst, src) in word.iter_mut().zip(temp.iter()) {
                *dst ^= src;
            }
            w.push(word);
        }
        let mut planes: Vec<Planes> = w
            .chunks_exact(4)
            .map(|quad| {
                let mut bytes = [0u8; 16];
                for (dst, src) in bytes.chunks_exact_mut(4).zip(quad.iter()) {
                    dst.copy_from_slice(src);
                }
                slice_round_key(&bytes)
            })
            .collect();
        let closing = planes.pop().unwrap_or([0; 8]);
        let opening = planes.first().copied().unwrap_or([0; 8]);
        let inner: Vec<Planes> = planes.into_iter().skip(1).collect();
        Sliced {
            opening,
            inner,
            closing,
        }
    }

    /// Encrypts 8 blocks in lockstep through the plane circuit.
    pub(crate) fn encrypt8(&self, blocks: &[Block; 8]) -> [Block; 8] {
        let mut planes = pack8(blocks);
        planes = xor_planes(planes, self.opening);
        for rk in &self.inner {
            planes = xor_planes(mix_columns(shift_rows(sub_bytes(planes))), *rk);
        }
        planes = xor_planes(shift_rows(sub_bytes(planes)), self.closing);
        unpack8(planes)
    }

    /// Encrypts up to 8 blocks in place (shorter slices occupy the low
    /// lanes; unused lanes run on zero blocks and are discarded). Work is
    /// independent of how many lanes are live — a partial batch costs the
    /// same as a full one, as constant-time code must.
    pub(crate) fn encrypt_upto8(&self, io: &mut [Block]) {
        let mut lanes = [[0u8; 16]; 8];
        for (lane, block) in lanes.iter_mut().zip(io.iter()) {
            *lane = *block;
        }
        let out = self.encrypt8(&lanes);
        for (dst, src) in io.iter_mut().zip(out.iter()) {
            *dst = *src;
        }
    }

    /// Encrypts a single block (one live lane).
    pub(crate) fn encrypt_one(&self, input: Block) -> Block {
        let mut io = [input];
        self.encrypt_upto8(&mut io);
        let [out] = io;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar GF(2^8) multiply (Russian-peasant), the oracle for the
    /// bitsliced field ops.
    fn gf_mul_scalar(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1b;
            }
            b >>= 1;
        }
        acc
    }

    /// Packs one byte value into every position of a plane-set.
    fn splat(b: u8) -> Planes {
        let mut planes = [0u128; 8];
        for (k, plane) in planes.iter_mut().enumerate() {
            if (b >> k) & 1 != 0 {
                *plane = u128::MAX;
            }
        }
        planes
    }

    /// Reads the byte at bit position 0 of a plane-set.
    fn read0(planes: Planes) -> u8 {
        let mut v = 0u8;
        for (k, plane) in planes.iter().enumerate() {
            v |= (((plane) & 1) as u8) << k;
        }
        v
    }

    #[test]
    fn gf_mul_matches_scalar_on_a_sweep() {
        for a in (0u16..256).step_by(7) {
            for b in (0u16..256).step_by(11) {
                let (a, b) = (a as u8, b as u8);
                assert_eq!(
                    read0(gf_mul(splat(a), splat(b))),
                    gf_mul_scalar(a, b),
                    "gf_mul({a:#x}, {b:#x})"
                );
            }
        }
    }

    #[test]
    fn gf_sq_equals_self_multiplication_everywhere() {
        for v in 0u16..256 {
            let v = v as u8;
            assert_eq!(
                gf_sq(splat(v)),
                gf_mul(splat(v), splat(v)),
                "square of {v:#x}"
            );
        }
    }

    #[test]
    fn circuit_sbox_matches_the_table_for_all_256_inputs() {
        for v in 0u16..256 {
            let v = v as u8;
            assert_eq!(
                read0(sub_bytes(splat(v))),
                crate::aes::sbox(v),
                "S-box({v:#x})"
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrips() {
        let mut blocks = [[0u8; 16]; 8];
        let mut x = 0x9e37_79b9u32;
        for block in blocks.iter_mut() {
            for b in block.iter_mut() {
                x = x.wrapping_mul(0x01000193).wrapping_add(1);
                *b = (x >> 24) as u8;
            }
        }
        assert_eq!(unpack8(pack8(&blocks)), blocks);
    }

    #[test]
    fn shift_rows_matches_the_bytewise_permutation() {
        // One distinct byte per position in lane 0; the plane permutation
        // must realize out(r, c) = in(r, (c + r) % 4) on byte r + 4c.
        let mut block = [0u8; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = 0x10 + i as u8;
        }
        let mut blocks = [[0u8; 16]; 8];
        blocks[0] = block;
        let [out, ..] = unpack8(shift_rows(pack8(&blocks)));
        let mut expect = block;
        // FIPS-197 ShiftRows as swap chains (row r rotates left by r).
        expect.swap(1, 5);
        expect.swap(5, 9);
        expect.swap(9, 13);
        expect.swap(2, 10);
        expect.swap(6, 14);
        expect.swap(3, 7);
        expect.swap(3, 11);
        expect.swap(3, 15);
        assert_eq!(out, expect);
    }

    #[test]
    fn mix_columns_matches_the_bytewise_reference() {
        let mut x = 0xdead_beefu32;
        for _ in 0..32 {
            let mut block = [0u8; 16];
            for b in block.iter_mut() {
                x = x.wrapping_mul(0x01000193).wrapping_add(7);
                *b = (x >> 24) as u8;
            }
            let mut blocks = [[0u8; 16]; 8];
            blocks[3] = block;
            let out = unpack8(mix_columns(pack8(&blocks)))[3];
            let mut expect = block;
            for col in expect.chunks_exact_mut(4) {
                if let [a, b, c, d] = *col {
                    let t = a ^ b ^ c ^ d;
                    let x2 = |v: u8| gf_mul_scalar(v, 2);
                    col.copy_from_slice(&[
                        a ^ t ^ x2(a ^ b),
                        b ^ t ^ x2(b ^ c),
                        c ^ t ^ x2(c ^ d),
                        d ^ t ^ x2(d ^ a),
                    ]);
                }
            }
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn fips197_vectors_encrypt_correctly_in_every_lane() {
        // FIPS-197 Appendix B (AES-128) in all 8 lanes at once.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let sliced = Sliced::expand(&key, AesVariant::Aes128);
        assert_eq!(sliced.encrypt8(&[pt; 8]), [expect; 8]);

        // FIPS-197 Appendix C.3 (AES-256), single lane.
        let key256: [u8; 32] = core::array::from_fn(|i| i as u8);
        let pt2: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expect256 = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let sliced256 = Sliced::expand(&key256, AesVariant::Aes256);
        assert_eq!(sliced256.encrypt_one(pt2), expect256);
    }

    #[test]
    fn distinct_lanes_encrypt_independently() {
        let key = [0x42u8; 16];
        let sliced = Sliced::expand(&key, AesVariant::Aes128);
        let blocks: [Block; 8] = core::array::from_fn(|lane| {
            let mut b = [0u8; 16];
            b[0] = lane as u8;
            b
        });
        let out = sliced.encrypt8(&blocks);
        for lane in 0..8 {
            assert_eq!(out[lane], sliced.encrypt_one(blocks[lane]), "lane {lane}");
            for other in lane + 1..8 {
                assert_ne!(out[lane], out[other], "lanes {lane}/{other} collided");
            }
        }
    }

    #[test]
    fn partial_batches_match_single_encryptions() {
        let sliced = Sliced::expand(&[7u8; 16], AesVariant::Aes128);
        for n in 1..=8usize {
            let mut io: Vec<Block> = (0..n)
                .map(|i| core::array::from_fn(|j| (i * 16 + j) as u8))
                .collect();
            let expect: Vec<Block> = io.iter().map(|b| sliced.encrypt_one(*b)).collect();
            sliced.encrypt_upto8(&mut io);
            assert_eq!(io, expect, "partial batch of {n}");
        }
    }
}
