//! One-time-pad (OTP) construction for counter-mode secure memory.
//!
//! Two OTP pipelines are provided, matching the paper:
//!
//! * [`SgxOtp`] — the baseline (Figure 2): a single AES invocation takes
//!   *both* the block's address and its write counter, so nothing can start
//!   until the counter is known.
//! * [`RmccOtp`] — RMCC's split pipeline (Figure 11): one AES depends only on
//!   the counter (`AES_k(0^72 ‖ ctr)`), another only on the address
//!   (`AES_k'(addr ‖ 0^64)`), and a truncated carry-less multiplication
//!   combines them. The counter-only half is what the memoization table
//!   stores; the address-only half is computed while DRAM is busy.
//!
//! Both pipelines derive **different pads for encryption and for MAC
//! generation** by using distinct AES keys, as SGX does (paper Figure 11
//! caption).

use std::cell::RefCell;

use crate::aes::{Aes, Backend, BATCH_BLOCKS};
use crate::clmul::clmul_truncate_mid;

/// Number of 128-bit words in a 64-byte memory block.
pub const WORDS_PER_BLOCK: usize = 4;

/// Width of a write counter in bits (SGX counters are 56-bit, §II-A).
pub const COUNTER_BITS: u32 = 56;

/// Maximum representable counter value (2^56 - 1).
pub const COUNTER_MAX: u64 = (1 << COUNTER_BITS) - 1;

/// What a pad will be used for. Encryption and MAC pads must differ for the
/// same (address, counter) pair, so each purpose uses its own AES key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PadPurpose {
    /// Pad XORed with plaintext/ciphertext.
    Encryption,
    /// Pad XORed with the GF dot product to form the MAC.
    Mac,
}

/// The set of AES keys a memory controller holds.
///
/// # Examples
///
/// ```
/// use rmcc_crypto::otp::KeySet;
///
/// let keys = KeySet::from_master(0xfeed_beef);
/// // Deterministic: the same master seed derives the same keys.
/// assert_eq!(
///     KeySet::from_master(0xfeed_beef).encryption().encrypt_u128(1),
///     keys.encryption().encrypt_u128(1),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct KeySet {
    /// Key for encryption pads (baseline) / counter-only AES (RMCC).
    enc: Aes,
    /// Key for MAC pads (baseline) / counter-only MAC AES (RMCC).
    mac: Aes,
    /// RMCC address-only AES key for encryption pads.
    addr_enc: Aes,
    /// RMCC address-only AES key for MAC pads.
    addr_mac: Aes,
}

impl KeySet {
    /// Derives four independent AES-128 keys from a master seed.
    ///
    /// Real hardware would use a DRBG seeded at boot; deriving via AES of
    /// distinct constants gives the same independence for simulation.
    pub fn from_master(master: u64) -> Self {
        Self::from_master_with(master, crate::aes::AesVariant::Aes128)
    }

    /// Derives the key set for a chosen AES variant. The paper's §VI
    /// sensitivity study models the "quantum safe" AES-256 (14 rounds,
    /// 22 ns); this constructor makes the functional engine match.
    ///
    /// The AES backend comes from `RMCC_BACKEND` ([`Backend::from_env`]);
    /// use [`KeySet::from_master_on`] to pin one explicitly.
    pub fn from_master_with(master: u64, variant: crate::aes::AesVariant) -> Self {
        Self::from_master_on(master, variant, Backend::from_env())
    }

    /// Derives the key set for a chosen AES variant on an explicit
    /// backend. Backends are ciphertext-identical, so the derived keys —
    /// and every pad ever produced from them — are bit-identical across
    /// backends; only the timing profile changes.
    pub fn from_master_on(master: u64, variant: crate::aes::AesVariant, backend: Backend) -> Self {
        let mut mk = [0u8; 16];
        let (mk_lo, mk_hi) = mk.split_at_mut(8);
        mk_lo.copy_from_slice(&master.to_be_bytes());
        mk_hi.copy_from_slice(&(!master).to_be_bytes());
        let root = Aes::new_128_on(&mk, backend);
        let derive = |label: u128| {
            let lo = root.encrypt_u128(label);
            match variant {
                crate::aes::AesVariant::Aes128 => Aes::new_128_on(&lo.to_be_bytes(), backend),
                crate::aes::AesVariant::Aes256 => {
                    let hi = root.encrypt_u128(label | 1 << 64);
                    let mut key = [0u8; 32];
                    let (key_lo, key_hi) = key.split_at_mut(16);
                    key_lo.copy_from_slice(&lo.to_be_bytes());
                    key_hi.copy_from_slice(&hi.to_be_bytes());
                    Aes::new_256_on(&key, backend)
                }
            }
        };
        KeySet {
            enc: derive(1),
            mac: derive(2),
            addr_enc: derive(3),
            addr_mac: derive(4),
        }
    }

    /// The AES variant the keys were expanded for.
    pub fn variant(&self) -> crate::aes::AesVariant {
        self.enc.variant()
    }

    /// The AES backend the keys were expanded on.
    pub fn backend(&self) -> Backend {
        self.enc.backend()
    }

    /// The encryption-pad key (counter-only key under RMCC).
    pub fn encryption(&self) -> &Aes {
        &self.enc
    }

    /// The MAC-pad key (counter-only MAC key under RMCC).
    pub fn mac(&self) -> &Aes {
        &self.mac
    }

    /// RMCC's address-only key for the given purpose.
    pub fn address_only(&self, purpose: PadPurpose) -> &Aes {
        match purpose {
            PadPurpose::Encryption => &self.addr_enc,
            PadPurpose::Mac => &self.addr_mac,
        }
    }

    /// The counter-only key for the given purpose (also the baseline key).
    pub fn counter_only(&self, purpose: PadPurpose) -> &Aes {
        match purpose {
            PadPurpose::Encryption => &self.enc,
            PadPurpose::Mac => &self.mac,
        }
    }
}

/// The pads needed to process one 64-byte block: four 128-bit encryption
/// pads (one per word) and one MAC pad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockPads {
    /// One pad per 128-bit word of the data block.
    pub words: [u128; WORDS_PER_BLOCK],
    /// Pad folded into the MAC computation.
    pub mac: u128,
}

/// An OTP construction: anything that can turn `(address, counter)` into the
/// pads for a block.
///
/// The trait is object-safe so simulators can switch pipelines at runtime.
pub trait OtpPipeline: Send {
    /// Computes all pads for the 64-byte block at `block_addr` (a *block*
    /// address, i.e. byte address / 64) with write counter `ctr`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ctr` exceeds [`COUNTER_MAX`].
    fn block_pads(&self, block_addr: u64, ctr: u64) -> BlockPads;

    /// Computes only the MAC pad: exactly `block_pads(block_addr, ctr).mac`.
    ///
    /// Integrity-tree verification authenticates node images without ever
    /// decrypting them, so it needs none of the data-word pads. The default
    /// derives the full block and discards the words; implementations
    /// override it with the narrow pipeline so tree walks do not pay
    /// [`WORDS_PER_BLOCK`] wasted pad derivations per node.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ctr` exceeds [`COUNTER_MAX`].
    fn mac_pad(&self, block_addr: u64, ctr: u64) -> u128 {
        // audit:allow(R5, reason = "counters are public metadata (stored in plaintext in the tree); deriving pads from (addr, ctr) is the pipeline contract")
        self.block_pads(block_addr, ctr).mac
    }

    /// Hints that the pads for these `(block_addr, ctr)` requests are
    /// about to be asked for, letting the pipeline derive them through a
    /// batched AES path ahead of time. Purely a wall-clock accelerator:
    /// subsequent [`OtpPipeline::block_pads`]/[`OtpPipeline::mac_pad`]
    /// calls return bit-identical values whether or not this ran, and the
    /// caller's modeled crypto accounting is charged at request time
    /// either way. The default is a no-op (the baseline pipeline has no
    /// batch path and no memo to warm).
    fn warm_pads(&self, reqs: &[(u64, u64)]) {
        let _ = reqs;
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Packs the baseline AES input: `µ ‖ address ‖ word_index ‖ counter`
/// (Figure 2a: 8b + 56b + 8b + 56b = 128b).
fn sgx_tweak(block_addr: u64, word_index: u8, ctr: u64) -> u128 {
    debug_assert!(ctr <= COUNTER_MAX, "counter overflows 56 bits");
    let mu = 0x5au128; // fixed domain-separation byte, as in the MEE
    (mu << 120)
        | ((block_addr as u128 & ((1 << 56) - 1)) << 64)
        | ((word_index as u128) << 56)
        | (ctr as u128 & ((1 << 56) - 1))
}

/// Baseline SGX-style pipeline: one AES per pad, taking address *and*
/// counter together.
///
/// # Examples
///
/// ```
/// use rmcc_crypto::otp::{KeySet, OtpPipeline, SgxOtp};
///
/// let pipe = SgxOtp::new(KeySet::from_master(1));
/// let pads = pipe.block_pads(0x1000, 7);
/// // Different counters give completely different pads for the same block.
/// assert_ne!(pads, pipe.block_pads(0x1000, 8));
/// ```
#[derive(Clone)]
pub struct SgxOtp {
    keys: KeySet,
}

impl std::fmt::Debug for SgxOtp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never expose the key set through Debug output.
        f.debug_struct("SgxOtp").finish_non_exhaustive()
    }
}

impl SgxOtp {
    /// Creates the baseline pipeline over `keys`.
    pub fn new(keys: KeySet) -> Self {
        SgxOtp { keys }
    }
}

impl OtpPipeline for SgxOtp {
    fn block_pads(&self, block_addr: u64, ctr: u64) -> BlockPads {
        assert!(ctr <= COUNTER_MAX, "counter overflows 56 bits");
        let mut words = [0u128; WORDS_PER_BLOCK];
        for (i, w) in (0u8..).zip(words.iter_mut()) {
            *w = self.keys.enc.encrypt_u128(sgx_tweak(block_addr, i, ctr));
        }
        let mac = self.keys.mac.encrypt_u128(sgx_tweak(block_addr, 0xff, ctr));
        BlockPads { words, mac }
    }

    fn mac_pad(&self, block_addr: u64, ctr: u64) -> u128 {
        assert!(ctr <= COUNTER_MAX, "counter overflows 56 bits");
        self.keys.mac.encrypt_u128(sgx_tweak(block_addr, 0xff, ctr))
    }

    fn name(&self) -> &'static str {
        "sgx-baseline"
    }
}

/// Packs the address-only AES input for one 128-bit word of a block:
/// µ1 ‖ µ2 ‖ addr_56(word-granular) ‖ 0^64 — the word index is folded into
/// the low bits of the 56-bit address field, since each 128-bit word of a
/// block has its own address (Figure 2 / §II-A).
fn addr_input(block_addr: u64, word_index: u8) -> u128 {
    let word_addr = ((block_addr << 2) | word_index as u64) & ((1 << 56) - 1);
    let mu = 0xa5_00u128; // µ1 ‖ µ2 domain separation
    (mu << 112) | ((word_addr as u128) << 64)
}

/// Number of slots in each way of the transparent pad memo (power of two).
const MEMO_SLOTS: usize = 1 << 14;

/// Direct-mapped slot index for `(block_addr, ctr)`: a multiplicative mix,
/// taking the top bits so nearby addresses and counters spread apart.
fn memo_index(block_addr: u64, ctr: u64) -> usize {
    let mixed = (block_addr ^ ctr.rotate_left(29)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    usize::try_from(mixed >> 50).unwrap_or(0)
}

/// One direct-mapped entry of the full-block pad memo. `ctr == u64::MAX`
/// marks an empty slot — write counters are 56-bit, so no real key collides
/// with the sentinel.
#[derive(Clone, Copy)]
struct PadSlot {
    addr: u64,
    ctr: u64,
    pads: BlockPads,
}

/// One direct-mapped entry of the MAC-pad-only memo.
#[derive(Clone, Copy)]
struct MacSlot {
    addr: u64,
    ctr: u64,
    mac: u128,
}

/// The pipeline's transparent memoization state — the paper's titular trick
/// applied to the reproduction's own wall clock. Both ways live in the same
/// trust domain as the [`KeySet`]: pads are secret material and never leave
/// the modeled memory controller.
#[derive(Clone)]
struct PadMemo {
    blocks: Vec<PadSlot>,
    macs: Vec<MacSlot>,
}

impl PadMemo {
    fn new() -> Self {
        PadMemo {
            blocks: vec![
                PadSlot {
                    addr: 0,
                    ctr: u64::MAX,
                    pads: BlockPads::default(),
                };
                MEMO_SLOTS
            ],
            macs: vec![
                MacSlot {
                    addr: 0,
                    ctr: u64::MAX,
                    mac: 0,
                };
                MEMO_SLOTS
            ],
        }
    }
}

/// RMCC's split pipeline (Figure 11).
///
/// The two AES halves use asymmetric zero padding — the counter is
/// *prefixed* with 72 zero bits while the address is *suffixed* with 64 zero
/// bits — which eliminates the commutativity repeat class (§IV-D1: the OTP
/// for (addr = x, ctr = y) must differ from (addr = y, ctr = x)).
///
/// The pipeline also memoizes its own outputs: a small direct-mapped cache
/// keyed by `(address, counter)` short-circuits repeat derivations, exactly
/// the self-reinforcing effect the paper builds the architecture around.
/// The memo is *transparent* — hits return bit-identical pads, and the
/// engine's modeled crypto tally is charged per request either way — so it
/// only changes host wall clock, never results or accounting.
#[derive(Clone)]
pub struct RmccOtp {
    keys: KeySet,
    memo: RefCell<PadMemo>,
}

impl std::fmt::Debug for RmccOtp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never expose the key set through Debug output.
        f.debug_struct("RmccOtp").finish_non_exhaustive()
    }
}

impl RmccOtp {
    /// Creates the split pipeline over `keys`.
    pub fn new(keys: KeySet) -> Self {
        RmccOtp {
            keys,
            memo: RefCell::new(PadMemo::new()),
        }
    }

    /// The full derivation, bypassing the memo (also the miss path).
    fn derive_block_pads(&self, block_addr: u64, ctr: u64) -> BlockPads {
        let ctr_enc = self.counter_only(ctr, PadPurpose::Encryption);
        let ctr_mac = self.counter_only(ctr, PadPurpose::Mac);
        let mut words = [0u128; WORDS_PER_BLOCK];
        for (i, w) in (0u8..).zip(words.iter_mut()) {
            *w = Self::combine(
                ctr_enc,
                self.address_only(block_addr, i, PadPurpose::Encryption),
            );
        }
        let mac = Self::combine(ctr_mac, self.address_only(block_addr, 0, PadPurpose::Mac));
        BlockPads { words, mac }
    }

    /// The counter-only AES result for `ctr` — exactly the value RMCC's
    /// memoization table stores per purpose (16 B for decryption + 16 B for
    /// verification per entry, §IV-E).
    ///
    /// # Panics
    ///
    /// Panics if `ctr` exceeds [`COUNTER_MAX`].
    pub fn counter_only(&self, ctr: u64, purpose: PadPurpose) -> u128 {
        assert!(ctr <= COUNTER_MAX, "counter overflows 56 bits");
        // 0^72 ‖ ctr_56 (Figure 11 left input).
        self.keys.counter_only(purpose).encrypt_u128(ctr as u128)
    }

    /// The address-only AES result for one 128-bit word of a block.
    ///
    /// Address-only results are always fast to produce because the MC knows
    /// the address as soon as the request arrives (§IV).
    pub fn address_only(&self, block_addr: u64, word_index: u8, purpose: PadPurpose) -> u128 {
        self.keys
            .address_only(purpose)
            .encrypt_u128(addr_input(block_addr, word_index))
    }

    /// Derives full block pads for up to [`BATCH_BLOCKS`] `(block_addr,
    /// ctr)` requests at once, driving each AES key's 8-wide batch entry
    /// point so the hardened backend runs one circuit evaluation per key
    /// per word instead of one per lane.
    ///
    /// Lane `i` of the result corresponds to `reqs[i]` and is
    /// bit-identical to `block_pads(reqs[i].0, reqs[i].1)`; lanes past
    /// `reqs.len()` are derived for the all-zero request and must be
    /// discarded by the caller. The memo is neither consulted nor
    /// updated — this is the raw derivation ([`RmccOtp::warm_pads`] layers
    /// the memo on top).
    ///
    /// # Panics
    ///
    /// Panics if any counter exceeds [`COUNTER_MAX`].
    pub fn block_pads_batch8(&self, reqs: &[(u64, u64)]) -> [BlockPads; BATCH_BLOCKS] {
        let mut lanes = [(0u64, 0u64); BATCH_BLOCKS];
        for (slot, req) in lanes.iter_mut().zip(reqs.iter()) {
            assert!(req.1 <= COUNTER_MAX, "counter overflows 56 bits");
            *slot = *req;
        }
        // 0^72 ‖ ctr_56 per lane (Figure 11 left input), through both
        // counter keys.
        let ctr_in = lanes.map(|(_, ctr)| ctr as u128);
        let ctr_enc = self.keys.enc.encrypt_u128_batch8(ctr_in);
        let ctr_mac = self.keys.mac.encrypt_u128_batch8(ctr_in);
        // Address-only halves: one 8-wide batch per word index, plus one
        // for the MAC (which uses word 0 under the MAC address key).
        let addr_in = |w: u8| lanes.map(|(addr, _)| addr_input(addr, w));
        let ae0 = self.keys.addr_enc.encrypt_u128_batch8(addr_in(0));
        let ae1 = self.keys.addr_enc.encrypt_u128_batch8(addr_in(1));
        let ae2 = self.keys.addr_enc.encrypt_u128_batch8(addr_in(2));
        let ae3 = self.keys.addr_enc.encrypt_u128_batch8(addr_in(3));
        let am = self.keys.addr_mac.encrypt_u128_batch8(addr_in(0));
        let mut out = [BlockPads::default(); BATCH_BLOCKS];
        let halves = ctr_enc
            .into_iter()
            .zip(ctr_mac)
            .zip(ae0)
            .zip(ae1)
            .zip(ae2)
            .zip(ae3)
            .zip(am);
        for (pads, ((((((ce, cm), a0), a1), a2), a3), amac)) in out.iter_mut().zip(halves) {
            pads.words = [
                Self::combine(ce, a0),
                Self::combine(ce, a1),
                Self::combine(ce, a2),
                Self::combine(ce, a3),
            ];
            pads.mac = Self::combine(cm, amac);
        }
        out
    }

    /// Narrow batched form of [`OtpPipeline::mac_pad`]: MAC pads only, for
    /// up to [`BATCH_BLOCKS`] requests, bit-identical lane-for-lane to the
    /// scalar call. Same lane convention as [`RmccOtp::block_pads_batch8`].
    ///
    /// # Panics
    ///
    /// Panics if any counter exceeds [`COUNTER_MAX`].
    pub fn mac_pads_batch8(&self, reqs: &[(u64, u64)]) -> [u128; BATCH_BLOCKS] {
        let mut lanes = [(0u64, 0u64); BATCH_BLOCKS];
        for (slot, req) in lanes.iter_mut().zip(reqs.iter()) {
            assert!(req.1 <= COUNTER_MAX, "counter overflows 56 bits");
            *slot = *req;
        }
        let ctr_mac = self
            .keys
            .mac
            .encrypt_u128_batch8(lanes.map(|(_, ctr)| ctr as u128));
        let am = self
            .keys
            .addr_mac
            .encrypt_u128_batch8(lanes.map(|(addr, _)| addr_input(addr, 0)));
        let mut out = [0u128; BATCH_BLOCKS];
        for (pad, (cm, amac)) in out.iter_mut().zip(ctr_mac.into_iter().zip(am)) {
            *pad = Self::combine(cm, amac);
        }
        out
    }

    /// Combines a counter-only and an address-only AES result into the final
    /// pad: `truncate_mid(clmul(counter_only, address_only))`.
    pub fn combine(counter_only: u128, address_only: u128) -> u128 {
        clmul_truncate_mid(counter_only, address_only)
    }

    /// Full pad for a single word, going through the split pipeline.
    pub fn word_pad(&self, block_addr: u64, word_index: u8, ctr: u64, purpose: PadPurpose) -> u128 {
        Self::combine(
            self.counter_only(ctr, purpose),
            self.address_only(block_addr, word_index, purpose),
        )
    }
}

impl OtpPipeline for RmccOtp {
    // audit:allow(R5, scope = fn, reason = "memo slots are addressed by (block_addr, ctr), both public metadata; the hit/miss pattern is the paper's architecturally visible memoization")
    fn block_pads(&self, block_addr: u64, ctr: u64) -> BlockPads {
        let idx = memo_index(block_addr, ctr);
        // `try_borrow_mut` instead of `borrow_mut`: the memo is a pure
        // accelerator, so on the (impossible today) reentrant path we just
        // derive without it rather than risk a panic in a trusted crate.
        let Ok(mut memo) = self.memo.try_borrow_mut() else {
            return self.derive_block_pads(block_addr, ctr);
        };
        if let Some(slot) = memo.blocks.get(idx) {
            if slot.addr == block_addr && slot.ctr == ctr {
                return slot.pads;
            }
        }
        let pads = self.derive_block_pads(block_addr, ctr);
        if let Some(slot) = memo.blocks.get_mut(idx) {
            *slot = PadSlot {
                addr: block_addr,
                ctr,
                pads,
            };
        }
        pads
    }

    // audit:allow(R5, scope = fn, reason = "memo slots are addressed by (block_addr, ctr), both public metadata; the hit/miss pattern is the paper's architecturally visible memoization")
    fn mac_pad(&self, block_addr: u64, ctr: u64) -> u128 {
        let idx = memo_index(block_addr, ctr);
        let Ok(mut memo) = self.memo.try_borrow_mut() else {
            return Self::combine(
                self.counter_only(ctr, PadPurpose::Mac),
                self.address_only(block_addr, 0, PadPurpose::Mac),
            );
        };
        if let Some(slot) = memo.macs.get(idx) {
            if slot.addr == block_addr && slot.ctr == ctr {
                return slot.mac;
            }
        }
        let mac = Self::combine(
            self.counter_only(ctr, PadPurpose::Mac),
            self.address_only(block_addr, 0, PadPurpose::Mac),
        );
        if let Some(slot) = memo.macs.get_mut(idx) {
            *slot = MacSlot {
                addr: block_addr,
                ctr,
                mac,
            };
        }
        mac
    }

    /// Warms the transparent memo through the 8-wide batch derivation:
    /// requests already memoized are skipped, the rest are derived in
    /// [`BATCH_BLOCKS`]-lane groups and inserted into both the block-pad
    /// and MAC-pad ways. Correctness-neutral by construction — hits serve
    /// bit-identical pads, and evictions only cost a re-derivation later.
    // audit:allow(R5, scope = fn, reason = "memo slots are addressed by (block_addr, ctr), both public metadata; the hit/miss pattern is the paper's architecturally visible memoization")
    fn warm_pads(&self, reqs: &[(u64, u64)]) {
        let Ok(mut memo) = self.memo.try_borrow_mut() else {
            return;
        };
        for group in reqs.chunks(BATCH_BLOCKS) {
            // Collect the lanes not already memoized (duplicate requests
            // within a group derive twice and overwrite — harmless).
            let mut missing = [(0u64, 0u64); BATCH_BLOCKS];
            let mut n = 0usize;
            for (addr, ctr) in group {
                let idx = memo_index(*addr, *ctr);
                let hit = memo
                    .blocks
                    .get(idx)
                    .is_some_and(|s| s.addr == *addr && s.ctr == *ctr);
                if !hit {
                    if let Some(slot) = missing.get_mut(n) {
                        *slot = (*addr, *ctr);
                        n += 1;
                    }
                }
            }
            let Some(live) = missing.get(..n) else {
                continue;
            };
            if live.is_empty() {
                continue;
            }
            let derived = self.block_pads_batch8(live);
            for ((addr, ctr), pads) in live.iter().zip(derived.iter()) {
                let idx = memo_index(*addr, *ctr);
                if let Some(slot) = memo.blocks.get_mut(idx) {
                    *slot = PadSlot {
                        addr: *addr,
                        ctr: *ctr,
                        pads: *pads,
                    };
                }
                if let Some(slot) = memo.macs.get_mut(idx) {
                    *slot = MacSlot {
                        addr: *addr,
                        ctr: *ctr,
                        mac: pads.mac,
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "rmcc-split"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> KeySet {
        KeySet::from_master(0x1234_5678)
    }

    #[test]
    fn sgx_pads_vary_with_counter_and_address() {
        let p = SgxOtp::new(keys());
        let a = p.block_pads(10, 1);
        assert_ne!(a, p.block_pads(10, 2), "counter must change pads");
        assert_ne!(a, p.block_pads(11, 1), "address must change pads");
    }

    #[test]
    fn sgx_word_pads_differ_within_a_block() {
        let p = SgxOtp::new(keys());
        let pads = p.block_pads(42, 3);
        for i in 0..WORDS_PER_BLOCK {
            for j in (i + 1)..WORDS_PER_BLOCK {
                assert_ne!(pads.words[i], pads.words[j]);
            }
        }
    }

    #[test]
    fn mac_pad_differs_from_encryption_pads() {
        for pads in [
            SgxOtp::new(keys()).block_pads(42, 3),
            RmccOtp::new(keys()).block_pads(42, 3),
        ] {
            for w in pads.words {
                assert_ne!(w, pads.mac);
            }
        }
    }

    #[test]
    fn rmcc_pads_vary_with_counter_and_address() {
        let p = RmccOtp::new(keys());
        let a = p.block_pads(10, 1);
        assert_ne!(a, p.block_pads(10, 2));
        assert_ne!(a, p.block_pads(11, 1));
    }

    #[test]
    fn rmcc_swap_of_address_and_counter_does_not_repeat() {
        // §IV-D1 type-A repeats: OTP(addr=x, ctr=y) vs OTP(addr=y, ctr=x).
        let p = RmccOtp::new(keys());
        let x = 6u64;
        let y = 20u64;
        assert_ne!(
            p.word_pad(x, 0, y, PadPurpose::Encryption),
            p.word_pad(y, 0, x, PadPurpose::Encryption)
        );
    }

    #[test]
    fn rmcc_combine_matches_block_pads() {
        let p = RmccOtp::new(keys());
        let pads = p.block_pads(77, 9);
        for i in 0..WORDS_PER_BLOCK {
            assert_eq!(
                pads.words[i],
                p.word_pad(77, i as u8, 9, PadPurpose::Encryption)
            );
        }
    }

    #[test]
    fn mac_pad_matches_full_block_pads() {
        // The narrow verification pipeline must be bit-identical to the MAC
        // pad of the full derivation, for every pipeline, across addresses
        // and counters — otherwise tree walks and writes would disagree.
        let pipes: [Box<dyn OtpPipeline>; 2] = [
            Box::new(SgxOtp::new(keys())),
            Box::new(RmccOtp::new(keys())),
        ];
        for p in &pipes {
            for (addr, ctr) in [(0u64, 0u64), (77, 9), (1 << 40, 12345), (3, COUNTER_MAX)] {
                assert_eq!(
                    p.mac_pad(addr, ctr),
                    p.block_pads(addr, ctr).mac,
                    "{} diverged at addr={addr} ctr={ctr}",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn counter_only_is_address_independent() {
        // This independence is the entire point: one memoized value serves
        // every block in memory.
        let p = RmccOtp::new(keys());
        let c = p.counter_only(12345, PadPurpose::Encryption);
        for addr in [0u64, 1, 0xffff, 1 << 40] {
            let pad = RmccOtp::combine(c, p.address_only(addr, 0, PadPurpose::Encryption));
            assert_eq!(pad, p.word_pad(addr, 0, 12345, PadPurpose::Encryption));
        }
    }

    #[test]
    #[should_panic(expected = "counter overflows")]
    fn counter_overflow_panics() {
        let p = RmccOtp::new(keys());
        let _ = p.counter_only(COUNTER_MAX + 1, PadPurpose::Encryption);
    }

    #[test]
    fn aes256_keyset_roundtrips_and_differs() {
        use crate::aes::AesVariant;
        let k128 = KeySet::from_master_with(9, AesVariant::Aes128);
        let k256 = KeySet::from_master_with(9, AesVariant::Aes256);
        assert_eq!(k128.variant(), AesVariant::Aes128);
        assert_eq!(k256.variant(), AesVariant::Aes256);
        let p128 = RmccOtp::new(k128);
        let p256 = RmccOtp::new(k256);
        assert_ne!(
            p128.block_pads(10, 1),
            p256.block_pads(10, 1),
            "variants must produce different pads"
        );
        // Deterministic per variant.
        let again = RmccOtp::new(KeySet::from_master_with(9, AesVariant::Aes256));
        assert_eq!(p256.block_pads(10, 1), again.block_pads(10, 1));
    }

    /// The batch derivation must be bit-identical, lane for lane, to the
    /// scalar path — for full and partial batches, on both the fast and
    /// hardened backends, and across backends.
    #[test]
    fn block_pads_batch8_matches_scalar_on_both_backends() {
        use crate::aes::AesVariant;
        let reqs: Vec<(u64, u64)> = vec![
            (0, 0),
            (77, 9),
            (1 << 40, 12345),
            (3, COUNTER_MAX),
            (500, 1),
            (500, 2),
            (501, 1),
            (0xdead_beef, 42),
        ];
        let fast = RmccOtp::new(KeySet::from_master_on(
            0x1234_5678,
            AesVariant::Aes128,
            Backend::Fast,
        ));
        let hard = RmccOtp::new(KeySet::from_master_on(
            0x1234_5678,
            AesVariant::Aes128,
            Backend::Hardened,
        ));
        for n in 1..=reqs.len() {
            let group = &reqs[..n];
            let batch_fast = fast.block_pads_batch8(group);
            let batch_hard = hard.block_pads_batch8(group);
            for (lane, (addr, ctr)) in group.iter().enumerate() {
                let scalar = fast.block_pads(*addr, *ctr);
                assert_eq!(batch_fast[lane], scalar, "fast lane {lane} of {n}");
                assert_eq!(batch_hard[lane], scalar, "hardened lane {lane} of {n}");
            }
        }
    }

    #[test]
    fn mac_pads_batch8_matches_scalar() {
        let p = RmccOtp::new(keys());
        let reqs = [(0u64, 0u64), (77, 9), (1 << 40, 12345), (3, COUNTER_MAX)];
        let batch = p.mac_pads_batch8(&reqs);
        for (lane, (addr, ctr)) in reqs.iter().enumerate() {
            assert_eq!(batch[lane], p.mac_pad(*addr, *ctr), "lane {lane}");
        }
    }

    /// Warming the memo must not change anything observable: pads served
    /// after a warm are bit-identical to a cold pipeline's.
    #[test]
    fn warm_pads_is_correctness_neutral() {
        let warmed = RmccOtp::new(keys());
        let cold = RmccOtp::new(keys());
        let reqs: Vec<(u64, u64)> = (0..23).map(|i| (i * 37 % 11, i)).collect();
        warmed.warm_pads(&reqs);
        // Warming twice (all hits the second time) is also a no-op.
        warmed.warm_pads(&reqs);
        for (addr, ctr) in &reqs {
            assert_eq!(
                warmed.block_pads(*addr, *ctr),
                cold.block_pads(*addr, *ctr),
                "block pads diverged at addr={addr} ctr={ctr}"
            );
            assert_eq!(
                warmed.mac_pad(*addr, *ctr),
                cold.mac_pad(*addr, *ctr),
                "mac pad diverged at addr={addr} ctr={ctr}"
            );
        }
        // The default trait impl is a no-op and must also be harmless.
        let sgx = SgxOtp::new(keys());
        sgx.warm_pads(&reqs);
        assert_eq!(sgx.block_pads(1, 1), SgxOtp::new(keys()).block_pads(1, 1));
    }

    #[test]
    #[should_panic(expected = "counter overflows")]
    fn batch_counter_overflow_panics() {
        let p = RmccOtp::new(keys());
        let _ = p.block_pads_batch8(&[(1, COUNTER_MAX + 1)]);
    }

    #[test]
    fn keyset_reports_its_backend() {
        use crate::aes::AesVariant;
        let k = KeySet::from_master_on(5, AesVariant::Aes128, Backend::Hardened);
        assert_eq!(k.backend(), Backend::Hardened);
        assert_eq!(KeySet::from_master(5).backend(), Backend::from_env());
    }

    #[test]
    fn pipelines_are_object_safe() {
        let pipes: Vec<Box<dyn OtpPipeline>> = vec![
            Box::new(SgxOtp::new(keys())),
            Box::new(RmccOtp::new(keys())),
        ];
        assert_eq!(pipes[0].name(), "sgx-baseline");
        assert_eq!(pipes[1].name(), "rmcc-split");
    }
}
