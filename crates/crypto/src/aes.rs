//! Software AES-128 and AES-256 block encryption (FIPS-197).
//!
//! Secure memory systems in the RMCC paper use AES in counter mode: the
//! cipher is only ever run in the *encrypt* direction to produce one-time
//! pads (OTPs), so this module deliberately implements encryption only.
//! The simulator models AES *latency* architecturally (15 ns / 22 ns
//! knobs) and only needs functional AES for end-to-end correctness tests,
//! examples, and the NIST randomness checks — but that functional AES sits
//! on the simulation's hottest path (every pad of every access), so the
//! implementation is selectable per [`Backend`]:
//!
//! * [`Backend::Fast`] (the default) uses encryption T-tables: four
//!   256-entry `u32` tables that fuse `SubBytes`, `ShiftRows`, and
//!   `MixColumns` into one lookup + XOR per state byte per round (see
//!   DESIGN.md §10 for the equivalence argument). The tables are derived
//!   from the S-box once, at first key expansion, and shared by every
//!   schedule. Its data-dependent table access is the documented
//!   cache-timing tradeoff of any table-based software AES (DESIGN.md §8).
//! * [`Backend::Hardened`] runs the bitsliced constant-time circuit in
//!   [`crate::bitslice`]: 8 blocks per invocation through pure plane
//!   logic, no secret-indexed loads and no secret-dependent branches
//!   anywhere (key schedule included). Slower per block, immune to the
//!   cache-timing channel, and ~8× wider per call (see DESIGN.md §13).
//! * [`Backend::Reference`] is the textbook byte-wise FIPS-197 round
//!   sequence, kept as the independent oracle the other two are
//!   differentially tested against.
//!
//! All three produce bit-identical ciphertext — pinned by
//! `crates/crypto/tests/backend_differential.rs` against the NIST vectors
//! and property-generated inputs — so switching backends never changes
//! any golden fixture or checksum, only the timing profile.

/// The AES block size in bytes. AES has a fixed 128-bit block regardless of
/// key size (see §II-A of the paper: "AES has a fixed input and output size
/// of 128 bits").
pub const BLOCK_BYTES: usize = 16;

/// A 128-bit AES input/output block.
pub type Block = [u8; BLOCK_BYTES];

/// How many blocks the batched entry points process per call — the lane
/// width of the bitsliced backend.
pub const BATCH_BLOCKS: usize = 8;

/// AES S-box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule (shared with the bitsliced
/// backend, whose schedule must produce the same expansion).
pub(crate) const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply a byte by `x` (i.e. 2) in GF(2^8) modulo the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// S-box lookup.
///
/// A `u8` index into a 256-entry table cannot be out of range. The
/// data-dependent table access itself is the documented tradeoff of the
/// table-based backends (see DESIGN.md §8 under R3); the `hardened`
/// backend substitutes through a boolean circuit instead.
#[inline]
#[allow(clippy::indexing_slicing)]
pub(crate) fn sbox(b: u8) -> u8 {
    // audit:allow(R1, reason = "u8 index into a 256-entry table is total")
    SBOX[usize::from(b)]
}

/// The four encryption T-tables.
///
/// `te0[x]` packs the `MixColumns` image of `SubBytes(x)` as a big-endian
/// word `[2·s, s, s, 3·s]` (GF(2^8) products); `te1`–`te3` are byte
/// rotations of `te0`, so one table lookup per state byte performs the
/// fused `SubBytes` + `ShiftRows` + `MixColumns` contribution of that byte
/// to its output column.
struct TTables {
    te0: [u32; 256],
    te1: [u32; 256],
    te2: [u32; 256],
    te3: [u32; 256],
}

/// The tables are pure functions of the (public) S-box: computed once at
/// first key expansion, shared by all schedules forever after.
static TTABLES: std::sync::OnceLock<TTables> = std::sync::OnceLock::new();

fn build_ttables() -> TTables {
    let mut te0 = [0u32; 256];
    for (slot, x) in te0.iter_mut().zip(0u8..=255) {
        let s = sbox(x);
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        *slot = u32::from_be_bytes([s2, s, s, s3]);
    }
    TTables {
        te1: te0.map(|w| w.rotate_right(8)),
        te2: te0.map(|w| w.rotate_right(16)),
        te3: te0.map(|w| w.rotate_right(24)),
        te0,
    }
}

/// Total table lookup: a `u8` index into a 256-entry table cannot miss, so
/// the `unwrap_or` arm is unreachable (and branch-free after inlining).
#[inline]
fn lut(table: &[u32; 256], b: u8) -> u32 {
    table.get(usize::from(b)).copied().unwrap_or(0)
}

impl TTables {
    /// One output column of a middle round: the diagonal
    /// `(byte0 of a, byte1 of b, byte2 of c, byte3 of d)` is the column's
    /// post-`ShiftRows` content, and the table XOR applies `SubBytes` +
    /// `MixColumns` to it.
    #[inline]
    fn column(&self, a: u32, b: u32, c: u32, d: u32) -> u32 {
        let [a0, _, _, _] = a.to_be_bytes();
        let [_, b1, _, _] = b.to_be_bytes();
        let [_, _, c2, _] = c.to_be_bytes();
        let [_, _, _, d3] = d.to_be_bytes();
        lut(&self.te0, a0) ^ lut(&self.te1, b1) ^ lut(&self.te2, c2) ^ lut(&self.te3, d3)
    }
}

/// One output column of the final round: same diagonal byte selection as
/// [`TTables::column`], but `SubBytes` only (no `MixColumns`).
#[inline]
fn final_column(a: u32, b: u32, c: u32, d: u32) -> u32 {
    let [a0, _, _, _] = a.to_be_bytes();
    let [_, b1, _, _] = b.to_be_bytes();
    let [_, _, c2, _] = c.to_be_bytes();
    let [_, _, _, d3] = d.to_be_bytes();
    u32::from_be_bytes([sbox(a0), sbox(b1), sbox(c2), sbox(d3)])
}

/// Which AES variant a key schedule was expanded for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesVariant {
    /// 128-bit key, 10 rounds. SGX's memory encryption engine uses AES-128.
    Aes128,
    /// 256-bit key, 14 rounds ("quantum safe" per §II-C of the paper).
    Aes256,
}

impl AesVariant {
    /// Number of sequential rounds the variant performs.
    ///
    /// The paper's latency argument hinges on these round counts: AES-128
    /// needs 10 serial rounds (modeled as 15 ns at 7 nm) and AES-256 needs 14
    /// (22 ns).
    pub fn rounds(self) -> usize {
        match self {
            AesVariant::Aes128 => 10,
            AesVariant::Aes256 => 14,
        }
    }

    /// Key length in bytes.
    pub fn key_bytes(self) -> usize {
        match self {
            AesVariant::Aes128 => 16,
            AesVariant::Aes256 => 32,
        }
    }
}

impl std::fmt::Display for AesVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesVariant::Aes128 => write!(f, "AES-128"),
            AesVariant::Aes256 => write!(f, "AES-256"),
        }
    }
}

/// Which software implementation executes the AES rounds.
///
/// All backends are ciphertext-identical; they differ only in timing
/// profile and batch width. Selected per schedule at expansion time —
/// explicitly via the `*_on` constructors, or from the `RMCC_BACKEND`
/// environment variable via [`Backend::from_env`] (the path the engine
/// and service configuration plumb through).
///
/// # Examples
///
/// ```
/// use rmcc_crypto::aes::{Aes, Backend};
///
/// let fast = Aes::new_128_on(&[0u8; 16], Backend::Fast);
/// let hard = Aes::new_128_on(&[0u8; 16], Backend::Hardened);
/// assert_eq!(fast.encrypt_block([7u8; 16]), hard.encrypt_block([7u8; 16]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Byte-wise FIPS-197 reference rounds: the slow, obviously-correct
    /// oracle used for differential testing. S-box table lookups, not
    /// constant-time.
    Reference,
    /// Fused T-table rounds (the default): fastest scalar path, with the
    /// textbook data-dependent table access (DESIGN.md §8).
    #[default]
    Fast,
    /// Bitsliced constant-time circuit ([`crate::bitslice`]): 8 blocks
    /// per call, no secret-indexed loads or secret-dependent branches
    /// anywhere — the module carries zero `audit:allow(R5)` waivers.
    Hardened,
}

impl Backend {
    /// Parses a backend name as accepted in `RMCC_BACKEND`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" | "bytewise" => Some(Backend::Reference),
            "fast" | "ttable" => Some(Backend::Fast),
            "hardened" | "bitsliced" | "bitslice" | "ct" => Some(Backend::Hardened),
            _ => None,
        }
    }

    /// Reads `RMCC_BACKEND` (`fast` | `hardened` | `reference`), falling
    /// back to [`Backend::Fast`] when unset or unrecognized — backend
    /// choice never changes outputs, so a typo degrades timing, not
    /// correctness.
    pub fn from_env() -> Self {
        std::env::var("RMCC_BACKEND")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// The canonical lowercase name (`reference` / `fast` / `hardened`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Fast => "fast",
            Backend::Hardened => "hardened",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A key slice's length did not match the requested [`AesVariant`].
///
/// Returned by [`Aes::expand`]/[`Aes::expand_on`]; the array-taking
/// constructors ([`Aes::new_128`], [`Aes::new_256`]) make this state
/// unrepresentable and stay infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyLengthError {
    /// The length in bytes the requested variant requires.
    pub expected: usize,
    /// The length actually supplied.
    pub got: usize,
}

impl std::fmt::Display for KeyLengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "key length must match the AES variant: expected {} bytes, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for KeyLengthError {}

/// An expanded AES key, ready to encrypt blocks.
///
/// # Examples
///
/// ```
/// use rmcc_crypto::aes::Aes;
///
/// let key = Aes::new_128(&[0u8; 16]);
/// let ct = key.encrypt_block([0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes {
    /// Expanded round keys, packed as big-endian `u32` columns:
    /// `rounds + 1` keys of 4 words each. Empty for the hardened backend,
    /// which keeps its schedule pre-bitsliced in `sliced` instead (the
    /// table schedule's S-box lookups on key bytes would themselves be a
    /// timing leak).
    round_keys: Vec<[u32; 4]>,
    variant: AesVariant,
    backend: Backend,
    /// The shared encryption T-tables (built on first expansion).
    tables: &'static TTables,
    /// Bitsliced schedule; `Some` exactly when `backend` is `Hardened`.
    sliced: Option<crate::bitslice::Sliced>,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes")
            .field("variant", &self.variant)
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl Aes {
    /// Expands a 128-bit key on the environment-selected backend.
    pub fn new_128(key: &[u8; 16]) -> Self {
        // audit:allow(R5, reason = "array length is checked by the type; schedule leakage is accounted per backend in expand_checked")
        Self::new_128_on(key, Backend::from_env())
    }

    /// Expands a 128-bit key on an explicit backend.
    pub fn new_128_on(key: &[u8; 16], backend: Backend) -> Self {
        // audit:allow(R5, reason = "array length is checked by the type; schedule leakage is accounted per backend in expand_checked")
        Self::expand_checked(key, AesVariant::Aes128, backend)
    }

    /// Expands a 256-bit key on the environment-selected backend.
    pub fn new_256(key: &[u8; 32]) -> Self {
        // audit:allow(R5, reason = "array length is checked by the type; schedule leakage is accounted per backend in expand_checked")
        Self::new_256_on(key, Backend::from_env())
    }

    /// Expands a 256-bit key on an explicit backend.
    pub fn new_256_on(key: &[u8; 32], backend: Backend) -> Self {
        // audit:allow(R5, reason = "array length is checked by the type; schedule leakage is accounted per backend in expand_checked")
        Self::expand_checked(key, AesVariant::Aes256, backend)
    }

    /// Expands a key slice for `variant` on the environment-selected
    /// backend, returning [`KeyLengthError`] on a length mismatch.
    pub fn expand(key: &[u8], variant: AesVariant) -> Result<Self, KeyLengthError> {
        // audit:allow(R5, reason = "length-checked dispatch into the per-backend schedule")
        Self::expand_on(key, variant, Backend::from_env())
    }

    /// Expands a key slice for `variant` on an explicit backend, returning
    /// [`KeyLengthError`] on a length mismatch.
    pub fn expand_on(
        key: &[u8],
        variant: AesVariant,
        backend: Backend,
    ) -> Result<Self, KeyLengthError> {
        let got = key.len();
        let expected = variant.key_bytes();
        // audit:allow(R5, reason = "branches on the key slice's length only — public metadata, not key bytes")
        if got != expected {
            return Err(KeyLengthError { expected, got });
        }
        // audit:allow(R5, reason = "length verified above; schedule leakage is accounted per backend in expand_checked")
        Ok(Self::expand_checked(key, variant, backend))
    }

    /// Expands a key of already-verified length on `backend`.
    ///
    /// The hardened backend expands entirely through the bitsliced
    /// circuit (constant-time `SubWord`); the table backends run the
    /// classic S-box schedule.
    // audit:allow(R5, scope = fn, reason = "the S-box key schedule feeds only the table backends, whose data-dependent lookups are the documented tradeoff; the hardened arm expands through the waiver-free bitsliced circuit")
    fn expand_checked(key: &[u8], variant: AesVariant, backend: Backend) -> Self {
        let tables = TTABLES.get_or_init(build_ttables);
        let (round_keys, sliced) = match backend {
            Backend::Hardened => (
                Vec::new(),
                Some(crate::bitslice::Sliced::expand(key, variant)),
            ),
            _ => (Self::schedule_words(key, variant), None),
        };
        Aes {
            round_keys,
            variant,
            backend,
            tables,
            sliced,
        }
    }

    /// The classic FIPS-197 key schedule via S-box lookups, producing
    /// big-endian `u32` round-key columns.
    fn schedule_words(key: &[u8], variant: AesVariant) -> Vec<[u32; 4]> {
        let nk = variant.key_bytes() / 4; // key length in 32-bit words
        let nr = variant.rounds();
        let total_words = 4 * (nr + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        w.extend(key.chunks_exact(4).map(|c| {
            let mut word = [0u8; 4];
            word.copy_from_slice(c);
            word
        }));
        for i in nk..total_words {
            // `w` holds exactly `i` words here, so the previous word is
            // `last()` and the word `nk` back is at `i - nk`.
            let mut temp = w.last().copied().unwrap_or_default();
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox(*b);
                }
                if let (Some(first), Some(rc)) = (temp.first_mut(), RCON.get(i / nk - 1)) {
                    *first ^= rc;
                }
            } else if nk > 6 && i % nk == 4 {
                for b in temp.iter_mut() {
                    *b = sbox(*b);
                }
            }
            let mut word = w.get(i - nk).copied().unwrap_or_default();
            for (wb, tb) in word.iter_mut().zip(temp.iter()) {
                *wb ^= tb;
            }
            w.push(word);
        }
        w.chunks_exact(4)
            .map(|c| {
                let mut rk = [0u32; 4];
                for (dst, src) in rk.iter_mut().zip(c.iter()) {
                    *dst = u32::from_be_bytes(*src);
                }
                rk
            })
            .collect()
    }

    /// The variant this key schedule was expanded for.
    pub fn variant(&self) -> AesVariant {
        self.variant
    }

    /// The backend this key schedule was expanded on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Encrypts one 128-bit block on the schedule's backend.
    ///
    /// The hardened backend runs one live lane of its 8-wide circuit
    /// (full-batch cost — constant-time code does not get cheaper for
    /// smaller inputs); use [`Aes::encrypt_batch8`] to amortize.
    pub fn encrypt_block(&self, input: Block) -> Block {
        if let Some(ct) = self.sliced.as_ref() {
            return ct.encrypt_one(input);
        }
        match self.backend {
            Backend::Reference => self.encrypt_block_reference(input),
            _ => self.encrypt_block_ttable(input),
        }
    }

    /// Encrypts 8 blocks in one call.
    ///
    /// On the hardened backend all 8 ride the bitsliced circuit together
    /// (one circuit evaluation total); the table backends encrypt them
    /// sequentially. Outputs are identical across backends either way.
    pub fn encrypt_batch8(&self, inputs: [Block; BATCH_BLOCKS]) -> [Block; BATCH_BLOCKS] {
        if let Some(ct) = self.sliced.as_ref() {
            return ct.encrypt8(&inputs);
        }
        inputs.map(|b| self.encrypt_block(b))
    }

    /// [`Aes::encrypt_batch8`] over `u128` values (big-endian byte order),
    /// the form the OTP pipeline consumes.
    pub fn encrypt_u128_batch8(&self, inputs: [u128; BATCH_BLOCKS]) -> [u128; BATCH_BLOCKS] {
        self.encrypt_batch8(inputs.map(u128::to_be_bytes))
            .map(u128::from_be_bytes)
    }

    /// Encrypts a slice of blocks in place, batching through the 8-wide
    /// path in groups (a trailing partial group still costs one full
    /// circuit evaluation on the hardened backend).
    pub fn encrypt_blocks(&self, io: &mut [Block]) {
        if let Some(ct) = self.sliced.as_ref() {
            for chunk in io.chunks_mut(BATCH_BLOCKS) {
                ct.encrypt_upto8(chunk);
            }
            return;
        }
        for block in io.iter_mut() {
            *block = self.encrypt_block(*block);
        }
    }

    /// T-table rounds: the state lives in four big-endian `u32` columns;
    /// each middle round is 16 T-table lookups and 16 XORs, the final
    /// round substitutes through the S-box only (see the module docs and
    /// DESIGN.md §10).
    // audit:allow(R5, scope = fn, reason = "T-table rounds index tables by state bytes by design; the constant-time alternative is the hardened backend (DESIGN.md §13)")
    fn encrypt_block_ttable(&self, input: Block) -> Block {
        let [p0, p1, p2, p3, p4, p5, p6, p7, p8, p9, p10, p11, p12, p13, p14, p15] = input;
        let mut s0 = u32::from_be_bytes([p0, p1, p2, p3]);
        let mut s1 = u32::from_be_bytes([p4, p5, p6, p7]);
        let mut s2 = u32::from_be_bytes([p8, p9, p10, p11]);
        let mut s3 = u32::from_be_bytes([p12, p13, p14, p15]);
        // `round_keys` holds `rounds + 1` keys: the whitening key, one key
        // per middle round, and the final-round key. Destructuring keeps
        // the round structure explicit without any index arithmetic.
        // audit:allow(R3, reason = "slice pattern branches on schedule length (always rounds + 1), never on key bytes")
        if let [first, middle @ .., last] = self.round_keys.as_slice() {
            let [k0, k1, k2, k3] = *first;
            s0 ^= k0;
            s1 ^= k1;
            s2 ^= k2;
            s3 ^= k3;
            for rk in middle {
                let [k0, k1, k2, k3] = *rk;
                let t0 = self.tables.column(s0, s1, s2, s3) ^ k0;
                let t1 = self.tables.column(s1, s2, s3, s0) ^ k1;
                let t2 = self.tables.column(s2, s3, s0, s1) ^ k2;
                let t3 = self.tables.column(s3, s0, s1, s2) ^ k3;
                s0 = t0;
                s1 = t1;
                s2 = t2;
                s3 = t3;
            }
            let [k0, k1, k2, k3] = *last;
            let t0 = final_column(s0, s1, s2, s3) ^ k0;
            let t1 = final_column(s1, s2, s3, s0) ^ k1;
            let t2 = final_column(s2, s3, s0, s1) ^ k2;
            let t3 = final_column(s3, s0, s1, s2) ^ k3;
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        let [o0, o1, o2, o3] = s0.to_be_bytes();
        let [o4, o5, o6, o7] = s1.to_be_bytes();
        let [o8, o9, o10, o11] = s2.to_be_bytes();
        let [o12, o13, o14, o15] = s3.to_be_bytes();
        [
            o0, o1, o2, o3, o4, o5, o6, o7, o8, o9, o10, o11, o12, o13, o14, o15,
        ]
    }

    /// Byte-wise FIPS-197 reference rounds: the textbook
    /// `SubBytes`/`ShiftRows`/`MixColumns` sequence, kept as the
    /// independent oracle the T-table and bitsliced paths are
    /// differentially tested against.
    // audit:allow(R5, scope = fn, reason = "reference oracle substitutes through the table S-box by design; the constant-time path is the hardened backend")
    fn encrypt_block_reference(&self, input: Block) -> Block {
        let mut state = input;
        let last_round = self.round_keys.len().saturating_sub(1);
        for (i, rk) in self.round_keys.iter().enumerate() {
            let mut bytes = [0u8; 16];
            let [k0, k1, k2, k3] = *rk;
            for (dst, word) in bytes.chunks_exact_mut(4).zip([k0, k1, k2, k3]) {
                dst.copy_from_slice(&word.to_be_bytes());
            }
            if i > 0 {
                ref_sub_bytes(&mut state);
                ref_shift_rows(&mut state);
                if i < last_round {
                    ref_mix_columns(&mut state);
                }
            }
            ref_add_round_key(&mut state, &bytes);
        }
        state
    }

    /// Encrypts a 128-bit value given as a `u128` (big-endian byte order).
    ///
    /// Convenience for the OTP pipeline, which manipulates pads as `u128`.
    pub fn encrypt_u128(&self, input: u128) -> u128 {
        u128::from_be_bytes(self.encrypt_block(input.to_be_bytes()))
    }
}

/// Reference-path `AddRoundKey`.
fn ref_add_round_key(state: &mut Block, rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

/// Reference-path `SubBytes` (table S-box; see [`Aes::encrypt_block_reference`]).
fn ref_sub_bytes(state: &mut Block) {
    for b in state.iter_mut() {
        *b = sbox(*b);
    }
}

/// Reference-path `ShiftRows`. FIPS-197 state is column-major: byte
/// `state[r + 4c]` sits at row `r`, column `c`; `ShiftRows` rotates row
/// `r` left by `r`, and each rotation is a swap chain.
fn ref_shift_rows(state: &mut Block) {
    // Row 1: left rotate by 1.
    state.swap(1, 5);
    state.swap(5, 9);
    state.swap(9, 13);
    // Row 2: left rotate by 2 (two swaps).
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: left rotate by 3 (= right rotate by 1).
    state.swap(3, 7);
    state.swap(3, 11);
    state.swap(3, 15);
}

/// Reference-path `MixColumns`.
fn ref_mix_columns(state: &mut Block) {
    for col in state.chunks_exact_mut(4) {
        if let [a, b, c, d] = *col {
            let t = a ^ b ^ c ^ d;
            col.copy_from_slice(&[
                a ^ t ^ xtime(a ^ b),
                b ^ t ^ xtime(b ^ c),
                c ^ t ^ xtime(c ^ d),
                d ^ t ^ xtime(d ^ a),
            ]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [Backend; 3] = [Backend::Reference, Backend::Fast, Backend::Hardened];

    /// All three backends must agree with each other across many
    /// pseudo-random keys and blocks, for both variants (the
    /// cross-backend harness in `tests/backend_differential.rs` extends
    /// this with NIST vectors and property-generated batches).
    #[test]
    fn backends_agree_on_random_inputs() {
        let mut z = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        for _ in 0..64 {
            let key128: [u8; 16] = core::array::from_fn(|_| next() as u8);
            let key256: [u8; 32] = core::array::from_fn(|_| next() as u8);
            let block: Block = core::array::from_fn(|_| next() as u8);
            let [r, f, h] = BACKENDS.map(|b| Aes::new_128_on(&key128, b).encrypt_block(block));
            assert_eq!(r, f, "AES-128 reference vs fast");
            assert_eq!(f, h, "AES-128 fast vs hardened");
            let [r, f, h] = BACKENDS.map(|b| Aes::new_256_on(&key256, b).encrypt_block(block));
            assert_eq!(r, f, "AES-256 reference vs fast");
            assert_eq!(f, h, "AES-256 fast vs hardened");
        }
    }

    /// FIPS-197 Appendix B / C.1: AES-128, on every backend.
    #[test]
    fn fips197_aes128_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        for backend in BACKENDS {
            assert_eq!(
                Aes::new_128_on(&key, backend).encrypt_block(pt),
                expect,
                "backend {backend}"
            );
        }
    }

    /// FIPS-197 Appendix C.1: sequential-byte key and plaintext.
    #[test]
    fn fips197_aes128_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expect = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(Aes::new_128(&key).encrypt_block(pt), expect);
    }

    /// FIPS-197 Appendix C.3: AES-256, on every backend.
    #[test]
    fn fips197_aes256_appendix_c3() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expect = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        for backend in BACKENDS {
            assert_eq!(
                Aes::new_256_on(&key, backend).encrypt_block(pt),
                expect,
                "backend {backend}"
            );
        }
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 vector (first block).
    #[test]
    fn sp800_38a_ecb_aes128() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expect = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        assert_eq!(Aes::new_128(&key).encrypt_block(pt), expect);
    }

    #[test]
    fn rounds_and_key_sizes() {
        assert_eq!(AesVariant::Aes128.rounds(), 10);
        assert_eq!(AesVariant::Aes256.rounds(), 14);
        assert_eq!(AesVariant::Aes128.key_bytes(), 16);
        assert_eq!(AesVariant::Aes256.key_bytes(), 32);
    }

    #[test]
    fn u128_roundtrip_matches_block_form() {
        let aes = Aes::new_128(&[7u8; 16]);
        let x = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        assert_eq!(
            aes.encrypt_u128(x).to_be_bytes(),
            aes.encrypt_block(x.to_be_bytes())
        );
    }

    #[test]
    fn batch8_matches_scalar_on_every_backend() {
        for backend in BACKENDS {
            let aes = Aes::new_128_on(&[0x42u8; 16], backend);
            let inputs: [Block; 8] = core::array::from_fn(|lane| [lane as u8; 16]);
            let batch = aes.encrypt_batch8(inputs);
            for (lane, (got, input)) in batch.iter().zip(inputs.iter()).enumerate() {
                assert_eq!(
                    *got,
                    aes.encrypt_block(*input),
                    "backend {backend} lane {lane}"
                );
            }
            let u128s: [u128; 8] = core::array::from_fn(|lane| (lane as u128) << 96 | 0xdead);
            let ubatch = aes.encrypt_u128_batch8(u128s);
            for (got, input) in ubatch.iter().zip(u128s.iter()) {
                assert_eq!(*got, aes.encrypt_u128(*input), "backend {backend} (u128)");
            }
        }
    }

    #[test]
    fn encrypt_blocks_matches_scalar_for_ragged_lengths() {
        for backend in BACKENDS {
            let aes = Aes::new_256_on(&[0x17u8; 32], backend);
            for n in [0usize, 1, 7, 8, 9, 16, 23] {
                let mut io: Vec<Block> = (0..n)
                    .map(|i| core::array::from_fn(|j| (i * 31 + j) as u8))
                    .collect();
                let expect: Vec<Block> = io.iter().map(|b| aes.encrypt_block(*b)).collect();
                aes.encrypt_blocks(&mut io);
                assert_eq!(io, expect, "backend {backend} length {n}");
            }
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes::new_128(&[0u8; 16]);
        let b = Aes::new_128(&[1u8; 16]);
        assert_ne!(a.encrypt_block([0u8; 16]), b.encrypt_block([0u8; 16]));
    }

    /// A wrong-length key slice is a typed error, not a panic, for both
    /// variants and in both directions (too short and too long).
    #[test]
    fn wrong_key_length_is_a_typed_error() {
        for (len, variant, expected) in [
            (17usize, AesVariant::Aes128, 16usize),
            (15, AesVariant::Aes128, 16),
            (0, AesVariant::Aes128, 16),
            (16, AesVariant::Aes256, 32),
            (33, AesVariant::Aes256, 32),
        ] {
            let key = vec![0u8; len];
            let err = Aes::expand(&key, variant).unwrap_err();
            assert_eq!(err, KeyLengthError { expected, got: len });
            let msg = err.to_string();
            assert!(msg.contains("key length"), "message: {msg}");
            assert!(msg.contains(&expected.to_string()), "message: {msg}");
            for backend in BACKENDS {
                assert_eq!(
                    Aes::expand_on(&key, variant, backend).unwrap_err(),
                    KeyLengthError { expected, got: len },
                    "backend {backend}"
                );
            }
        }
    }

    /// A correct-length slice expands fine through the fallible path.
    #[test]
    fn correct_key_length_expands_via_the_fallible_path() {
        let aes = Aes::expand(&[0u8; 16], AesVariant::Aes128).unwrap();
        assert_eq!(
            aes.encrypt_block([0u8; 16]),
            Aes::new_128(&[0u8; 16]).encrypt_block([0u8; 16])
        );
    }

    #[test]
    fn backend_parse_and_env_default() {
        assert_eq!(Backend::parse("fast"), Some(Backend::Fast));
        assert_eq!(Backend::parse("TTable"), Some(Backend::Fast));
        assert_eq!(Backend::parse("hardened"), Some(Backend::Hardened));
        assert_eq!(Backend::parse("bitsliced"), Some(Backend::Hardened));
        assert_eq!(Backend::parse(" reference "), Some(Backend::Reference));
        assert_eq!(Backend::parse("mystery"), None);
        assert_eq!(Backend::default(), Backend::Fast);
        assert_eq!(Backend::Hardened.name(), "hardened");
        assert_eq!(format!("{}", Backend::Fast), "fast");
    }

    #[test]
    fn debug_does_not_print_key_material() {
        for backend in BACKENDS {
            let aes = Aes::new_128_on(&[0x42u8; 16], backend);
            let s = format!("{aes:?}");
            assert!(s.contains("Aes128"));
            assert!(!s.contains("66")); // 0x42 = 66; round keys absent
            assert!(!s.contains("round_keys"));
        }
    }
}
