//! A subset of the NIST SP 800-22 statistical test suite.
//!
//! §IV-D1 of the paper validates that RMCC's truncated-clmul OTPs "pass NIST
//! randomness tests at the same rate as the two streams of AES outputs used
//! to calculate the OTPs". This module implements seven of the suite's tests
//! — enough to reproduce that check — each returning a p-value; a stream
//! passes a test when `p >= alpha` (NIST uses `alpha = 0.01`).

/// Significance level used by the NIST STS.
pub const ALPHA: f64 = 0.01;

/// A bit sequence under test, stored as unpacked bits for clarity.
#[derive(Debug, Clone)]
pub struct BitStream {
    bits: Vec<u8>,
}

impl BitStream {
    /// Unpacks bytes most-significant-bit first.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut bits = Vec::with_capacity(bytes.len() * 8);
        for &b in bytes {
            for i in (0..8).rev() {
                bits.push((b >> i) & 1);
            }
        }
        BitStream { bits }
    }

    /// Builds a stream by concatenating the big-endian bits of `u128` words.
    pub fn from_u128_words(words: &[u128]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 16);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        Self::from_bytes(&bytes)
    }

    /// Number of bits in the stream.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the stream holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    fn ones(&self) -> usize {
        self.bits.iter().map(|&b| b as usize).sum()
    }
}

/// Outcome of one statistical test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Which test produced this result.
    pub name: &'static str,
    /// The test's p-value in `[0, 1]`.
    pub p_value: f64,
}

impl TestResult {
    /// `true` when the stream is consistent with randomness at [`ALPHA`].
    pub fn passed(&self) -> bool {
        self.p_value >= ALPHA
    }
}

// --- special functions -----------------------------------------------------

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let [a0, tail @ ..] = COEF;
    let mut a = a0;
    let t = x + 7.5;
    for (i, &c) in tail.iter().enumerate() {
        a += c / (x + (i + 1) as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma P(a, x) by series expansion.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma Q(a, x) by continued fraction.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma function `igamc(a, x) = Q(a, x)`.
pub fn igamc(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Complementary error function via the incomplete gamma identity.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        igamc(0.5, x * x)
    }
}

// --- the tests --------------------------------------------------------------

/// Frequency (monobit) test — SP 800-22 §2.1.
pub fn frequency(s: &BitStream) -> TestResult {
    let n = s.len() as f64;
    let sum: i64 = s.bits.iter().map(|&b| if b == 1 { 1 } else { -1 }).sum();
    let s_obs = (sum as f64).abs() / n.sqrt();
    TestResult {
        name: "frequency",
        p_value: erfc(s_obs / std::f64::consts::SQRT_2),
    }
}

/// Frequency within a block — SP 800-22 §2.2.
pub fn block_frequency(s: &BitStream, block_len: usize) -> TestResult {
    if block_len == 0 || s.len() < block_len {
        // Degenerate parameters carry no evidence against randomness.
        return TestResult {
            name: "block-frequency",
            p_value: 1.0,
        };
    }
    let n_blocks = s.len() / block_len;
    let mut chi2 = 0.0;
    for chunk in s.bits.chunks_exact(block_len) {
        let ones: usize = chunk.iter().map(|&b| b as usize).sum();
        let pi = ones as f64 / block_len as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * block_len as f64;
    TestResult {
        name: "block-frequency",
        p_value: igamc(n_blocks as f64 / 2.0, chi2 / 2.0),
    }
}

/// Runs test — SP 800-22 §2.3.
pub fn runs(s: &BitStream) -> TestResult {
    let n = s.len() as f64;
    let pi = s.ones() as f64 / n;
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        // Prerequisite frequency test failed decisively.
        return TestResult {
            name: "runs",
            p_value: 0.0,
        };
    }
    let mut v_obs = 1u64;
    for w in s.bits.windows(2) {
        if let [a, b] = w {
            if a != b {
                v_obs += 1;
            }
        }
    }
    let num = (v_obs as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    TestResult {
        name: "runs",
        p_value: erfc(num / den),
    }
}

/// Longest run of ones in 128-bit blocks — SP 800-22 §2.4 (M = 128 case).
pub fn longest_run(s: &BitStream) -> TestResult {
    const M: usize = 128;
    const K: usize = 5;
    // Class probabilities for M = 128 (SP 800-22 Table 2-4).
    const PI: [f64; K + 1] = [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124];
    let n_blocks = s.len() / M;
    let mut v = [0u64; K + 1];
    for chunk in s.bits.chunks_exact(M) {
        let mut longest = 0usize;
        let mut run = 0usize;
        for &b in chunk {
            if b == 1 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let class = match longest {
            0..=4 => 0,
            5 => 1,
            6 => 2,
            7 => 3,
            8 => 4,
            _ => 5,
        };
        if let Some(slot) = v.get_mut(class) {
            *slot += 1;
        }
    }
    let n = n_blocks as f64;
    let mut chi2 = 0.0;
    for (&vi, &pi) in v.iter().zip(PI.iter()) {
        let expected = n * pi;
        chi2 += (vi as f64 - expected) * (vi as f64 - expected) / expected;
    }
    TestResult {
        name: "longest-run",
        p_value: igamc(K as f64 / 2.0, chi2 / 2.0),
    }
}

/// Cumulative sums (forward) — SP 800-22 §2.13.
#[allow(clippy::cast_possible_truncation)] // floor() of k-bounds fits i64 for any real stream
pub fn cumulative_sums(s: &BitStream) -> TestResult {
    let n = s.len() as f64;
    let mut sum = 0i64;
    let mut z = 0i64;
    for &b in &s.bits {
        sum += if b == 1 { 1 } else { -1 };
        z = z.max(sum.abs());
    }
    let z = z as f64;
    let sqrt_n = n.sqrt();
    let phi = |x: f64| 0.5 * erfc(-x / std::f64::consts::SQRT_2);
    let mut p = 1.0;
    let k_lo = ((-n / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    let mut term1 = 0.0;
    for k in k_lo..=k_hi {
        let k = k as f64;
        term1 += phi((4.0 * k + 1.0) * z / sqrt_n) - phi((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo2 = ((-n / z - 3.0) / 4.0).floor() as i64;
    let k_hi2 = ((n / z - 1.0) / 4.0).floor() as i64;
    let mut term2 = 0.0;
    for k in k_lo2..=k_hi2 {
        let k = k as f64;
        term2 += phi((4.0 * k + 3.0) * z / sqrt_n) - phi((4.0 * k + 1.0) * z / sqrt_n);
    }
    p -= term1;
    p += term2;
    TestResult {
        name: "cumulative-sums",
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Counts occurrences of every overlapping `m`-bit pattern (wrapping).
fn psi_sq(s: &BitStream, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = s.len();
    let mut counts = vec![0u64; 1 << m];
    let mut idx = 0usize;
    // Prime with the first m-1 bits.
    for &b in s.bits.iter().take(m - 1) {
        idx = (idx << 1) | b as usize;
    }
    let mask = (1 << m) - 1;
    // Walk bits m-1, m, …, n-1, then wrap to 0, …, m-2 (overlapping
    // patterns are counted circularly per the spec).
    for &b in s.bits.iter().cycle().skip(m - 1).take(n) {
        idx = ((idx << 1) | b as usize) & mask;
        if let Some(c) = counts.get_mut(idx) {
            *c += 1;
        }
    }
    let nf = n as f64;
    let sum: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1 << m) as f64 / nf * sum - nf
}

/// Serial test — SP 800-22 §2.11, returning the first p-value (∇ψ²).
#[allow(clippy::cast_possible_truncation)] // block length m is single-digit
pub fn serial(s: &BitStream, m: usize) -> TestResult {
    let d1 = psi_sq(s, m) - psi_sq(s, m - 1);
    let d2 = psi_sq(s, m) - 2.0 * psi_sq(s, m - 1) + psi_sq(s, m.saturating_sub(2));
    let p1 = igamc(2f64.powi(m as i32 - 2), d1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), d2 / 2.0);
    TestResult {
        name: "serial",
        p_value: p1.min(p2),
    }
}

/// Approximate entropy test — SP 800-22 §2.12.
#[allow(clippy::cast_possible_truncation)] // block length m is single-digit
pub fn approximate_entropy(s: &BitStream, m: usize) -> TestResult {
    let n = s.len();
    let phi = |m: usize| -> f64 {
        if m == 0 {
            return 0.0;
        }
        let mut counts = vec![0u64; 1 << m];
        let mask = (1 << m) - 1;
        let mut idx = 0usize;
        for &b in s.bits.iter().take(m - 1) {
            idx = (idx << 1) | b as usize;
        }
        for &b in s.bits.iter().cycle().skip(m - 1).take(n) {
            idx = ((idx << 1) | b as usize) & mask;
            if let Some(c) = counts.get_mut(idx) {
                *c += 1;
            }
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n as f64;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n as f64 * (std::f64::consts::LN_2 - ap_en);
    TestResult {
        name: "approximate-entropy",
        p_value: igamc(2f64.powi(m as i32 - 1), chi2 / 2.0),
    }
}

/// Runs the full implemented suite on one stream.
///
/// # Examples
///
/// ```
/// use rmcc_crypto::nist::{run_suite, BitStream};
///
/// // An alternating pattern is wildly non-random and fails most tests.
/// let bits = BitStream::from_bytes(&[0xAA; 4096]);
/// let results = run_suite(&bits);
/// assert!(results.iter().any(|r| !r.passed()));
/// ```
pub fn run_suite(s: &BitStream) -> Vec<TestResult> {
    vec![
        frequency(s),
        block_frequency(s, 128),
        runs(s),
        longest_run(s),
        cumulative_sums(s),
        serial(s, 5),
        approximate_entropy(s, 4),
    ]
}

/// Fraction of (stream, test) pairs that pass across many streams — the
/// paper's "pass NIST randomness tests at the same rate" metric.
pub fn pass_rate(streams: &[BitStream]) -> f64 {
    let mut total = 0usize;
    let mut passed = 0usize;
    for s in streams {
        for r in run_suite(s) {
            total += 1;
            if r.passed() {
                passed += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    passed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes;

    #[test]
    fn special_functions_sanity() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        assert!(erfc(3.0) < 3e-5);
        assert!((erfc(-1.0) + erfc(1.0) - 2.0).abs() < 1e-12);
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((igamc(1.0, 0.0) - 1.0).abs() < 1e-12);
        // Q(1, x) = e^{-x}.
        assert!((igamc(1.0, 2.0) - (-2.0f64).exp()).abs() < 1e-10);
    }

    /// SP 800-22 §2.1.8 worked example: ε = 1100100100001111110110101010001000,
    /// n = 100... the spec's short example uses n=100; we use the documented
    /// 10-bit example: ε = 1011010101 gives P ≈ 0.527089.
    #[test]
    fn frequency_spec_example() {
        let bits = BitStream {
            bits: vec![1, 0, 1, 1, 0, 1, 0, 1, 0, 1],
        };
        let r = frequency(&bits);
        assert!((r.p_value - 0.527_089).abs() < 1e-4, "p = {}", r.p_value);
    }

    /// SP 800-22 §2.3.8 worked example: ε = 1001101011, P ≈ 0.147232.
    #[test]
    fn runs_spec_example() {
        let bits = BitStream {
            bits: vec![1, 0, 0, 1, 1, 0, 1, 0, 1, 1],
        };
        let r = runs(&bits);
        assert!((r.p_value - 0.147_232).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn aes_ctr_stream_passes() {
        let aes = Aes::new_128(&[3u8; 16]);
        let words: Vec<u128> = (0..4096u128).map(|i| aes.encrypt_u128(i)).collect();
        let s = BitStream::from_u128_words(&words);
        let results = run_suite(&s);
        let passed = results.iter().filter(|r| r.passed()).count();
        assert!(
            passed >= results.len() - 1,
            "AES stream failed too many tests: {results:?}"
        );
    }

    #[test]
    fn constant_stream_fails() {
        let s = BitStream::from_bytes(&[0u8; 2048]);
        assert!(!frequency(&s).passed());
        assert!(!runs(&s).passed());
    }

    #[test]
    fn alternating_stream_fails_runs() {
        let s = BitStream::from_bytes(&[0x55u8; 2048]);
        // Perfectly balanced, so frequency passes, but runs are far too many.
        assert!(frequency(&s).passed());
        assert!(!runs(&s).passed());
    }

    #[test]
    fn pass_rate_counts_all_tests() {
        let good = {
            let aes = Aes::new_128(&[9u8; 16]);
            let words: Vec<u128> = (0..2048u128).map(|i| aes.encrypt_u128(i)).collect();
            BitStream::from_u128_words(&words)
        };
        let rate = pass_rate(std::slice::from_ref(&good));
        assert!(rate > 0.8, "rate = {rate}");
    }

    #[test]
    fn bitstream_from_bytes_msb_first() {
        let s = BitStream::from_bytes(&[0b1000_0001]);
        assert_eq!(s.bits, vec![1, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
    }
}
