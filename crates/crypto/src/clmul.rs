//! Carry-less (GF(2) polynomial) multiplication.
//!
//! RMCC combines an independently computed *counter-only* AES result with an
//! *address-only* AES result using a truncated 128×128→128 carry-less
//! multiplier (paper §IV-C5, Figure 11). The multiplier keeps the **middle
//! 128 bits** of the 256-bit product, which discards 128 bits of information
//! and makes the combination irreversible (paper §IV-D1).
//!
//! The hardware design in the paper is a 7-XOR-deep tree (≈1 ns); here we
//! provide a bit-exact software model.

/// A 256-bit carry-less product split into high and low 128-bit halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Product256 {
    /// Bits 128..256 of the product.
    pub hi: u128,
    /// Bits 0..128 of the product.
    pub lo: u128,
}

/// Carry-less multiply of two 64-bit values into a 128-bit product.
///
/// This is the primitive the wider multiplies are built from, equivalent to
/// the x86 `PCLMULQDQ` instruction.
///
/// # Examples
///
/// ```
/// use rmcc_crypto::clmul::clmul64;
///
/// // x * x = x^2 in GF(2)[x]: 0b10 * 0b10 = 0b100.
/// assert_eq!(clmul64(2, 2), 4);
/// // (x+1)^2 = x^2 + 1 (cross terms cancel without carries).
/// assert_eq!(clmul64(3, 3), 5);
/// ```
#[allow(clippy::indexing_slicing)] // index masked to 4 bits into a 16-entry table
pub fn clmul64(a: u64, b: u64) -> u128 {
    // Process 4 bits of `b` at a time against precomputed shifts of `a`,
    // spelled out as an XOR ladder (cheaper than a build loop with
    // per-bit branches — this is the hottest primitive in the tree).
    let a1 = a as u128;
    let a2 = a1 << 1;
    let a4 = a1 << 2;
    let a8 = a1 << 3;
    let table = [
        0,
        a1,
        a2,
        a2 ^ a1,
        a4,
        a4 ^ a1,
        a4 ^ a2,
        a4 ^ a2 ^ a1,
        a8,
        a8 ^ a1,
        a8 ^ a2,
        a8 ^ a2 ^ a1,
        a8 ^ a4,
        a8 ^ a4 ^ a1,
        a8 ^ a4 ^ a2,
        a8 ^ a4 ^ a2 ^ a1,
    ];
    let mut result = 0u128;
    for nibble in 0..16 {
        let idx = ((b >> (4 * nibble)) & 0xf) as usize;
        // audit:allow(R1, reason = "index masked to 4 bits into a 16-entry table is total")
        result ^= table[idx] << (4 * nibble);
    }
    result
}

/// Carry-less multiply of two 128-bit values into a 256-bit product,
/// using Karatsuba over 64-bit halves (three 64×64 multiplies instead of
/// four — exact for carry-less arithmetic, where cross terms XOR).
#[allow(clippy::cast_possible_truncation)] // deliberate low-half extraction
pub fn clmul128(a: u128, b: u128) -> Product256 {
    let a_lo = a as u64;
    let a_hi = (a >> 64) as u64;
    let b_lo = b as u64;
    let b_hi = (b >> 64) as u64;

    let ll = clmul64(a_lo, b_lo); // contributes at bit 0
    let hh = clmul64(a_hi, b_hi); // contributes at bit 128
                                  // (a_lo ⊕ a_hi)(b_lo ⊕ b_hi) = ll ⊕ lh ⊕ hl ⊕ hh, so the middle term
                                  // lh ⊕ hl falls out with one multiply.
    let mid = clmul64(a_lo ^ a_hi, b_lo ^ b_hi) ^ ll ^ hh;
    let lo = ll ^ (mid << 64);
    let hi = hh ^ (mid >> 64);
    Product256 { hi, lo }
}

/// RMCC's OTP combiner: carry-less multiply then **keep the 128 bits in the
/// middle** of the 256-bit product (bits 64..192), as in Figure 11.
///
/// Truncating away both the top and bottom 64 bits destroys enough
/// information that the product cannot be factored back into the two AES
/// results (paper §IV-D1: "RMCC truncates 128 bits of information after
/// multiplying ... a highly lossy and therefore irreversible function").
///
/// # Examples
///
/// ```
/// use rmcc_crypto::clmul::clmul_truncate_mid;
///
/// // The combiner is symmetric in its raw product, so swapping operands
/// // yields the same value; RMCC breaks that symmetry one level up by
/// // zero-padding counters and addresses differently before AES.
/// assert_eq!(clmul_truncate_mid(3, 5), clmul_truncate_mid(5, 3));
/// ```
pub fn clmul_truncate_mid(a: u128, b: u128) -> u128 {
    let p = clmul128(a, b);
    (p.lo >> 64) | (p.hi << 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul64_basics() {
        assert_eq!(clmul64(0, 0xdead_beef), 0);
        assert_eq!(clmul64(1, 0xdead_beef), 0xdead_beef);
        assert_eq!(clmul64(0xdead_beef, 1), 0xdead_beef);
        // Multiplying by x^k shifts left by k.
        assert_eq!(clmul64(1 << 5, 0b1011), 0b1011 << 5);
    }

    #[test]
    fn clmul64_known_vector() {
        // Verified against PCLMULQDQ semantics: (2^63 | 1) * (2^63 | 1)
        // = x^126 + x^63 + x^63 + 1 = x^126 + 1 (middle terms cancel).
        let v = (1u64 << 63) | 1;
        assert_eq!(clmul64(v, v), (1u128 << 126) | 1);
    }

    #[test]
    fn clmul128_matches_bitwise_reference() {
        // Slow reference: shift-and-xor over every set bit.
        fn reference(a: u128, b: u128) -> Product256 {
            let mut hi = 0u128;
            let mut lo = 0u128;
            for bit in 0..128 {
                if b & (1u128 << bit) != 0 {
                    lo ^= a << bit;
                    if bit != 0 {
                        hi ^= a >> (128 - bit);
                    }
                }
            }
            Product256 { hi, lo }
        }
        let samples = [
            (0u128, 0u128),
            (1, u128::MAX),
            (u128::MAX, u128::MAX),
            (0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210),
            (1 << 127, 3),
            (
                0xdead_beef_dead_beef_dead_beef_dead_beef,
                0x1234_5678_9abc_def0_0fed_cba9_8765_4321,
            ),
        ];
        for (a, b) in samples {
            assert_eq!(clmul128(a, b), reference(a, b), "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn clmul128_commutative_and_distributive() {
        let a = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let b = 0x9999_aaaa_bbbb_cccc_dddd_eeee_ffff_0000u128;
        let c = 0x0f0f_0f0f_0f0f_0f0f_f0f0_f0f0_f0f0_f0f0u128;
        assert_eq!(clmul128(a, b), clmul128(b, a));
        let ab = clmul128(a, b ^ c);
        let lhs = Product256 {
            hi: clmul128(a, b).hi ^ clmul128(a, c).hi,
            lo: clmul128(a, b).lo ^ clmul128(a, c).lo,
        };
        assert_eq!(ab, lhs);
    }

    #[test]
    fn truncate_keeps_middle_bits() {
        // a = 1 (identity): product = b, so the middle keep is b >> 64
        // with zero high half.
        let b = 0xaaaa_bbbb_cccc_dddd_1111_2222_3333_4444u128;
        assert_eq!(clmul_truncate_mid(1, b), b >> 64);
        // a = 2^64: product = b << 64, so the middle 128 bits are exactly b.
        assert_eq!(clmul_truncate_mid(1 << 64, b), b);
    }

    #[test]
    fn truncation_is_lossy() {
        // Two different operand pairs can collide after truncation only by
        // chance; but the *same* `a` with `b` differing only in bits that get
        // truncated out must collide, demonstrating information loss.
        let a = 1u128; // product == b, keep b >> 64
        let b1 = 5u128;
        let b2 = 7u128; // differs only in low 64 bits of the product
        assert_eq!(clmul_truncate_mid(a, b1), clmul_truncate_mid(a, b2));
    }
}
