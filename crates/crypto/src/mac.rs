//! Message authentication codes and block encryption on top of OTPs.
//!
//! Following Figure 2b of the paper, a block's MAC is the bitwise XOR of a
//! one-time pad with a Galois-field dot product of the block's eight 64-bit
//! words against eight secret keys, truncated to 56 bits. The dot product is
//! "highly parallel" (§II-C) and therefore fast; the AES producing the pad is
//! the slow part that counter caching / memoization hides.

use crate::clmul::clmul64;
use crate::otp::BlockPads;

/// Bytes in a memory data block.
pub const BLOCK_BYTES: usize = 64;

/// A 64-byte memory block as raw bytes.
pub type DataBlock = [u8; BLOCK_BYTES];

/// Width of a stored MAC in bits (§II-B: "a 56-bit MAC").
pub const MAC_BITS: u32 = 56;

/// Mask selecting the stored 56 MAC bits.
pub const MAC_MASK: u64 = (1 << MAC_BITS) - 1;

/// Multiplies two elements of GF(2^64) with the standard reduction
/// polynomial `x^64 + x^4 + x^3 + x + 1`.
pub fn gf64_mul(a: u64, b: u64) -> u64 {
    let wide = clmul64(a, b);
    reduce_gf64(wide)
}

/// Reduces a 128-bit carry-less product modulo `x^64 + x^4 + x^3 + x + 1`.
#[allow(clippy::cast_possible_truncation)] // two folds leave the high half zero
fn reduce_gf64(mut wide: u128) -> u64 {
    // x^64 ≡ x^4 + x^3 + x + 1 (0b11011 = 0x1b). Multiplying the high half
    // by that sparse constant is four shifted copies — no general clmul.
    for _ in 0..2 {
        let hi = wide >> 64;
        if hi == 0 {
            break;
        }
        let folded = hi ^ (hi << 1) ^ (hi << 3) ^ (hi << 4);
        wide = (wide & 0xffff_ffff_ffff_ffff) ^ folded;
    }
    wide as u64
}

/// The eight GF(2^64) keys used in the MAC dot product, plus precomputed
/// 4-bit-window multiplication tables.
///
/// `tables[w][j][n]` holds `(n · x^(4j)) ⊗ keys[w]` — the GF(2^64) product
/// of nibble value `n` placed at nibble position `j` of a word with key
/// `w`. Multiplication distributes over XOR, so a word's full key product
/// is the XOR of its sixteen windowed entries: the per-block MAC path does
/// table lookups and XORs only, with no carry-less multiply at all.
#[derive(Clone)]
pub struct MacKeys {
    keys: [u64; 8],
    tables: Box<[[[u64; 16]; 16]; 8]>,
}

impl std::fmt::Debug for MacKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MacKeys").finish_non_exhaustive()
    }
}

impl MacKeys {
    /// Derives eight non-zero dot-product keys from a seed.
    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64: a tiny, well-distributed PRNG sufficient for deriving
        // simulation keys.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut keys = [0u64; 8];
        for k in keys.iter_mut() {
            loop {
                let v = next();
                if v != 0 {
                    *k = v;
                    break;
                }
            }
        }
        let mut tables = Box::new([[[0u64; 16]; 16]; 8]);
        for (k, word_tables) in keys.iter().zip(tables.iter_mut()) {
            for (j, nibble_table) in word_tables.iter_mut().enumerate() {
                for (n, slot) in nibble_table.iter_mut().enumerate() {
                    // audit:allow(R5, reason = "one-time key-table build at seed time; gf64_mul is a fixed 64-round shift/xor ladder regardless of operand values")
                    *slot = gf64_mul((n as u64) << (4 * j), *k);
                }
            }
        }
        MacKeys { keys, tables }
    }

    /// The raw dot-product keys, one per 64-bit word of the block.
    pub fn words(&self) -> &[u64; 8] {
        &self.keys
    }

    /// The GF dot product of a block's eight 64-bit words with the keys,
    /// via the precomputed window tables (see the type docs).
    pub fn dot_product(&self, block: &DataBlock) -> u64 {
        let mut acc = 0u64;
        for (chunk, word_tables) in block.chunks_exact(8).zip(self.tables.iter()) {
            // Big-endian byte fold — same value as `u64::from_be_bytes`
            // without the fallible slice-to-array conversion.
            let word = chunk.iter().fold(0u64, |w, &b| (w << 8) | u64::from(b));
            for (j, nibble_table) in word_tables.iter().enumerate() {
                let n = ((word >> (4 * j)) & 0xf) as usize;
                acc ^= nibble_table.get(n).copied().unwrap_or(0);
            }
        }
        acc
    }
}

/// Computes the stored 56-bit MAC for a block: `truncate(dot ⊕ pad)`.
///
/// # Examples
///
/// ```
/// use rmcc_crypto::mac::{compute_mac, MacKeys, MAC_MASK};
///
/// let keys = MacKeys::from_seed(9);
/// let mac = compute_mac(&keys, &[0u8; 64], 0xdead_beef);
/// assert!(mac <= MAC_MASK);
/// ```
#[allow(clippy::cast_possible_truncation)] // the fold below is the truncation
pub fn compute_mac(keys: &MacKeys, block: &DataBlock, mac_pad: u128) -> u64 {
    // XOR-and-truncate (Figure 2b): fold the 128-bit pad to 64 bits, XOR
    // with the dot product, keep 56 bits.
    let pad64 = (mac_pad as u64) ^ ((mac_pad >> 64) as u64);
    (keys.dot_product(block) ^ pad64) & MAC_MASK
}

/// Verifies a stored MAC; `true` means the block is authentic.
pub fn verify_mac(keys: &MacKeys, block: &DataBlock, mac_pad: u128, stored: u64) -> bool {
    compute_mac(keys, block, mac_pad) == stored
}

/// XORs a block with its four word pads — encryption and decryption are the
/// same operation in counter mode.
pub fn xor_with_pads(block: &DataBlock, pads: &BlockPads) -> DataBlock {
    let mut out = [0u8; BLOCK_BYTES];
    for ((dst, src), word) in out
        .chunks_exact_mut(16)
        .zip(block.chunks_exact(16))
        .zip(pads.words.iter())
    {
        for ((d, s), p) in dst
            .iter_mut()
            .zip(src.iter())
            .zip(word.to_be_bytes().iter())
        {
            *d = s ^ p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::otp::{KeySet, OtpPipeline, RmccOtp, SgxOtp};

    #[test]
    fn gf64_identity_and_zero() {
        assert_eq!(gf64_mul(0, 0xdead), 0);
        assert_eq!(gf64_mul(1, 0xdead), 0xdead);
        assert_eq!(gf64_mul(0xdead, 1), 0xdead);
    }

    #[test]
    fn gf64_reduction_vector() {
        // x^63 * x = x^64 ≡ x^4 + x^3 + x + 1 = 0x1b.
        assert_eq!(gf64_mul(1 << 63, 2), 0x1b);
    }

    #[test]
    fn gf64_commutative_associative() {
        let a = 0x0123_4567_89ab_cdef;
        let b = 0xfedc_ba98_7654_3210;
        let c = 0x0f1e_2d3c_4b5a_6978;
        assert_eq!(gf64_mul(a, b), gf64_mul(b, a));
        assert_eq!(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
        // Distributivity over XOR.
        assert_eq!(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
    }

    #[test]
    fn windowed_dot_product_matches_direct_gf_fold() {
        // The window tables are an optimization only: the dot product must
        // equal the direct word-by-word GF multiply against the raw keys.
        for seed in [0u64, 1, 0xfeed, u64::MAX] {
            let keys = MacKeys::from_seed(seed);
            for fill in 0..8u8 {
                let mut block = [0u8; BLOCK_BYTES];
                for (i, b) in block.iter_mut().enumerate() {
                    *b = (i as u8)
                        .wrapping_mul(37)
                        .wrapping_add(fill.wrapping_mul(53));
                }
                let direct =
                    block
                        .chunks_exact(8)
                        .zip(keys.words().iter())
                        .fold(0u64, |acc, (chunk, k)| {
                            let word = chunk.iter().fold(0u64, |w, &b| (w << 8) | u64::from(b));
                            acc ^ gf64_mul(word, *k)
                        });
                assert_eq!(keys.dot_product(&block), direct, "seed {seed} fill {fill}");
            }
        }
    }

    #[test]
    fn mac_detects_single_bit_flips() {
        let keys = MacKeys::from_seed(1);
        let mut block = [0u8; BLOCK_BYTES];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as u8;
        }
        let pad = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let mac = compute_mac(&keys, &block, pad);
        for byte in 0..BLOCK_BYTES {
            for bit in 0..8 {
                let mut tampered = block;
                tampered[byte] ^= 1 << bit;
                assert!(
                    !verify_mac(&keys, &tampered, pad, mac),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn mac_depends_on_pad() {
        let keys = MacKeys::from_seed(1);
        let block = [7u8; BLOCK_BYTES];
        assert_ne!(compute_mac(&keys, &block, 1), compute_mac(&keys, &block, 2));
    }

    #[test]
    fn mac_fits_in_56_bits() {
        let keys = MacKeys::from_seed(3);
        for i in 0..32u64 {
            let block = [i as u8; BLOCK_BYTES];
            assert!(compute_mac(&keys, &block, i as u128) <= MAC_MASK);
        }
    }

    #[test]
    fn encrypt_decrypt_roundtrip_both_pipelines() {
        let keys = KeySet::from_master(55);
        let pipelines: [&dyn OtpPipeline; 2] =
            [&SgxOtp::new(keys.clone()), &RmccOtp::new(keys.clone())];
        let mut plain = [0u8; BLOCK_BYTES];
        for (i, b) in plain.iter_mut().enumerate() {
            *b = (i * 3) as u8;
        }
        for p in pipelines {
            let pads = p.block_pads(0x80, 41);
            let cipher = xor_with_pads(&plain, &pads);
            assert_ne!(cipher, plain, "{} must not be identity", p.name());
            assert_eq!(xor_with_pads(&cipher, &pads), plain);
        }
    }

    #[test]
    fn ciphertext_changes_when_counter_changes() {
        // Counter-mode security: the same plaintext written twice (with the
        // bumped counter) must produce different ciphertext.
        let p = RmccOtp::new(KeySet::from_master(8));
        let plain = [0xabu8; BLOCK_BYTES];
        let c1 = xor_with_pads(&plain, &p.block_pads(5, 100));
        let c2 = xor_with_pads(&plain, &p.block_pads(5, 101));
        assert_ne!(c1, c2);
    }
}
