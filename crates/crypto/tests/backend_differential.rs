//! Cross-backend differential harness for the AES layer.
//!
//! The three backends — byte-wise reference, T-table `fast`, bitsliced
//! constant-time `hardened` — must be ciphertext-identical on every input:
//! that equivalence is what lets `RMCC_BACKEND` change the timing profile
//! of the whole stack without moving a single golden fixture. This suite
//! pins it three ways, all through one shared matrix helper:
//!
//! * the NIST vector set (FIPS-197 appendices and SP 800-38A ECB
//!   vectors) against every backend, scalar and batched;
//! * property-generated random keys/plaintexts for AES-128 and AES-256;
//! * all-lanes and partial-batch (< 8 blocks) paths against the scalar
//!   path, per backend and across backends.

// Test harness: panicking on malformed fixtures is the failure mode we
// want, and seed-derived bytes truncate by design.
#![allow(clippy::expect_used, clippy::cast_possible_truncation)]
use proptest::prelude::*;
use rmcc_crypto::aes::{Aes, AesVariant, Backend, Block, BATCH_BLOCKS};

const BACKENDS: [Backend; 3] = [Backend::Reference, Backend::Fast, Backend::Hardened];

/// Deterministic byte material from a seed (splitmix64 stream).
fn bytes_from_seed<const N: usize>(mut seed: u64) -> [u8; N] {
    core::array::from_fn(|_| {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = seed;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (x ^ (x >> 31)) as u8
    })
}

/// One schedule per backend for the same key.
fn schedule_matrix(key: &[u8], variant: AesVariant) -> Vec<(Backend, Aes)> {
    BACKENDS
        .iter()
        .map(|&b| {
            (
                b,
                Aes::expand_on(key, variant, b).expect("matrix key has the variant's length"),
            )
        })
        .collect()
}

/// The shared matrix helper: encrypts `pt` under `key` on every backend —
/// scalar, full 8-lane batch, and every partial batch width — asserts all
/// routes agree, and returns the agreed ciphertext.
fn agreed_ciphertext(key: &[u8], variant: AesVariant, pt: Block) -> Block {
    let matrix = schedule_matrix(key, variant);
    let mut agreed: Option<(Backend, Block)> = None;
    for (backend, aes) in &matrix {
        let scalar = aes.encrypt_block(pt);
        // Full batch: the block in all 8 lanes must give 8 copies.
        assert_eq!(
            aes.encrypt_batch8([pt; BATCH_BLOCKS]),
            [scalar; BATCH_BLOCKS],
            "{backend}: full batch diverged from scalar"
        );
        // Every partial width, including the 8-lane one.
        for n in 1..=BATCH_BLOCKS {
            let mut io = vec![pt; n];
            aes.encrypt_blocks(&mut io);
            assert_eq!(
                io,
                vec![scalar; n],
                "{backend}: partial batch of {n} diverged from scalar"
            );
        }
        match &agreed {
            None => agreed = Some((*backend, scalar)),
            Some((first, ct)) => {
                assert_eq!(scalar, *ct, "{backend} disagrees with {first}");
            }
        }
    }
    agreed.expect("matrix is never empty").1
}

/// A known-answer vector: key, plaintext, expected ciphertext.
struct Vector {
    name: &'static str,
    key: &'static [u8],
    pt: Block,
    ct: Block,
}

/// FIPS-197 appendix and NIST SP 800-38A ECB vectors for AES-128/AES-256.
fn nist_vectors() -> Vec<Vector> {
    const SP800_KEY_128: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    const SP800_KEY_256: [u8; 32] = [
        0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca, 0x71, 0xbe, 0x2b, 0x73, 0xae, 0xf0, 0x85, 0x7d, 0x77,
        0x81, 0x1f, 0x35, 0x2c, 0x07, 0x3b, 0x61, 0x08, 0xd7, 0x2d, 0x98, 0x10, 0xa3, 0x09, 0x14,
        0xdf, 0xf4,
    ];
    const SEQ_KEY_128: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ];
    const SEQ_KEY_256: [u8; 32] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d,
        0x1e, 0x1f,
    ];
    vec![
        Vector {
            name: "FIPS-197 Appendix B (AES-128)",
            key: &SP800_KEY_128,
            pt: [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34,
            ],
            ct: [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32,
            ],
        },
        Vector {
            name: "FIPS-197 Appendix C.1 (AES-128)",
            key: &SEQ_KEY_128,
            pt: [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                0xee, 0xff,
            ],
            ct: [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a,
            ],
        },
        Vector {
            name: "FIPS-197 Appendix C.3 (AES-256)",
            key: &SEQ_KEY_256,
            pt: [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                0xee, 0xff,
            ],
            ct: [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.1 ECB-AES128 block 1",
            key: &SP800_KEY_128,
            pt: [
                0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                0x17, 0x2a,
            ],
            ct: [
                0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
                0xef, 0x97,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.1 ECB-AES128 block 2",
            key: &SP800_KEY_128,
            pt: [
                0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
                0x8e, 0x51,
            ],
            ct: [
                0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69, 0x9d, 0xe7, 0x85, 0x89, 0x5a, 0x96, 0xfd,
                0xba, 0xaf,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.1 ECB-AES128 block 3",
            key: &SP800_KEY_128,
            pt: [
                0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19, 0x1a, 0x0a,
                0x52, 0xef,
            ],
            ct: [
                0x43, 0xb1, 0xcd, 0x7f, 0x59, 0x8e, 0xce, 0x23, 0x88, 0x1b, 0x00, 0xe3, 0xed, 0x03,
                0x06, 0x88,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.1 ECB-AES128 block 4",
            key: &SP800_KEY_128,
            pt: [
                0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c,
                0x37, 0x10,
            ],
            ct: [
                0x7b, 0x0c, 0x78, 0x5e, 0x27, 0xe8, 0xad, 0x3f, 0x82, 0x23, 0x20, 0x71, 0x04, 0x72,
                0x5d, 0xd4,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.5 ECB-AES256 block 1",
            key: &SP800_KEY_256,
            pt: [
                0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                0x17, 0x2a,
            ],
            ct: [
                0xf3, 0xee, 0xd1, 0xbd, 0xb5, 0xd2, 0xa0, 0x3c, 0x06, 0x4b, 0x5a, 0x7e, 0x3d, 0xb1,
                0x81, 0xf8,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.5 ECB-AES256 block 2",
            key: &SP800_KEY_256,
            pt: [
                0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
                0x8e, 0x51,
            ],
            ct: [
                0x59, 0x1c, 0xcb, 0x10, 0xd4, 0x10, 0xed, 0x26, 0xdc, 0x5b, 0xa7, 0x4a, 0x31, 0x36,
                0x28, 0x70,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.5 ECB-AES256 block 3",
            key: &SP800_KEY_256,
            pt: [
                0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19, 0x1a, 0x0a,
                0x52, 0xef,
            ],
            ct: [
                0xb6, 0xed, 0x21, 0xb9, 0x9c, 0xa6, 0xf4, 0xf9, 0xf1, 0x53, 0xe7, 0xb1, 0xbe, 0xaf,
                0xed, 0x1d,
            ],
        },
        Vector {
            name: "SP 800-38A F.1.5 ECB-AES256 block 4",
            key: &SP800_KEY_256,
            pt: [
                0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c,
                0x37, 0x10,
            ],
            ct: [
                0x23, 0x30, 0x4b, 0x7a, 0x39, 0xf9, 0xf3, 0xff, 0x06, 0x7d, 0x8d, 0x8f, 0x9e, 0x24,
                0xec, 0xc7,
            ],
        },
    ]
}

/// The full NIST vector set through the matrix helper: every backend,
/// scalar and batched, must produce the published ciphertext.
#[test]
fn nist_vectors_pass_on_every_backend() {
    for v in nist_vectors() {
        let variant = if v.key.len() == 16 {
            AesVariant::Aes128
        } else {
            AesVariant::Aes256
        };
        assert_eq!(
            agreed_ciphertext(v.key, variant, v.pt),
            v.ct,
            "{} produced the wrong ciphertext",
            v.name
        );
    }
}

/// Distinct plaintexts in distinct lanes: each lane must encrypt to its
/// own scalar ciphertext, independent of its neighbors, on every backend.
#[test]
fn distinct_lanes_stay_independent_on_every_backend() {
    for variant in [AesVariant::Aes128, AesVariant::Aes256] {
        let key: [u8; 32] = bytes_from_seed(0xfeed);
        let key = &key[..variant.key_bytes()];
        for (backend, aes) in schedule_matrix(key, variant) {
            let blocks: [Block; BATCH_BLOCKS] =
                core::array::from_fn(|lane| bytes_from_seed(lane as u64 + 1));
            let batch = aes.encrypt_batch8(blocks);
            for (lane, (got, pt)) in batch.iter().zip(blocks.iter()).enumerate() {
                assert_eq!(
                    *got,
                    aes.encrypt_block(*pt),
                    "{backend} {variant}: lane {lane} leaked into its neighbors"
                );
            }
        }
    }
}

proptest! {
    /// Random AES-128 keys and plaintexts: all backends and all batch
    /// routes must agree.
    #[test]
    fn random_aes128_inputs_agree(kseed in any::<u64>(), pseed in any::<u64>()) {
        let key: [u8; 16] = bytes_from_seed(kseed);
        let pt: Block = bytes_from_seed(pseed);
        let _ = agreed_ciphertext(&key, AesVariant::Aes128, pt);
    }

    /// Random AES-256 keys and plaintexts: all backends and all batch
    /// routes must agree.
    #[test]
    fn random_aes256_inputs_agree(kseed in any::<u64>(), pseed in any::<u64>()) {
        let key: [u8; 32] = bytes_from_seed(kseed);
        let pt: Block = bytes_from_seed(pseed);
        let _ = agreed_ciphertext(&key, AesVariant::Aes256, pt);
    }

    /// Random partial batches of random widths: `encrypt_blocks` must
    /// match per-block scalar encryption on every backend, and the
    /// backends must match each other lane for lane.
    #[test]
    fn random_partial_batches_agree(seed in any::<u64>(), n in 1usize..9) {
        let key: [u8; 16] = bytes_from_seed(seed ^ 0xa5a5);
        let blocks: Vec<Block> = (0..n)
            .map(|i| bytes_from_seed(seed.wrapping_add(i as u64)))
            .collect();
        let mut outputs: Vec<Vec<Block>> = Vec::new();
        for (backend, aes) in schedule_matrix(&key, AesVariant::Aes128) {
            let mut io = blocks.clone();
            aes.encrypt_blocks(&mut io);
            for (lane, (got, pt)) in io.iter().zip(blocks.iter()).enumerate() {
                prop_assert_eq!(
                    *got,
                    aes.encrypt_block(*pt),
                    "{} lane {} of {} diverged from scalar",
                    backend,
                    lane,
                    n
                );
            }
            outputs.push(io);
        }
        for pair in outputs.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "backends disagree on a partial batch");
        }
    }

    /// The `u128` batch form (what the OTP pipeline drives) agrees with
    /// the scalar `u128` form on every backend.
    #[test]
    fn random_u128_batches_agree(seed in any::<u64>()) {
        let key: [u8; 16] = bytes_from_seed(seed ^ 0x5a5a);
        let inputs: [u128; BATCH_BLOCKS] = core::array::from_fn(|lane| {
            u128::from_be_bytes(bytes_from_seed(seed.wrapping_add(lane as u64 * 7)))
        });
        for (backend, aes) in schedule_matrix(&key, AesVariant::Aes128) {
            let batch = aes.encrypt_u128_batch8(inputs);
            for (lane, (got, input)) in batch.iter().zip(inputs.iter()).enumerate() {
                prop_assert_eq!(
                    *got,
                    aes.encrypt_u128(*input),
                    "{} lane {} diverged on the u128 route",
                    backend,
                    lane
                );
            }
        }
    }
}
