//! Secure-memory metadata substrate for the RMCC reproduction.
//!
//! Everything a counter-mode secure memory needs besides the raw crypto:
//!
//! * [`counters`] — the three counter organizations the paper evaluates:
//!   SGX monolithic, split SC-64, and Morphable, with overflow/relevel
//!   mechanics.
//! * [`layout`] — physical placement of counter blocks and integrity-tree
//!   nodes, plus the coverage arithmetic.
//! * [`tree`] — the full counter state (L0 + tree levels + on-chip root),
//!   lazily materialized, with the paper's randomized-counter
//!   initialization and the Observed-System-Max register.
//! * [`engine`] — a *functional* secure memory (real AES, real MACs, real
//!   tree verification) that demonstrates confidentiality and integrity end
//!   to end, including replay-attack detection.
//!
//! # Example
//!
//! ```
//! use rmcc_secmem::counters::CounterOrg;
//! use rmcc_secmem::engine::{PipelineKind, SecureMemory};
//!
//! let mut mem = SecureMemory::new(CounterOrg::Sc64, 1 << 24, PipelineKind::Rmcc, 7);
//! mem.write(0, [1u8; 64]).unwrap();
//! mem.tamper_data(0, 5, 0x80).unwrap();
//! assert!(mem.read(0).is_err()); // integrity violation detected
//! ```

#![forbid(unsafe_code)]
// Test code may use lossy casts freely; clippy.toml has no in-tests knob for them.
#![cfg_attr(test, allow(clippy::cast_possible_truncation))]
#![deny(missing_docs)]

pub mod arena;
pub mod counters;
pub mod engine;
pub mod layout;
pub mod service;
pub mod tree;

pub use counters::{CounterBlock, CounterOrg, WouldOverflow};
pub use engine::{
    CounterUpdatePolicy, DataSnapshot, IncrementPolicy, NodeSnapshot, PipelineKind, ReadError,
    RebuildReport, SecureMemory, TamperError, WriteError,
};
pub use layout::{LayoutError, MetadataLayout, BLOCK_BYTES};
pub use service::{
    digest_results, jobs_from_env, serial_reference, Access, AccessResult, HealthConfig,
    SecureMemoryService, ServiceConfig, ServiceSnapshot, ShardFaultCause, ShardHealth,
    ShardHealthStats,
};
pub use tree::{InitPolicy, MetadataState, RANDOM_INIT_MEAN};
