//! Write-counter organizations: SGX monolithic counters, split counters
//! (SC-64), and Morphable counters.
//!
//! A 64 B *counter block* encodes the write counters of many data blocks
//! (§II-C/§II-D of the paper):
//!
//! * **Mono8** — eight independent 56-bit counters (SGX). Coverage 8.
//! * **Sc64** — one 64-bit major counter + sixty-four 7-bit minors; a block's
//!   counter value is `major + minor`. Coverage 64. A minor that cannot
//!   encode its new value forces a *relevel*: every encoded value in the
//!   block is raised to a common target and all covered data blocks are
//!   re-encrypted.
//! * **Morphable128** — one major + 128 minors with a format ladder
//!   (uniform low-width minors, or a zero-bitmap plus wider non-zero minors)
//!   and min-rebase, which is what lets it cover two 4 KB pages with few
//!   overflows. Coverage 128.
//!
//! The *mechanism* here is policy-free: [`CounterBlock::try_write`] reports
//! [`WouldOverflow`] and the caller (the baseline MC or RMCC's
//! memoization-aware update) chooses the relevel target.

use rmcc_crypto::otp::COUNTER_MAX;

/// SC-64's per-minor ceiling: 7-bit minors (SGX-style split counters).
const SC64_MINOR_LIMIT: u64 = 127;

/// Which counter organization a counter block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterOrg {
    /// SGX-style: 8 × 56-bit monolithic counters per block.
    Mono8,
    /// Split counters, 64-bit major + 64 × 7-bit minors.
    Sc64,
    /// Morphable counters: 128 minors with zero-compression formats.
    Morphable128,
}

impl CounterOrg {
    /// Data blocks covered per 64 B counter block (8 / 64 / 128).
    pub fn coverage(self) -> usize {
        match self {
            CounterOrg::Mono8 => 8,
            CounterOrg::Sc64 => 64,
            CounterOrg::Morphable128 => 128,
        }
    }

    /// Integrity-tree arity: counters per tree node, same encoding as L0.
    pub fn tree_arity(self) -> usize {
        self.coverage()
    }

    /// Counter-decode latency in picoseconds (§V: "We simulate 3ns counter
    /// decoding latency" for Morphable; simpler formats decode faster).
    pub fn decode_latency_ps(self) -> u64 {
        match self {
            CounterOrg::Mono8 => 0,
            CounterOrg::Sc64 => 1_000,
            CounterOrg::Morphable128 => 3_000,
        }
    }
}

impl std::fmt::Display for CounterOrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CounterOrg::Mono8 => write!(f, "SGX-mono"),
            CounterOrg::Sc64 => write!(f, "SC-64"),
            CounterOrg::Morphable128 => write!(f, "Morphable"),
        }
    }
}

/// Error: the requested counter value cannot be encoded without releveling
/// the whole counter block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WouldOverflow {
    /// The smallest shared target that releveling must reach so every
    /// covered block still moves forward (`max encoded value + 1`).
    pub min_relevel_target: u64,
}

impl std::fmt::Display for WouldOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "counter update requires releveling to ≥ {}",
            self.min_relevel_target
        )
    }
}

impl std::error::Error for WouldOverflow {}

/// Payload bits available to Morphable minors (512 − 64 major − 8 format
/// metadata).
const MORPHABLE_PAYLOAD_BITS: usize = 440;

/// One 64 B counter block's architectural state.
///
/// # Examples
///
/// ```
/// use rmcc_secmem::counters::{CounterBlock, CounterOrg};
///
/// let mut cb = CounterBlock::new(CounterOrg::Sc64);
/// cb.try_write(3, 1).unwrap();
/// assert_eq!(cb.value(3), 1);
/// // Jumping past the 7-bit minor range reports an overflow.
/// assert!(cb.try_write(3, 400).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBlock {
    org: CounterOrg,
    major: u64,
    minors: Vec<u64>,
}

impl CounterBlock {
    /// A zero-initialized counter block.
    pub fn new(org: CounterOrg) -> Self {
        CounterBlock {
            org,
            major: 0,
            minors: vec![0; org.coverage()],
        }
    }

    /// A counter block whose values start at arbitrary (e.g. randomized)
    /// state: `major` plus per-slot minors, canonicalized for the format.
    ///
    /// The paper's lifetime methodology randomizes all counters before
    /// measurement so RMCC cannot trivially memoize "value zero" (§V).
    pub fn with_state(org: CounterOrg, major: u64, minors: Vec<u64>) -> Self {
        assert_eq!(minors.len(), org.coverage(), "one minor per covered block");
        let mut cb = CounterBlock { org, major, minors };
        cb.rebase();
        cb
    }

    /// The organization of this block.
    pub fn org(&self) -> CounterOrg {
        self.org
    }

    /// The encoded counter value of covered slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for the organization.
    #[allow(clippy::indexing_slicing)] // documented panic contract
    pub fn value(&self, slot: usize) -> u64 {
        // Encoded values are capped at COUNTER_MAX (< 2^56) by every write
        // path, so the sum cannot overflow; saturating makes that explicit.
        // audit:allow(R1, reason = "slot bounds are this accessor's documented panic contract")
        self.major.saturating_add(self.minors[slot])
    }

    /// The largest encoded value in the block.
    pub fn max_value(&self) -> u64 {
        self.major
            .saturating_add(self.minors.iter().copied().max().unwrap_or(0))
    }

    /// Iterates over all encoded values.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.minors
            .iter()
            .map(move |m| self.major.saturating_add(*m))
    }

    /// Attempts to raise slot `slot` to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`WouldOverflow`] when the value cannot be encoded in the
    /// block's format; the caller must [`CounterBlock::relevel`] (and
    /// re-encrypt every covered block).
    ///
    /// # Panics
    ///
    /// Panics if `target` does not strictly increase the slot's value (the
    /// security invariant: a (block, counter) pair is never reused) or if it
    /// exceeds the 56-bit counter space.
    pub fn try_write(&mut self, slot: usize, target: u64) -> Result<(), WouldOverflow> {
        assert!(
            target > self.value(slot),
            "counter must strictly increase (slot {slot}: {} -> {target})",
            self.value(slot)
        );
        assert!(target <= COUNTER_MAX, "counter value exceeds 56 bits");
        if target < self.major {
            // Cannot represent values below the shared major at all.
            return Err(WouldOverflow {
                min_relevel_target: self.max_value() + 1,
            });
        }
        let new_minor = target - self.major;
        match self.org {
            CounterOrg::Mono8 => {
                // `slot` was bounds-checked by the `value(slot)` assert above.
                if let Some(m) = self.minors.get_mut(slot) {
                    *m = new_minor;
                }
                Ok(())
            }
            CounterOrg::Sc64 => {
                if new_minor <= SC64_MINOR_LIMIT {
                    if let Some(m) = self.minors.get_mut(slot) {
                        *m = new_minor;
                    }
                    Ok(())
                } else {
                    Err(WouldOverflow {
                        min_relevel_target: self.max_value() + 1,
                    })
                }
            }
            CounterOrg::Morphable128 => {
                // Check the candidate multiset analytically (no clone, no
                // allocation on the write path), then commit in place and
                // min-rebase — free: it changes no encoded values.
                if morphable_write_fits(&self.minors, slot, new_minor) {
                    if let Some(m) = self.minors.get_mut(slot) {
                        *m = new_minor;
                    }
                    self.rebase();
                    Ok(())
                } else {
                    Err(WouldOverflow {
                        min_relevel_target: self.max_value() + 1,
                    })
                }
            }
        }
    }

    /// Whether raising `slot` to `target` would succeed, without changing
    /// any state. Policies use this to weigh a memoized jump against the
    /// baseline `+1` before committing.
    pub fn can_write(&self, slot: usize, target: u64) -> bool {
        if target <= self.value(slot) || target > COUNTER_MAX || target < self.major {
            return false;
        }
        let new_minor = target - self.major;
        match self.org {
            CounterOrg::Mono8 => true,
            CounterOrg::Sc64 => new_minor <= SC64_MINOR_LIMIT,
            CounterOrg::Morphable128 => morphable_write_fits(&self.minors, slot, new_minor),
        }
    }

    /// Relevels the block: every covered slot's value becomes exactly
    /// `target`. The caller is responsible for re-encrypting all covered
    /// data blocks with the new value (that traffic is the overflow cost).
    ///
    /// # Panics
    ///
    /// Panics unless `target > max_value()`, which both the baseline policy
    /// (`max + 1`) and RMCC's policy (nearest memoized ≥ `max + 1`) satisfy,
    /// and panics if `target` exceeds the 56-bit counter space.
    pub fn relevel(&mut self, target: u64) {
        assert!(
            target > self.max_value(),
            "relevel must move every counter forward"
        );
        assert!(target <= COUNTER_MAX, "counter value exceeds 56 bits");
        self.major = target;
        self.minors.iter_mut().for_each(|m| *m = 0);
    }

    /// Subtracts the minimum minor from every minor and folds it into the
    /// major — Morphable's rebase. Encoded values are unchanged, so no
    /// re-encryption is needed.
    fn rebase(&mut self) {
        if self.org != CounterOrg::Morphable128 {
            return;
        }
        let min = self.minors.iter().copied().min().unwrap_or(0);
        if min > 0 {
            // Rebase preserves encoded values, so the sum stays bounded.
            self.major = self.major.saturating_add(min);
            self.minors.iter_mut().for_each(|m| *m -= min);
        }
    }
}

/// Whether replacing `minors[slot]` with `new_minor` yields a multiset that
/// still fits one of Morphable's formats *after min-rebase*.
///
/// Computed analytically over the existing minors — the candidate is never
/// materialized, so the hot write path performs no heap allocation. The
/// rebase subtracts the candidate minimum from every minor, so the widest
/// post-rebase field is `max − min` and a minor is non-zero post-rebase iff
/// it exceeds the candidate minimum.
fn morphable_write_fits(minors: &[u64], slot: usize, new_minor: u64) -> bool {
    let mut low = new_minor;
    let mut high = new_minor;
    for (i, &m) in minors.iter().enumerate() {
        if i != slot {
            low = low.min(m);
            high = high.max(m);
        }
    }
    let rebased_max = high - low;
    if rebased_max == 0 {
        return true;
    }
    let width = 64 - rebased_max.leading_zeros() as usize; // bits to hold max
    if width > 9 {
        return false; // beyond the widest field in the ladder
    }
    // Uniform format: every minor gets `width` bits.
    if minors.len() * width <= MORPHABLE_PAYLOAD_BITS {
        return true;
    }
    // Zero-compressed format: 1 presence bit per minor + `width` bits per
    // non-zero (post-rebase) minor.
    let mut nonzero = usize::from(new_minor > low);
    for (i, &m) in minors.iter().enumerate() {
        if i != slot && m > low {
            nonzero += 1;
        }
    }
    minors.len() + nonzero * width <= MORPHABLE_PAYLOAD_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_arity() {
        assert_eq!(CounterOrg::Mono8.coverage(), 8);
        assert_eq!(CounterOrg::Sc64.coverage(), 64);
        assert_eq!(CounterOrg::Morphable128.coverage(), 128);
        assert_eq!(CounterOrg::Morphable128.tree_arity(), 128);
        assert_eq!(CounterOrg::Morphable128.decode_latency_ps(), 3_000);
    }

    #[test]
    fn mono_counters_are_independent() {
        let mut cb = CounterBlock::new(CounterOrg::Mono8);
        cb.try_write(0, 1_000_000).unwrap();
        cb.try_write(7, 5).unwrap();
        assert_eq!(cb.value(0), 1_000_000);
        assert_eq!(cb.value(7), 5);
        assert_eq!(cb.value(3), 0);
        assert_eq!(cb.max_value(), 1_000_000);
    }

    #[test]
    fn sc64_encodes_within_minor_range() {
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        for v in 1..=127 {
            cb.try_write(0, v).unwrap();
        }
        assert_eq!(cb.value(0), 127);
        let err = cb.try_write(0, 128).unwrap_err();
        assert_eq!(err.min_relevel_target, 128);
    }

    #[test]
    fn sc64_relevel_resets_minors() {
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        cb.try_write(0, 127).unwrap();
        cb.try_write(1, 50).unwrap();
        cb.relevel(128);
        for slot in 0..64 {
            assert_eq!(cb.value(slot), 128);
        }
        // Writes work again.
        cb.try_write(0, 129).unwrap();
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn counter_reuse_panics() {
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        cb.try_write(0, 5).unwrap();
        let _ = cb.try_write(0, 5);
    }

    #[test]
    #[should_panic(expected = "move every counter forward")]
    fn relevel_backwards_panics() {
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        cb.try_write(0, 100).unwrap();
        cb.relevel(100);
    }

    #[test]
    fn morphable_survives_many_more_increments_than_sc64() {
        // Hammer one slot with +1 writes; count how many succeed before the
        // first overflow.
        let count_until_overflow = |org: CounterOrg| {
            let mut cb = CounterBlock::new(org);
            let mut v = 0u64;
            loop {
                v += 1;
                if cb.try_write(0, v).is_err() {
                    return v;
                }
            }
        };
        let sc = count_until_overflow(CounterOrg::Sc64);
        let mo = count_until_overflow(CounterOrg::Morphable128);
        assert_eq!(sc, 128);
        assert!(mo > sc, "morphable ({mo}) must outlast sc64 ({sc})");
    }

    #[test]
    fn morphable_rebase_reclaims_headroom() {
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        // Raise every slot in lockstep (uniform 3-bit format always fits),
        // letting min-rebase fold each completed round into the major.
        for round in 1..=7u64 {
            for slot in 0..128 {
                cb.try_write(slot, round).unwrap();
            }
        }
        for slot in 0..128 {
            assert_eq!(cb.value(slot), 7);
        }
        // Rebase left all minors at 0, so a single 9-bit-wide jump fits the
        // zero-compressed format.
        cb.try_write(0, 7 + 500).unwrap();
        assert_eq!(cb.value(0), 507);
    }

    #[test]
    fn morphable_zero_compression_allows_wide_hot_minors() {
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        // ~40 hot blocks at width up to 7 bits: 128 + 40*7 = 408 ≤ 440.
        for slot in 0..40 {
            cb.try_write(slot, 100).unwrap();
        }
        for slot in 0..40 {
            assert_eq!(cb.value(slot), 100);
        }
        // But many wide minors exceed the payload.
        let mut failed = false;
        for slot in 40..128 {
            if cb.try_write(slot, 100 + slot as u64).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "unbounded wide minors should eventually overflow");
    }

    #[test]
    fn failed_morphable_write_leaves_values_intact() {
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        for slot in 0..30 {
            cb.try_write(slot, 50 + slot as u64).unwrap();
        }
        let before: Vec<u64> = cb.values().collect();
        // This jump cannot fit (width > 9).
        assert!(cb.try_write(0, 1 << 20).is_err());
        let after: Vec<u64> = cb.values().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn analytic_write_fits_matches_materialized_reference() {
        // The old implementation: clone the minors, apply the write, rebase,
        // then check the formats. The analytic version must agree exactly.
        fn reference(minors: &[u64], slot: usize, new_minor: u64) -> bool {
            let mut cand = minors.to_vec();
            cand[slot] = new_minor;
            let min = cand.iter().copied().min().unwrap_or(0);
            cand.iter_mut().for_each(|m| *m -= min);
            let max = cand.iter().copied().max().unwrap_or(0);
            if max == 0 {
                return true;
            }
            let width = 64 - max.leading_zeros() as usize;
            if width > 9 {
                return false;
            }
            if cand.len() * width <= MORPHABLE_PAYLOAD_BITS {
                return true;
            }
            let nonzero = cand.iter().filter(|&&m| m != 0).count();
            cand.len() + nonzero * width <= MORPHABLE_PAYLOAD_BITS
        }
        let mut z = 0x5eed_1234_u64;
        let mut next = move || {
            z = z
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            z >> 33
        };
        let mut fits = 0u32;
        for case in 0..2_000 {
            // Mix sparse, dense, narrow, and wide minor sets.
            let magnitude = [1u64, 7, 63, 511, 4095][case % 5];
            let density = [1u64, 3, 8][case % 3];
            let minors: Vec<u64> = (0..128)
                .map(|_| {
                    if next() % 8 < density {
                        next() % (magnitude + 1)
                    } else {
                        0
                    }
                })
                .collect();
            let slot = (next() % 128) as usize;
            let new_minor = next() % (2 * magnitude + 2);
            let got = morphable_write_fits(&minors, slot, new_minor);
            assert_eq!(
                got,
                reference(&minors, slot, new_minor),
                "case {case}: slot {slot} new_minor {new_minor} minors {minors:?}"
            );
            fits += u32::from(got);
        }
        // The sweep must exercise both outcomes to mean anything.
        assert!(fits > 100, "only {fits} accepted");
        assert!(fits < 1_900, "only {} rejected", 2_000 - fits);
    }

    #[test]
    fn with_state_canonicalizes() {
        let cb = CounterBlock::with_state(CounterOrg::Morphable128, 1000, vec![5; 128]);
        // Rebase folds the uniform 5 into the major.
        assert_eq!(cb.value(0), 1005);
        assert_eq!(cb.max_value(), 1005);
    }

    #[test]
    #[should_panic(expected = "56 bits")]
    fn mono_overflow_at_56_bits_panics() {
        let mut cb = CounterBlock::new(CounterOrg::Mono8);
        let _ = cb.try_write(0, COUNTER_MAX + 1);
    }

    #[test]
    fn values_below_major_overflow() {
        let mut cb = CounterBlock::new(CounterOrg::Sc64);
        cb.try_write(0, 127).unwrap();
        cb.relevel(200);
        // Target 201 ok, but a target below the major cannot be encoded...
        cb.try_write(1, 201).unwrap();
        // ...there is no such case via the public API since writes must
        // increase, and all values ≥ major after relevel. Verify invariant:
        assert!(cb.values().all(|v| v >= 200));
    }
}
