//! Multi-tenant sharded secure-memory service: lock-free config reads and a
//! batched access API over the single-owner [`SecureMemory`] engine.
//!
//! The engine in [`crate::engine`] is deliberately a one-tenant `&mut`
//! structure — the shape the paper evaluates. Serving aggregate traffic from
//! many tenants needs a different shape, and this module provides it without
//! touching the engine's crypto:
//!
//! * **Shards.** A [`SecureMemoryService`] owns N independent shards, each a
//!   full [`SecureMemory`] (its own `PagedArena` tree, counter state, and —
//!   when built with [`SecureMemoryService::with_policies`] — its own
//!   per-shard counter-update policy, e.g. a memoization table plus traffic
//!   budget). Shards share nothing mutable; each is guarded by its own
//!   `Mutex`, so traffic to different shards never serializes.
//! * **Region-preserving routing.** A data block routes to a shard by
//!   hashing its *L0 region* (the coverage group of blocks sharing one
//!   counter block), never the raw block address. Overflow releveling
//!   re-encrypts a whole region; keeping regions intact per shard keeps that
//!   mechanic — and therefore every stored ciphertext and counter — exactly
//!   what a single serial engine would produce. See
//!   [`ServiceSnapshot::shard_of`].
//! * **Lock-free read path for routing/config.** The routing table and
//!   tunables live in an immutable [`ServiceSnapshot`] behind
//!   `RwLock<Arc<_>>`: readers clone the `Arc` (a reference-count bump, no
//!   exclusive lock, never blocked by shard mutation) and route from their
//!   private snapshot. Reconfiguration ([`SecureMemoryService::set_jobs`])
//!   builds a *new* snapshot and swaps the `Arc` copy-on-write; in-flight
//!   batches keep the snapshot they started with.
//! * **Batched API.** [`SecureMemoryService::submit`] partitions a batch by
//!   shard, drives the shards concurrently on a scoped-thread pool (width
//!   from the snapshot's `jobs`, overridable per call), and merges per-shard
//!   results back in submission order. Per-shard order is submission order,
//!   and shards are independent, so batched output is **byte-identical** to
//!   running the same batch serially — at any worker width. Failures are
//!   surfaced per entry as typed [`AccessResult`] variants; one bad access
//!   (or even a panicking shard, isolated via `catch_unwind`) never fails
//!   the whole batch.
//! * **Per-shard health lifecycle (opt-in).** A service built with a
//!   [`HealthConfig`] runs a deterministic circuit breaker per shard:
//!   `Healthy → Degraded → Quarantined → Rebuilding → Healthy`, every
//!   threshold counted in the shard's own accesses (never wall-clock).
//!   Degraded shards bypass the memo table via the full-AES baseline write
//!   path; Quarantined/Rebuilding shards reject writes with a typed
//!   [`ShardFaultCause`]; the rebuild pass reconstructs the integrity tree
//!   from trusted state, re-verifies every stored MAC, and resets the
//!   shard's policy before readmission. Without a `HealthConfig` the
//!   service behaves exactly as before — no monitoring, no rejection.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread;

use rmcc_crypto::aes::Backend;
use rmcc_crypto::mac::DataBlock;
use rmcc_crypto::stats::CryptoStats;

use crate::counters::CounterOrg;
use crate::engine::{
    CounterUpdatePolicy, IncrementPolicy, PipelineKind, ReadError, RebuildReport, SecureMemory,
    WriteError,
};

/// One request in a batch submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Decrypt-and-verify the 64-byte block at `block`.
    Read {
        /// Data-block index (byte address / 64).
        block: u64,
    },
    /// Encrypt-and-store `data` at `block`, bumping its counter.
    Write {
        /// Data-block index (byte address / 64).
        block: u64,
        /// Plaintext to store.
        data: DataBlock,
    },
}

impl Access {
    /// The data-block index this access targets (what routing hashes).
    pub fn block(&self) -> u64 {
        match *self {
            Access::Read { block } | Access::Write { block, .. } => block,
        }
    }
}

/// Per-entry outcome of a submitted batch, in submission order.
///
/// Every entry gets exactly one result; errors are typed and per entry, so a
/// tampered or out-of-range access never fails the rest of the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Read succeeded: the decrypted, integrity-verified plaintext.
    Data(DataBlock),
    /// Write succeeded.
    Written {
        /// The block's write counter after this write.
        counter: u64,
    },
    /// Read failed with the engine's typed error (tamper detection fires
    /// here: [`ReadError::DataTampered`] / [`ReadError::MetadataTampered`]).
    ReadFailed(ReadError),
    /// Write refused with the engine's typed error; no state was mutated.
    WriteFailed(WriteError),
    /// The owning shard could not service this entry. The fault is
    /// contained to the shard (other shards and other batches are
    /// unaffected); panics are additionally tallied in
    /// [`SecureMemoryService::fault_count`]. The shard index and typed
    /// cause let a caller retry exactly the affected entries — e.g. resubmit
    /// `Quarantined`-rejected writes after the shard reports `Healthy` —
    /// instead of replaying the whole batch.
    ShardFault {
        /// The shard that owned (and failed) this entry.
        shard: usize,
        /// Why the shard could not serve it.
        cause: ShardFaultCause,
    },
}

/// Why a shard produced an [`AccessResult::ShardFault`] for an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardFaultCause {
    /// The engine panicked servicing the entry; the panic was contained.
    Panicked,
    /// The shard is quarantined and rejects writes until it is rebuilt and
    /// readmitted (reads are still served — they cannot corrupt state).
    Quarantined,
    /// The shard is mid-rebuild and rejects writes until readmission.
    Rebuilding,
    /// Internal bookkeeping failure (unreachable index bounds); reported
    /// rather than panicking.
    Internal,
}

impl ShardFaultCause {
    /// Stable small code for digests and telemetry.
    fn code(self) -> u64 {
        match self {
            ShardFaultCause::Panicked => 1,
            ShardFaultCause::Quarantined => 2,
            ShardFaultCause::Rebuilding => 3,
            ShardFaultCause::Internal => 4,
        }
    }
}

impl AccessResult {
    /// Whether the access succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, AccessResult::Data(_) | AccessResult::Written { .. })
    }

    /// Folds this result into a running order-sensitive digest.
    fn fold_into(&self, acc: u64) -> u64 {
        match *self {
            AccessResult::Data(d) => {
                let mut a = splitmix64(acc ^ 0xD1);
                for chunk in d.chunks_exact(8) {
                    let mut word = [0u8; 8];
                    word.copy_from_slice(chunk);
                    a = splitmix64(a ^ u64::from_le_bytes(word));
                }
                a
            }
            AccessResult::Written { counter } => splitmix64(acc ^ 0xA2 ^ splitmix64(counter)),
            AccessResult::ReadFailed(e) => {
                let (code, detail): (u64, u64) = match e {
                    ReadError::Unwritten { block } => (1, block),
                    ReadError::DataTampered { block } => (2, block),
                    ReadError::MetadataTampered { level } => (3, level as u64),
                };
                splitmix64(acc ^ 0xE3 ^ (code << 8) ^ splitmix64(detail))
            }
            AccessResult::WriteFailed(e) => {
                let (code, detail): (u64, u64) = match e {
                    WriteError::Layout(_) => (1, 0),
                    WriteError::CounterSaturated { counter } => (2, counter),
                };
                splitmix64(acc ^ 0xF4 ^ (code << 8) ^ splitmix64(detail))
            }
            AccessResult::ShardFault { shard, cause } => {
                splitmix64(acc ^ 0x0F ^ (cause.code() << 8) ^ splitmix64(shard as u64))
            }
        }
    }
}

/// Order-sensitive checksum of a whole result vector. Two result vectors are
/// byte-identical iff their digests match (up to hash collisions); the
/// batched-vs-serial regression tests and the sustained-load benchmark both
/// compare through this.
pub fn digest_results(results: &[AccessResult]) -> u64 {
    results
        .iter()
        .enumerate()
        .fold(0xCBF2_9CE4_8422_2325, |acc, (i, r)| {
            r.fold_into(splitmix64(acc ^ i as u64))
        })
}

/// One shard's position in the health lifecycle (DESIGN.md §12):
/// `Healthy → Degraded → Quarantined → Rebuilding → Healthy`, driven by a
/// per-epoch fault-rate circuit breaker — every threshold is counted in
/// accesses, never wall-clock, so the lifecycle is as deterministic as the
/// data path it protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShardHealth {
    /// Serving normally through the counter-update policy.
    Healthy,
    /// Serving, but writes bypass the memo table via the counted full-AES
    /// baseline path ([`SecureMemory::write_baseline`]); recovers after
    /// enough consecutive clean epochs.
    Degraded,
    /// Rejecting writes ([`ShardFaultCause::Quarantined`]) while the fault
    /// source drains; reads are still served. After a counted number of
    /// epochs the shard moves to `Rebuilding`.
    Quarantined,
    /// Still rejecting writes; the next epoch boundary runs the rebuild
    /// pass ([`SecureMemory::rebuild`]) and readmits the shard if every
    /// stored MAC re-verifies.
    Rebuilding,
}

impl ShardHealth {
    /// Stable small code for telemetry gauges (0 = Healthy … 3 =
    /// Rebuilding).
    pub fn code(self) -> u64 {
        match self {
            ShardHealth::Healthy => 0,
            ShardHealth::Degraded => 1,
            ShardHealth::Quarantined => 2,
            ShardHealth::Rebuilding => 3,
        }
    }
}

/// Circuit-breaker thresholds for the per-shard health lifecycle. All
/// quantities are counted per shard in *accesses* (the shard's own traffic),
/// preserving the §9 determinism contract: a given per-shard access sequence
/// always produces the same lifecycle trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Accesses per health epoch (the fault-rate window; clamped to ≥ 1).
    pub epoch_accesses: u64,
    /// Integrity faults within one window that demote a Healthy shard to
    /// Degraded.
    pub degrade_faults: u64,
    /// Integrity faults within one window that quarantine the shard
    /// outright. Counter saturation and detected memo corruption quarantine
    /// immediately regardless of this threshold.
    pub quarantine_faults: u64,
    /// Consecutive fault-free windows a Degraded shard must serve before
    /// readmission to Healthy.
    pub recover_epochs: u64,
    /// Windows a shard stays Quarantined (attempt-counted backoff, letting
    /// in-flight fault pressure drain) before the rebuild pass runs.
    pub quarantine_epochs: u64,
}

impl HealthConfig {
    /// Conservative defaults: 256-access windows, degrade at 2 faults,
    /// quarantine at 8, two clean windows to recover, one window of
    /// quarantine backoff.
    pub fn new() -> Self {
        HealthConfig {
            epoch_accesses: 256,
            degrade_faults: 2,
            quarantine_faults: 8,
            recover_epochs: 2,
            quarantine_epochs: 1,
        }
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Cumulative health-lifecycle tallies for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealthStats {
    /// Current lifecycle state.
    pub health: ShardHealth,
    /// Completed health epochs (windows).
    pub health_epochs: u64,
    /// Integrity faults the monitor has counted (tamper-detected reads,
    /// saturated writes, panics, detected memo corruption).
    pub faults: u64,
    /// Accesses served on the degraded full-AES path.
    pub degraded_accesses: u64,
    /// Writes rejected while Quarantined or Rebuilding.
    pub rejected_writes: u64,
    /// Healthy → Degraded transitions.
    pub degrades: u64,
    /// Transitions into Quarantined (from any state).
    pub quarantines: u64,
    /// Successful rebuilds (readmissions to Healthy).
    pub rebuilds: u64,
    /// Rebuild passes that found unrecoverable blocks and re-quarantined.
    pub failed_rebuilds: u64,
    /// Stored blocks whose MAC failed even under trusted counters, summed
    /// over failed rebuild passes.
    pub unrecoverable_blocks: u64,
}

/// How to build a [`SecureMemoryService`]. Two equal configs (plus equal
/// policy factories) build services with byte-identical behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of independent shards (clamped to ≥ 1).
    pub shards: usize,
    /// Protected-region capacity in bytes; every shard spans the full
    /// address space (the arenas are sparse, so untouched regions cost
    /// nothing) and routing decides ownership.
    pub data_bytes: u64,
    /// Counter organization for every shard.
    pub org: CounterOrg,
    /// OTP pipeline kind for every shard.
    pub pipeline: PipelineKind,
    /// Key-derivation seed; all shards share it so stored ciphertexts match
    /// the single-engine reference exactly.
    pub key_seed: u64,
    /// Default worker-pool width for [`SecureMemoryService::submit`]
    /// (clamped to ≥ 1; tunable later via copy-on-write reconfiguration).
    pub jobs: usize,
    /// Per-shard health lifecycle thresholds. `None` (the default) disables
    /// health monitoring entirely: no state machine, no degraded routing,
    /// no write rejection — byte-identical to the pre-lifecycle service.
    pub health: Option<HealthConfig>,
    /// AES backend for every shard's key schedules. Backends are
    /// ciphertext-identical (see `rmcc_crypto::aes::Backend`), so this
    /// only changes the timing profile, never stored bytes or digests.
    pub backend: Backend,
}

impl ServiceConfig {
    /// A config with the paper's defaults: Morphable counters, the RMCC
    /// split pipeline, and a serial (1-wide) submit pool.
    pub fn new(shards: usize, data_bytes: u64) -> Self {
        ServiceConfig {
            shards,
            data_bytes,
            org: CounterOrg::Morphable128,
            pipeline: PipelineKind::Rmcc,
            key_seed: 0x0005_EED0_0F5E_C3E7,
            jobs: 1,
            health: None,
            backend: Backend::from_env(),
        }
    }

    /// The same config with a different default pool width.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The same config with an explicitly pinned AES backend (instead of
    /// the `RMCC_BACKEND` environment default).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The same config with the health lifecycle enabled.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = Some(health);
        self
    }
}

/// Worker-pool width from the `RMCC_JOBS` environment variable (≥ 1), else
/// the host's available parallelism. Benchmarks and the sim's service path
/// share this so one knob pins every pool.
pub fn jobs_from_env() -> usize {
    match std::env::var("RMCC_JOBS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .unwrap_or(1),
        Err(_) => thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The immutable routing/config snapshot readers clone.
///
/// Snapshots are plain `Copy` data behind an `Arc`; a reader's routing
/// decisions stay coherent for the lifetime of its clone even across a
/// concurrent [`SecureMemoryService::set_jobs`] swap. Topology (`shards`,
/// `coverage`) never changes after construction — changing it would require
/// migrating stored state between shards, which is out of scope here — so
/// routing is stable across every snapshot version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSnapshot {
    shards: usize,
    coverage: u64,
    jobs: usize,
    version: u64,
}

impl ServiceSnapshot {
    /// Routes a data block to its owning shard.
    ///
    /// The hash input is the block's **L0 region** (`block / coverage`), not
    /// the block itself: all blocks sharing a counter block land on one
    /// shard, so overflow releveling — which re-encrypts the whole region —
    /// stays shard-local and counters evolve exactly as in a serial engine.
    /// The region index is mixed through SplitMix64 so consecutive regions
    /// (and therefore hot tenants) scatter across shards.
    pub fn shard_of(&self, block: u64) -> usize {
        let region = block / self.coverage.max(1);
        let mixed = splitmix64(region);
        usize::try_from(mixed % self.shards.max(1) as u64).unwrap_or(0)
    }

    /// Number of shards this snapshot routes across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Blocks per L0 region (the counter organization's coverage).
    pub fn coverage(&self) -> u64 {
        self.coverage
    }

    /// Default worker-pool width for `submit`.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Monotone version, bumped by every copy-on-write reconfiguration.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One shard's health monitor: the deterministic circuit breaker plus its
/// cumulative tallies. Lives under the shard's mutex next to the engine, so
/// every lifecycle decision is ordered with the accesses that caused it.
struct HealthMonitor {
    cfg: HealthConfig,
    health: ShardHealth,
    /// Accesses (served or rejected) in the current window.
    window_accesses: u64,
    /// Integrity faults in the current window.
    window_faults: u64,
    /// Consecutive clean windows while Degraded.
    clean_epochs: u64,
    /// Windows spent in the current Quarantined stint.
    quarantine_age: u64,
    health_epochs: u64,
    faults: u64,
    degraded_accesses: u64,
    rejected_writes: u64,
    degrades: u64,
    quarantines: u64,
    rebuilds: u64,
    failed_rebuilds: u64,
    unrecoverable_blocks: u64,
}

impl HealthMonitor {
    fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            health: ShardHealth::Healthy,
            window_accesses: 0,
            window_faults: 0,
            clean_epochs: 0,
            quarantine_age: 0,
            health_epochs: 0,
            faults: 0,
            degraded_accesses: 0,
            rejected_writes: 0,
            degrades: 0,
            quarantines: 0,
            rebuilds: 0,
            failed_rebuilds: 0,
            unrecoverable_blocks: 0,
        }
    }

    fn stats(&self) -> ShardHealthStats {
        ShardHealthStats {
            health: self.health,
            health_epochs: self.health_epochs,
            faults: self.faults,
            degraded_accesses: self.degraded_accesses,
            rejected_writes: self.rejected_writes,
            degrades: self.degrades,
            quarantines: self.quarantines,
            rebuilds: self.rebuilds,
            failed_rebuilds: self.failed_rebuilds,
            unrecoverable_blocks: self.unrecoverable_blocks,
        }
    }

    /// Ticks the window for one served access.
    fn note_access(&mut self, degraded: bool) {
        self.window_accesses = self.window_accesses.saturating_add(1);
        if degraded {
            self.degraded_accesses = self.degraded_accesses.saturating_add(1);
        }
    }

    /// Ticks the window for one rejected write. Rejected accesses still
    /// advance the window so a quarantined shard under read-only pressure
    /// keeps progressing toward its rebuild.
    fn note_rejected_write(&mut self) {
        self.window_accesses = self.window_accesses.saturating_add(1);
        self.rejected_writes = self.rejected_writes.saturating_add(1);
    }

    /// Counts one integrity fault and applies the threshold transitions.
    fn note_fault(&mut self) {
        self.faults = self.faults.saturating_add(1);
        self.window_faults = self.window_faults.saturating_add(1);
        if self.window_faults >= self.cfg.quarantine_faults.max(1) {
            self.quarantine();
        } else if self.health == ShardHealth::Healthy
            && self.window_faults >= self.cfg.degrade_faults.max(1)
        {
            self.degrade();
        }
    }

    /// Moves to Quarantined unless already quarantined or rebuilding.
    fn quarantine(&mut self) {
        if !matches!(
            self.health,
            ShardHealth::Quarantined | ShardHealth::Rebuilding
        ) {
            self.health = ShardHealth::Quarantined;
            self.quarantines = self.quarantines.saturating_add(1);
            self.quarantine_age = 0;
            self.clean_epochs = 0;
        }
    }

    /// Moves a Healthy shard to Degraded.
    fn degrade(&mut self) {
        if self.health == ShardHealth::Healthy {
            self.health = ShardHealth::Degraded;
            self.degrades = self.degrades.saturating_add(1);
            self.clean_epochs = 0;
        }
    }

    /// Records a finished rebuild pass: readmit on a clean report,
    /// re-quarantine otherwise.
    fn finish_rebuild(&mut self, report: &RebuildReport) {
        self.quarantine_age = 0;
        self.clean_epochs = 0;
        if report.is_clean() {
            self.health = ShardHealth::Healthy;
            self.rebuilds = self.rebuilds.saturating_add(1);
        } else {
            self.health = ShardHealth::Quarantined;
            self.failed_rebuilds = self.failed_rebuilds.saturating_add(1);
            self.unrecoverable_blocks = self
                .unrecoverable_blocks
                .saturating_add(report.data_unrecoverable);
        }
    }
}

/// One shard: a full engine, its fault tally, and (when the service was
/// configured with [`HealthConfig`]) its lifecycle monitor.
struct ShardState {
    mem: SecureMemory,
    faults: u64,
    monitor: Option<HealthMonitor>,
}

impl ShardState {
    /// Window-boundary processing: once the monitor's window fills, advance
    /// the lifecycle — recover a clean Degraded shard, age a Quarantined
    /// one toward its rebuild, and run the rebuild pass itself for a
    /// Rebuilding shard — then reset the window counters.
    fn roll_window(&mut self) {
        let Some(mon) = self.monitor.as_mut() else {
            return;
        };
        if mon.window_accesses < mon.cfg.epoch_accesses.max(1) {
            return;
        }
        mon.health_epochs = mon.health_epochs.saturating_add(1);
        match mon.health {
            ShardHealth::Healthy => {}
            ShardHealth::Degraded => {
                if mon.window_faults == 0 {
                    mon.clean_epochs = mon.clean_epochs.saturating_add(1);
                    if mon.clean_epochs >= mon.cfg.recover_epochs.max(1) {
                        mon.health = ShardHealth::Healthy;
                        mon.clean_epochs = 0;
                    }
                } else {
                    mon.clean_epochs = 0;
                }
            }
            ShardHealth::Quarantined => {
                mon.quarantine_age = mon.quarantine_age.saturating_add(1);
                if mon.quarantine_age >= mon.cfg.quarantine_epochs.max(1) {
                    mon.health = ShardHealth::Rebuilding;
                }
            }
            ShardHealth::Rebuilding => {
                let report = self.mem.rebuild();
                self.mem.reset_policy();
                mon.finish_rebuild(&report);
            }
        }
        mon.window_accesses = 0;
        mon.window_faults = 0;
    }
}

/// A concurrent, sharded front end over N independent [`SecureMemory`]
/// engines. See the [module docs](self) for the architecture; see
/// [`Self::submit`] for the batched API and its determinism contract.
pub struct SecureMemoryService {
    snapshot: RwLock<Arc<ServiceSnapshot>>,
    shards: Vec<Mutex<ShardState>>,
}

impl SecureMemoryService {
    /// Builds a service whose shards all use the baseline
    /// [`IncrementPolicy`]. With this policy the service is byte-identical
    /// to a serial engine *across shard counts* (counters depend only on
    /// per-region history, which routing keeps shard-local).
    pub fn new(cfg: &ServiceConfig) -> Self {
        Self::with_policies(cfg, |_| Box::new(IncrementPolicy))
    }

    /// Builds a service with one counter-update policy per shard, from a
    /// factory called with each shard index in order. This is how the
    /// memoizing stack plugs in: each shard gets its own memo table and
    /// budget ledger, so policy state — like everything else mutable — is
    /// shard-local.
    pub fn with_policies<F>(cfg: &ServiceConfig, mut policy_for: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn CounterUpdatePolicy>,
    {
        let shards = cfg.shards.max(1);
        let snapshot = ServiceSnapshot {
            shards,
            coverage: cfg.org.coverage() as u64,
            jobs: cfg.jobs.max(1),
            version: 0,
        };
        let shard_states = (0..shards)
            .map(|i| {
                Mutex::new(ShardState {
                    mem: SecureMemory::with_policy_on(
                        cfg.org,
                        cfg.data_bytes,
                        cfg.pipeline,
                        cfg.key_seed,
                        policy_for(i),
                        cfg.backend,
                    ),
                    faults: 0,
                    monitor: cfg.health.map(HealthMonitor::new),
                })
            })
            .collect();
        SecureMemoryService {
            snapshot: RwLock::new(Arc::new(snapshot)),
            shards: shard_states,
        }
    }

    /// Clones the current routing/config snapshot — the lock-free read
    /// path. This never blocks on shard mutation and a writer holds the
    /// `RwLock` only for the duration of an `Arc` pointer swap.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        Arc::clone(&self.snapshot.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Copy-on-write reconfiguration of the default pool width: builds a
    /// new snapshot with a bumped version and swaps the `Arc`. Readers that
    /// cloned the old snapshot keep routing from it undisturbed. Returns
    /// the new version.
    pub fn set_jobs(&self, jobs: usize) -> u64 {
        let mut guard = self
            .snapshot
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let next = ServiceSnapshot {
            jobs: jobs.max(1),
            version: guard.version.saturating_add(1),
            ..**guard
        };
        *guard = Arc::new(next);
        guard.version
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Services a batch: partitions by shard, drives shards concurrently at
    /// the snapshot's pool width, merges results in submission order.
    ///
    /// **Determinism contract:** per-shard sub-batches preserve submission
    /// order and shards share no mutable state, so the returned vector is
    /// byte-identical to [`Self::submit_serial`] on the same service at any
    /// worker width — and, for a service built with [`Self::new`], to a
    /// plain serial [`SecureMemory`] over the same batch (see
    /// [`serial_reference`]).
    pub fn submit(&self, batch: &[Access]) -> Vec<AccessResult> {
        let jobs = self.snapshot().jobs();
        self.submit_with_jobs(batch, jobs)
    }

    /// [`Self::submit`] with an explicit worker width (1 = in-caller-thread
    /// serial; the CI determinism smoke compares widths through this).
    pub fn submit_with_jobs(&self, batch: &[Access], jobs: usize) -> Vec<AccessResult> {
        let snap = self.snapshot();
        let mut parts: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, access) in batch.iter().enumerate() {
            if let Some(part) = parts.get_mut(snap.shard_of(access.block())) {
                part.push(i);
            }
        }
        let busy = parts.iter().filter(|p| !p.is_empty()).count();
        let workers = jobs.max(1).min(busy.max(1));
        // Placeholder overwritten by scatter (routing covers every index).
        let mut merged = vec![
            AccessResult::ShardFault {
                shard: 0,
                cause: ShardFaultCause::Internal,
            };
            batch.len()
        ];
        if workers <= 1 {
            for (shard, indices) in parts.iter().enumerate() {
                if indices.is_empty() {
                    continue;
                }
                let results = self.run_shard(shard, indices, batch);
                scatter(&mut merged, indices, &results);
            }
        } else {
            let outs: Vec<Mutex<Vec<AccessResult>>> =
                parts.iter().map(|_| Mutex::new(Vec::new())).collect();
            let next = AtomicUsize::new(0);
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        let Some(indices) = parts.get(shard) else {
                            break;
                        };
                        if indices.is_empty() {
                            continue;
                        }
                        let results = self.run_shard(shard, indices, batch);
                        if let Some(slot) = outs.get(shard) {
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = results;
                        }
                    });
                }
            });
            for (shard, indices) in parts.iter().enumerate() {
                let Some(slot) = outs.get(shard) else {
                    continue;
                };
                let results = slot.lock().unwrap_or_else(PoisonError::into_inner);
                scatter(&mut merged, indices, &results);
            }
        }
        merged
    }

    /// Services a batch with no thread pool at all — the reference path the
    /// determinism tests compare against.
    pub fn submit_serial(&self, batch: &[Access]) -> Vec<AccessResult> {
        self.submit_with_jobs(batch, 1)
    }

    /// Runs one shard's sub-batch under its lock, isolating panics per
    /// entry. A poisoned lock is recovered (`into_inner`): the shard keeps
    /// serving, degraded, and the fault tally records the event.
    ///
    /// When the service was built with a [`HealthConfig`], this is also
    /// where the lifecycle runs: detected memo corruption is checked
    /// *before* any entry is served (a poisoned table must never influence
    /// a write), Quarantined/Rebuilding shards reject writes with a typed
    /// fault, Degraded shards route writes through the full-AES baseline
    /// path, and every access ticks the circuit breaker's window.
    fn run_shard(&self, shard: usize, indices: &[usize], batch: &[Access]) -> Vec<AccessResult> {
        let internal = AccessResult::ShardFault {
            shard,
            cause: ShardFaultCause::Internal,
        };
        let mut out = Vec::with_capacity(indices.len());
        let Some(slot) = self.shards.get(shard) else {
            out.resize(indices.len(), internal);
            return out;
        };
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        // Sub-batch-start scrub: if the policy knows entries are corrupted
        // (e.g. a detected SRAM upset), quarantine before serving anything —
        // no access is ever steered by a known-bad table.
        {
            let state = &mut *guard;
            if let Some(mon) = state.monitor.as_mut() {
                if matches!(mon.health, ShardHealth::Healthy | ShardHealth::Degraded)
                    && state.mem.scrub_policy() > 0
                {
                    mon.faults = mon.faults.saturating_add(1);
                    mon.quarantine();
                }
            }
        }
        // Batched pad prefetch: collect this sub-batch's read targets and
        // derive their pads through the pipeline's 8-wide AES path before
        // serving any entry. Purely a wall-clock accelerator — pads are
        // bit-identical with or without it, and the engine's modeled
        // crypto tally is charged at access time either way — so the
        // determinism contract below is untouched.
        {
            let state = &mut *guard;
            let reads = indices
                .iter()
                .filter_map(|&i| batch.get(i))
                .filter_map(|access| match access {
                    Access::Read { block } => Some(*block),
                    Access::Write { .. } => None,
                });
            state.mem.prefetch_pads(reads);
        }
        for &i in indices {
            let Some(access) = batch.get(i) else {
                out.push(internal);
                continue;
            };
            let state = &mut *guard;
            let health = state
                .monitor
                .as_ref()
                .map_or(ShardHealth::Healthy, |m| m.health);
            if matches!(health, ShardHealth::Quarantined | ShardHealth::Rebuilding)
                && matches!(access, Access::Write { .. })
            {
                let cause = if health == ShardHealth::Quarantined {
                    ShardFaultCause::Quarantined
                } else {
                    ShardFaultCause::Rebuilding
                };
                if let Some(mon) = state.monitor.as_mut() {
                    mon.note_rejected_write();
                }
                out.push(AccessResult::ShardFault { shard, cause });
                state.roll_window();
                continue;
            }
            let degraded = health == ShardHealth::Degraded;
            match catch_unwind(AssertUnwindSafe(|| apply(&mut state.mem, access, degraded))) {
                Ok(result) => {
                    if let Some(mon) = state.monitor.as_mut() {
                        mon.note_access(degraded);
                        match result {
                            AccessResult::WriteFailed(WriteError::CounterSaturated { .. }) => {
                                // Saturation means the shard needs key-renewal
                                // scale recovery: quarantine immediately.
                                mon.note_fault();
                                mon.quarantine();
                            }
                            AccessResult::ReadFailed(
                                ReadError::DataTampered { .. } | ReadError::MetadataTampered { .. },
                            ) => mon.note_fault(),
                            // Unwritten reads and layout errors are client
                            // mistakes, not integrity faults.
                            _ => {}
                        }
                    }
                    out.push(result);
                }
                Err(_) => {
                    state.faults = state.faults.saturating_add(1);
                    if let Some(mon) = state.monitor.as_mut() {
                        mon.note_access(false);
                        mon.note_fault();
                    }
                    out.push(AccessResult::ShardFault {
                        shard,
                        cause: ShardFaultCause::Panicked,
                    });
                }
            }
            state.roll_window();
        }
        out
    }

    /// Runs `f` with exclusive access to one shard's engine — the
    /// inspection and fault-injection seam (the attacker model's per-shard
    /// bus access). Returns `None` for an out-of-range shard.
    pub fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut SecureMemory) -> T) -> Option<T> {
        let slot = self.shards.get(shard)?;
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        Some(f(&mut guard.mem))
    }

    /// How many panics this shard has absorbed ([`AccessResult::ShardFault`]
    /// entries it produced). `None` for an out-of-range shard.
    pub fn fault_count(&self, shard: usize) -> Option<u64> {
        let slot = self.shards.get(shard)?;
        let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        Some(guard.faults)
    }

    // --- health lifecycle --------------------------------------------------

    /// The shard's current lifecycle state. `None` for an out-of-range
    /// shard or a service built without a [`HealthConfig`].
    pub fn health(&self, shard: usize) -> Option<ShardHealth> {
        let slot = self.shards.get(shard)?;
        let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        guard.monitor.as_ref().map(|m| m.health)
    }

    /// The shard's cumulative health tallies. `None` for an out-of-range
    /// shard or a service built without a [`HealthConfig`].
    pub fn health_stats(&self, shard: usize) -> Option<ShardHealthStats> {
        let slot = self.shards.get(shard)?;
        let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        guard.monitor.as_ref().map(HealthMonitor::stats)
    }

    /// Host-forced quarantine (operator action / external detector).
    /// Returns whether the shard exists and has a monitor to transition.
    pub fn force_quarantine(&self, shard: usize) -> bool {
        let Some(slot) = self.shards.get(shard) else {
            return false;
        };
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.monitor.as_mut() {
            Some(mon) => {
                mon.quarantine();
                true
            }
            None => false,
        }
    }

    /// Host-forced degradation: subsequent writes take the full-AES
    /// baseline path until the shard recovers. Returns whether the shard
    /// exists and has a monitor to transition.
    pub fn force_degraded(&self, shard: usize) -> bool {
        let Some(slot) = self.shards.get(shard) else {
            return false;
        };
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.monitor.as_mut() {
            Some(mon) => {
                mon.degrade();
                true
            }
            None => false,
        }
    }

    /// Host-driven immediate rebuild, bypassing the epoch-counted backoff:
    /// runs the rebuild pass and the policy reset under the shard lock and
    /// readmits the shard if the report is clean. `None` for an
    /// out-of-range shard or a service without health monitoring.
    pub fn try_rebuild(&self, shard: usize) -> Option<RebuildReport> {
        let slot = self.shards.get(shard)?;
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        let state = &mut *guard;
        let mon = state.monitor.as_mut()?;
        let report = state.mem.rebuild();
        state.mem.reset_policy();
        mon.finish_rebuild(&report);
        mon.window_accesses = 0;
        mon.window_faults = 0;
        Some(report)
    }

    /// The shard engine's architectural-state fingerprint
    /// ([`SecureMemory::state_digest`]) — what the chaos campaign compares
    /// against a never-faulted control twin. `None` for an out-of-range
    /// shard. Available with or without health monitoring.
    pub fn shard_state_digest(&self, shard: usize) -> Option<u64> {
        self.with_shard(shard, |mem| mem.state_digest())
    }

    /// Static-model crypto tallies, one per shard in shard order — the
    /// shard-labeled telemetry source.
    pub fn crypto_stats(&self) -> Vec<CryptoStats> {
        self.shards
            .iter()
            .map(|slot| {
                let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                guard.mem.crypto_stats()
            })
            .collect()
    }
}

/// Applies one access to an engine, mapping engine errors to per-entry
/// results. Shared by the service shards and [`serial_reference`] so both
/// paths are the same code. With `degraded` set, writes bypass the
/// counter-update policy via the full-AES baseline path.
fn apply(mem: &mut SecureMemory, access: &Access, degraded: bool) -> AccessResult {
    match *access {
        Access::Read { block } => match mem.read(block) {
            Ok(data) => AccessResult::Data(data),
            Err(e) => AccessResult::ReadFailed(e),
        },
        Access::Write { block, data } => {
            let written = if degraded {
                mem.write_baseline(block, data)
            } else {
                mem.write(block, data)
            };
            match written {
                Ok(()) => AccessResult::Written {
                    counter: mem.counter_of(block),
                },
                Err(e) => AccessResult::WriteFailed(e),
            }
        }
    }
}

/// Scatters per-shard results back to their submission-order positions.
fn scatter(merged: &mut [AccessResult], indices: &[usize], results: &[AccessResult]) {
    for (&i, &r) in indices.iter().zip(results.iter()) {
        if let Some(slot) = merged.get_mut(i) {
            *slot = r;
        }
    }
}

/// Runs a batch through one plain serial [`SecureMemory`] built from `cfg` —
/// the ground-truth reference the sharded service must match byte for byte
/// (for increment-policy services).
pub fn serial_reference(cfg: &ServiceConfig, batch: &[Access]) -> Vec<AccessResult> {
    let mut mem = SecureMemory::new(cfg.org, cfg.data_bytes, cfg.pipeline, cfg.key_seed);
    // audit:allow(R5, reason = "differential-test harness: `mem` is tainted via key_seed, but apply branches only on public access outcomes")
    batch.iter().map(|a| apply(&mut mem, a, false)).collect()
}

/// SplitMix64 — the routing/digest mixer (also the bench suite's PRNG).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(tag: u8) -> DataBlock {
        let mut b = [0u8; 64];
        b[0] = tag;
        b[63] = tag ^ 0xFF;
        b
    }

    /// A mixed batch: writes, read-backs, an unwritten read, and an
    /// out-of-capacity write, across many regions.
    fn mixed_batch(cfg: &ServiceConfig) -> Vec<Access> {
        let coverage = cfg.org.coverage() as u64;
        let mut batch = Vec::new();
        for r in 0..24u64 {
            let block = r * coverage + (r % coverage);
            batch.push(Access::Write {
                block,
                data: block_of(r as u8),
            });
            batch.push(Access::Read { block });
            batch.push(Access::Write {
                block,
                data: block_of(r as u8 ^ 0x55),
            });
            batch.push(Access::Read { block });
        }
        batch.push(Access::Read { block: 9_999 }); // never written
        batch.push(Access::Write {
            block: u64::MAX / 64, // beyond capacity -> Layout error
            data: block_of(1),
        });
        batch
    }

    #[test]
    fn every_block_routes_to_exactly_one_in_range_shard() {
        let svc = SecureMemoryService::new(&ServiceConfig::new(5, 1 << 24));
        let snap = svc.snapshot();
        for block in 0..4_096u64 {
            let s = snap.shard_of(block);
            assert!(s < snap.shards());
            // Stable: same snapshot, same answer.
            assert_eq!(s, snap.shard_of(block));
            // Region-preserving: coverage-mates share a shard.
            let region_base = (block / snap.coverage()) * snap.coverage();
            assert_eq!(s, snap.shard_of(region_base));
        }
    }

    #[test]
    fn hardened_backend_service_is_bit_identical_to_fast() {
        // Same batch through fast- and hardened-pinned services: every
        // access result, the result digest, and every shard's
        // architectural digest must match bit for bit — the backend may
        // only change the timing profile, never stored state.
        let base = ServiceConfig::new(3, 1 << 24);
        let batch = mixed_batch(&base);
        let runs: Vec<(Vec<AccessResult>, u64, Vec<u64>)> = [Backend::Fast, Backend::Hardened]
            .into_iter()
            .map(|backend| {
                let svc = SecureMemoryService::new(&base.with_backend(backend));
                let got = svc.submit_with_jobs(&batch, 2);
                let digests = (0..svc.snapshot().shards())
                    .map(|s| svc.shard_state_digest(s).expect("shard is live"))
                    .collect();
                (got.clone(), digest_results(&got), digests)
            })
            .collect();
        assert_eq!(runs[0], runs[1], "hardened service diverged from fast");
    }

    #[test]
    fn submit_matches_serial_engine_across_shard_counts_and_widths() {
        let base = ServiceConfig::new(1, 1 << 24);
        let batch = mixed_batch(&base);
        let reference = serial_reference(&base, &batch);
        assert!(reference.iter().any(|r| matches!(r, AccessResult::Data(_))));
        assert!(reference
            .iter()
            .any(|r| matches!(r, AccessResult::ReadFailed(ReadError::Unwritten { .. }))));
        assert!(reference
            .iter()
            .any(|r| matches!(r, AccessResult::WriteFailed(WriteError::Layout(_)))));
        for shards in [1usize, 2, 3, 8] {
            let svc = SecureMemoryService::new(&ServiceConfig::new(shards, 1 << 24));
            for jobs in [1usize, 4] {
                let fresh = SecureMemoryService::new(&ServiceConfig::new(shards, 1 << 24));
                let got = fresh.submit_with_jobs(&batch, jobs);
                assert_eq!(got, reference, "shards={shards} jobs={jobs}");
                assert_eq!(digest_results(&got), digest_results(&reference));
            }
            drop(svc);
        }
    }

    #[test]
    fn cow_reconfiguration_leaves_old_snapshots_routing() {
        let svc = SecureMemoryService::new(&ServiceConfig::new(4, 1 << 24).with_jobs(2));
        let old = svc.snapshot();
        assert_eq!(old.jobs(), 2);
        let v = svc.set_jobs(7);
        assert_eq!(v, 1);
        let new = svc.snapshot();
        assert_eq!(new.jobs(), 7);
        assert_eq!(new.version(), 1);
        // The old snapshot is untouched and still routes identically.
        assert_eq!(old.jobs(), 2);
        for block in 0..512u64 {
            assert_eq!(old.shard_of(block), new.shard_of(block));
        }
    }

    #[test]
    fn per_entry_errors_do_not_fail_the_batch() {
        let svc = SecureMemoryService::new(&ServiceConfig::new(3, 1 << 20));
        let batch = vec![
            Access::Write {
                block: 0,
                data: block_of(7),
            },
            Access::Read { block: 123 }, // unwritten
            Access::Read { block: 0 },
        ];
        let results = svc.submit_serial(&batch);
        assert!(matches!(results[0], AccessResult::Written { counter: 1 }));
        assert_eq!(
            results[1],
            AccessResult::ReadFailed(ReadError::Unwritten { block: 123 }),
            "typed per-entry error"
        );
        assert_eq!(results[2], AccessResult::Data(block_of(7)));
    }

    #[test]
    fn tamper_in_one_shard_is_contained_to_its_entries() {
        let cfg = ServiceConfig::new(4, 1 << 24);
        let svc = SecureMemoryService::new(&cfg);
        let snap = svc.snapshot();
        let coverage = snap.coverage();
        // One written block per shard.
        let mut per_shard = vec![None; snap.shards()];
        for region in 0..64u64 {
            let block = region * coverage;
            let s = snap.shard_of(block);
            if per_shard[s].is_none() {
                per_shard[s] = Some(block);
            }
        }
        let blocks: Vec<u64> = per_shard.into_iter().map(|b| b.unwrap()).collect();
        let writes: Vec<Access> = blocks
            .iter()
            .map(|&block| Access::Write {
                block,
                data: block_of(9),
            })
            .collect();
        svc.submit(&writes);
        // Flip a stored bit in shard 0's block only.
        let victim = blocks[0];
        svc.with_shard(snap.shard_of(victim), |mem| {
            mem.tamper_data(victim, 5, 0x01).unwrap();
        });
        let reads: Vec<Access> = blocks.iter().map(|&block| Access::Read { block }).collect();
        let results = svc.submit(&reads);
        assert_eq!(
            results[0],
            AccessResult::ReadFailed(ReadError::DataTampered { block: victim })
        );
        for r in &results[1..] {
            assert_eq!(*r, AccessResult::Data(block_of(9)), "other shards clean");
        }
        assert_eq!(
            svc.fault_count(0),
            Some(0),
            "tamper is an error, not a panic"
        );
    }

    /// A small-window health config for lifecycle tests.
    fn tight_health() -> HealthConfig {
        HealthConfig {
            epoch_accesses: 4,
            degrade_faults: 2,
            quarantine_faults: 10,
            recover_epochs: 2,
            quarantine_epochs: 1,
        }
    }

    #[test]
    fn health_is_absent_unless_configured() {
        let svc = SecureMemoryService::new(&ServiceConfig::new(2, 1 << 20));
        assert_eq!(svc.health(0), None);
        assert_eq!(svc.health_stats(0), None);
        assert!(!svc.force_quarantine(0));
        assert!(!svc.force_degraded(0));
        assert!(svc.try_rebuild(0).is_none());
        assert!(
            svc.shard_state_digest(0).is_some(),
            "digest needs no monitor"
        );
        let with = SecureMemoryService::new(
            &ServiceConfig::new(2, 1 << 20).with_health(HealthConfig::new()),
        );
        assert_eq!(with.health(0), Some(ShardHealth::Healthy));
        assert_eq!(with.health(99), None, "out of range");
        assert!(!with.force_quarantine(99));
    }

    #[test]
    fn tamper_faults_degrade_then_clean_windows_recover() {
        let cfg = ServiceConfig::new(1, 1 << 20).with_health(tight_health());
        let svc = SecureMemoryService::new(&cfg);
        svc.submit_serial(&[Access::Write {
            block: 0,
            data: block_of(1),
        }]);
        svc.with_shard(0, |mem| mem.tamper_data(0, 3, 0x80).unwrap());
        // Two tamper-detected reads in one window: Healthy → Degraded.
        let r = svc.submit_serial(&[Access::Read { block: 0 }, Access::Read { block: 0 }]);
        assert!(matches!(
            r[0],
            AccessResult::ReadFailed(ReadError::DataTampered { .. })
        ));
        assert_eq!(svc.health(0), Some(ShardHealth::Degraded));
        // A degraded write still serves (full-AES baseline) and heals the
        // tampered block.
        let r = svc.submit_serial(&[
            Access::Write {
                block: 0,
                data: block_of(2),
            },
            Access::Read { block: 0 },
        ]);
        assert!(matches!(r[0], AccessResult::Written { .. }));
        assert_eq!(r[1], AccessResult::Data(block_of(2)));
        let stats = svc.health_stats(0).unwrap();
        assert_eq!(stats.degrades, 1);
        assert!(stats.degraded_accesses >= 2);
        assert_eq!(stats.faults, 2);
        // Two consecutive clean windows readmit the shard.
        let reads: Vec<Access> = (0..8).map(|_| Access::Read { block: 0 }).collect();
        svc.submit_serial(&reads);
        assert_eq!(svc.health(0), Some(ShardHealth::Healthy));
        assert_eq!(svc.health_stats(0).unwrap().degrades, 1, "no flapping");
    }

    /// A policy that behaves like the baseline increment until its fuse is
    /// armed, then returns an unsatisfiable target exactly once — the
    /// counter-saturation injection.
    struct FusedPolicy {
        fuse: Arc<std::sync::atomic::AtomicBool>,
    }
    impl CounterUpdatePolicy for FusedPolicy {
        fn bump(&mut self, current: u64) -> u64 {
            if self.fuse.swap(false, Ordering::Relaxed) {
                rmcc_crypto::otp::COUNTER_MAX + 1
            } else {
                current + 1
            }
        }
        fn relevel_target(&mut self, min_target: u64) -> u64 {
            min_target
        }
    }

    #[test]
    fn counter_saturation_quarantines_then_rebuild_readmits() {
        let cfg = ServiceConfig::new(1, 1 << 20).with_health(tight_health());
        let fuse = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f = Arc::clone(&fuse);
        let svc = SecureMemoryService::with_policies(&cfg, move |_| {
            Box::new(FusedPolicy {
                fuse: Arc::clone(&f),
            })
        });
        let twin = SecureMemoryService::with_policies(&cfg, |_| {
            Box::new(FusedPolicy {
                fuse: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            })
        });
        let w0 = Access::Write {
            block: 0,
            data: block_of(7),
        };
        svc.submit_serial(&[w0]);
        twin.submit_serial(&[w0]);

        // Saturated write: typed error, immediate quarantine, no mutation.
        fuse.store(true, Ordering::Relaxed);
        let r = svc.submit_serial(&[w0]);
        assert!(matches!(
            r[0],
            AccessResult::WriteFailed(WriteError::CounterSaturated { .. })
        ));
        assert_eq!(svc.health(0), Some(ShardHealth::Quarantined));

        // Quarantined: writes rejected with the typed cause, reads served.
        let r = svc.submit_serial(&[w0, Access::Read { block: 0 }]);
        assert_eq!(
            r[0],
            AccessResult::ShardFault {
                shard: 0,
                cause: ShardFaultCause::Quarantined
            }
        );
        assert_eq!(r[1], AccessResult::Data(block_of(7)));
        // That read was access 4: the window rolled, and one quarantine
        // epoch elapsed → Rebuilding.
        assert_eq!(svc.health(0), Some(ShardHealth::Rebuilding));
        let r = svc.submit_serial(&[w0]);
        assert_eq!(
            r[0],
            AccessResult::ShardFault {
                shard: 0,
                cause: ShardFaultCause::Rebuilding
            }
        );
        // Fill the window with reads; the boundary runs the rebuild pass.
        let reads: Vec<Access> = (0..3).map(|_| Access::Read { block: 0 }).collect();
        svc.submit_serial(&reads);
        assert_eq!(svc.health(0), Some(ShardHealth::Healthy));
        let stats = svc.health_stats(0).unwrap();
        assert_eq!(stats.quarantines, 1);
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(stats.rejected_writes, 2);
        assert_eq!(stats.unrecoverable_blocks, 0);

        // Replay the refused write; the shard converges to the twin that
        // never saw the fault.
        let w2 = Access::Write {
            block: 0,
            data: block_of(8),
        };
        assert!(matches!(
            svc.submit_serial(&[w2])[0],
            AccessResult::Written { .. }
        ));
        twin.submit_serial(&[w2]);
        assert_eq!(
            svc.shard_state_digest(0),
            twin.shard_state_digest(0),
            "recovered shard is byte-identical to the never-faulted twin"
        );
    }

    #[test]
    fn forced_quarantine_and_host_driven_rebuild() {
        let cfg = ServiceConfig::new(1, 1 << 20).with_health(tight_health());
        let svc = SecureMemoryService::new(&cfg);
        let w = Access::Write {
            block: 5,
            data: block_of(3),
        };
        svc.submit_serial(&[w]);
        assert!(svc.force_quarantine(0));
        let r = svc.submit_serial(&[w]);
        assert_eq!(
            r[0],
            AccessResult::ShardFault {
                shard: 0,
                cause: ShardFaultCause::Quarantined
            }
        );
        let report = svc.try_rebuild(0).unwrap();
        assert!(report.is_clean());
        assert!(report.data_verified >= 1);
        assert_eq!(svc.health(0), Some(ShardHealth::Healthy));
        assert!(matches!(
            svc.submit_serial(&[w])[0],
            AccessResult::Written { .. }
        ));
        let stats = svc.health_stats(0).unwrap();
        assert_eq!(stats.quarantines, 1);
        assert_eq!(stats.rebuilds, 1);
        assert_eq!(stats.rejected_writes, 1);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = [
            AccessResult::Written { counter: 1 },
            AccessResult::ReadFailed(ReadError::Unwritten { block: 0 }),
        ];
        let b = [
            AccessResult::ReadFailed(ReadError::Unwritten { block: 0 }),
            AccessResult::Written { counter: 1 },
        ];
        assert_ne!(digest_results(&a), digest_results(&b));
        assert_eq!(digest_results(&a), digest_results(&a));
    }
}
