//! A *functional* secure-memory engine: real encryption, real MACs, real
//! integrity-tree verification over an explicit untrusted memory image.
//!
//! The timing simulators elsewhere in this workspace model secure memory's
//! *performance*; this module models its *security semantics* end to end, so
//! tests and examples can demonstrate that the machinery actually protects
//! data: plaintext round-trips, bit-flips are caught by MACs, and replay
//! attacks (restoring stale ciphertext *and* stale counters consistently)
//! are caught by the integrity tree rooted on-chip.

use rmcc_crypto::aes::{AesVariant, Backend, BATCH_BLOCKS};
use rmcc_crypto::mac::{compute_mac, verify_mac, xor_with_pads, DataBlock, MacKeys};
use rmcc_crypto::otp::{KeySet, OtpPipeline, RmccOtp, SgxOtp, COUNTER_MAX};
use rmcc_crypto::stats::{CryptoCost, CryptoStats};

use crate::arena::PagedArena;
use crate::counters::{CounterBlock, CounterOrg};
use crate::layout::{LayoutError, MetadataLayout, BLOCK_BYTES};
use crate::tree::{InitPolicy, MetadataState};

/// Chooses counter targets on writes — the seam where RMCC's
/// memoization-aware update plugs in.
pub trait CounterUpdatePolicy: Send {
    /// The value to raise a counter to when its block is written
    /// (baseline: `current + 1`; RMCC: nearest memoized value above
    /// `current`). Must return a value strictly greater than `current`.
    fn bump(&mut self, current: u64) -> u64;

    /// The relevel target when an update overflows; must be ≥ `min_target`
    /// (baseline: exactly `min_target`; RMCC: nearest memoized ≥ it).
    fn relevel_target(&mut self, min_target: u64) -> u64;

    /// Discards all transient policy state (memo table contents, budget
    /// ledger position) and returns to the just-constructed configuration.
    /// Called by a shard rebuild so the policy cannot carry corrupted
    /// entries across readmission. Stateless policies need do nothing.
    fn reset(&mut self) {}

    /// The number of entries the policy currently knows to be corrupted
    /// (detected but not yet served/cleared). A health monitor treats a
    /// nonzero answer as a reason to quarantine. Stateless policies report
    /// zero.
    fn scrub(&mut self) -> u64 {
        0
    }
}

/// The baseline policy: increment by one, relevel to the minimum legal
/// target.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementPolicy;

impl CounterUpdatePolicy for IncrementPolicy {
    fn bump(&mut self, current: u64) -> u64 {
        current + 1
    }

    fn relevel_target(&mut self, min_target: u64) -> u64 {
        min_target
    }
}

/// Why a secure read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The data block's MAC did not verify — its ciphertext or MAC was
    /// tampered with (or its counter was rolled back).
    DataTampered {
        /// The data block index that failed verification.
        block: u64,
    },
    /// A counter block / tree node failed verification at `level`.
    MetadataTampered {
        /// The in-memory tree level (0 = counter blocks).
        level: usize,
    },
    /// The block was never written; there is nothing to read.
    Unwritten {
        /// The data block index.
        block: u64,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::DataTampered { block } => {
                write!(f, "data block {block} failed MAC verification")
            }
            ReadError::MetadataTampered { level } => {
                write!(f, "integrity tree verification failed at level {level}")
            }
            ReadError::Unwritten { block } => write!(f, "data block {block} was never written"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Why a secure write was refused.
///
/// A refused write is fail-safe with respect to data: the old ciphertext and
/// MAC images are untouched, so every previously written block still reads
/// back byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The write addressed state outside the configured layout.
    Layout(LayoutError),
    /// The counter the write must raise has no room left in the 56-bit
    /// counter space; proceeding would reuse a (block, counter) pair and
    /// break OTP security. Real hardware renews keys and re-encrypts all of
    /// memory at this point (§IV-D2); this engine refuses the write instead.
    CounterSaturated {
        /// The saturated counter's current value.
        counter: u64,
    },
}

impl From<LayoutError> for WriteError {
    fn from(e: LayoutError) -> Self {
        WriteError::Layout(e)
    }
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Layout(e) => write!(f, "write rejected: {e}"),
            WriteError::CounterSaturated { counter } => {
                write!(
                    f,
                    "counter at {counter} cannot advance within the 56-bit space; \
                     key renewal required"
                )
            }
        }
    }
}

impl std::error::Error for WriteError {}

/// Why an attacker-interface operation (tamper / snapshot / replay / forge)
/// could not be performed. These report on the *untrusted image*, so they
/// say nothing about security — only that there was no stored state at the
/// requested location to manipulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperError {
    /// The data block has no stored ciphertext image.
    UnwrittenBlock {
        /// The data block index.
        block: u64,
    },
    /// The metadata node has no stored image (never written back) or lies
    /// outside the layout entirely.
    MissingNode {
        /// The in-memory tree level.
        level: usize,
        /// The node index at that level.
        index: u64,
    },
    /// The byte offset is beyond the 64 B block.
    OffsetOutOfRange {
        /// The offending byte offset.
        byte: usize,
    },
}

impl std::fmt::Display for TamperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TamperError::UnwrittenBlock { block } => {
                write!(f, "data block {block} has no stored image to manipulate")
            }
            TamperError::MissingNode { level, index } => {
                write!(f, "no stored node image at level {level}, index {index}")
            }
            TamperError::OffsetOutOfRange { byte } => {
                write!(f, "byte offset {byte} beyond the 64 B block")
            }
        }
    }
}

impl std::error::Error for TamperError {}

/// Which OTP pipeline the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineKind {
    /// Single-AES baseline (Figure 2).
    Sgx,
    /// RMCC's split counter-only/address-only pipeline (Figure 11).
    Rmcc,
}

/// One stored (ciphertext, MAC) pair in the untrusted memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoredData {
    cipher: DataBlock,
    mac: u64,
}

/// The untrusted image of one metadata node: the 64 B serialized image the
/// MAC covers, as it sits in DRAM, plus its MAC. Storing the image rather
/// than the decoded [`CounterBlock`] keeps the type `Copy`, so the verify
/// path reads it without a heap-allocating clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoredNode {
    image: DataBlock,
    mac: u64,
}

/// A consistent snapshot of everything an attacker must restore for a
/// replay attempt on one block.
#[derive(Debug, Clone)]
pub struct ReplaySnapshot {
    block: u64,
    data: StoredData,
    l0: StoredNode,
}

/// A captured untrusted image of one metadata node — the raw material for a
/// counter-rollback attack ([`SecureMemory::replay_node`]).
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    level: usize,
    index: u64,
    node: StoredNode,
}

/// A captured untrusted image of one data block's (ciphertext, MAC) pair —
/// the raw material for a dropped-writeback attack
/// ([`SecureMemory::restore_data`]).
#[derive(Debug, Clone, Copy)]
pub struct DataSnapshot {
    block: u64,
    data: StoredData,
}

/// The outcome of a rebuild pass ([`SecureMemory::rebuild`]): how much of
/// the untrusted image was re-derived from trusted state and how much of
/// the ciphertext backing store survived re-verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildReport {
    /// Metadata node images recomputed (and re-MACed) from trusted state.
    pub nodes_rebuilt: u64,
    /// Stored data blocks whose MAC re-verified under the trusted counter.
    pub data_verified: u64,
    /// Stored data blocks whose MAC failed even under the trusted counter —
    /// the ciphertext or MAC image itself is damaged, so the block cannot
    /// be recovered from the backing store.
    pub data_unrecoverable: u64,
}

impl RebuildReport {
    /// Whether every stored data block survived re-verification.
    pub fn is_clean(&self) -> bool {
        self.data_unrecoverable == 0
    }
}

/// splitmix64 — the digest mixer used by [`SecureMemory::state_digest`].
#[inline]
fn digest_mix(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Serializes a counter block into the 64 B image the MAC covers. This is a
/// digest of the architectural state rather than the exact wire format —
/// collision-free for all practical purposes, and any change to any counter
/// value changes the image.
fn node_image(cb: &CounterBlock) -> DataBlock {
    let mut words = [0u64; 8];
    for (i, v) in cb.values().enumerate() {
        if let Some(w) = words.get_mut(i % 8) {
            *w = w.rotate_left(9) ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64);
        }
    }
    let mut out = [0u8; 64];
    for (chunk, w) in out.chunks_exact_mut(8).zip(words.iter()) {
        chunk.copy_from_slice(&w.to_be_bytes());
    }
    out
}

/// A functional secure memory: encrypt-on-write, verify-and-decrypt-on-read,
/// with a counter-mode OTP pipeline and an integrity tree whose root lives
/// on-chip.
///
/// # Examples
///
/// ```
/// use rmcc_secmem::counters::CounterOrg;
/// use rmcc_secmem::engine::{PipelineKind, SecureMemory};
///
/// let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 24, PipelineKind::Rmcc, 42);
/// mem.write(7, [0xabu8; 64]).unwrap();
/// assert_eq!(mem.read(7).unwrap(), [0xabu8; 64]);
/// ```
pub struct SecureMemory {
    meta: MetadataState,
    pipeline: Box<dyn OtpPipeline>,
    /// Per-block pad cost of `pipeline` (static, from the cost model).
    pad_cost: CryptoCost,
    mac_keys: MacKeys,
    policy: Box<dyn CounterUpdatePolicy>,
    data: PagedArena<StoredData>,
    /// `nodes[level]` holds the stored node images at in-memory tree level
    /// `level` (the on-chip root is never stored). Arena-per-level: lookup
    /// is layout arithmetic, and steady-state access allocates nothing.
    nodes: Vec<PagedArena<StoredNode>>,
    /// The AES backend the pipeline's keys were expanded on (diagnostics;
    /// outputs are backend-invariant).
    backend: Backend,
    /// Cumulative count of data blocks re-encrypted due to relevels.
    overflow_reencryptions: u64,
    /// Primitive-invocation tally (AES, clmul, MAC verifies) for telemetry.
    crypto: CryptoStats,
    /// Reusable buffer for the verify path's (level, index) chain.
    scratch_chain: Vec<(usize, u64)>,
    /// Reusable buffer for relevel re-encryption plaintexts.
    scratch_reencrypt: Vec<(u64, DataBlock)>,
}

impl std::fmt::Debug for SecureMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureMemory")
            .field("org", &self.meta.org())
            .field("pipeline", &self.pipeline.name())
            .field("written_blocks", &self.data.len())
            .finish_non_exhaustive()
    }
}

impl SecureMemory {
    /// Creates a secure memory over `data_bytes` of protected space with the
    /// baseline increment policy and zeroed counters.
    pub fn new(org: CounterOrg, data_bytes: u64, kind: PipelineKind, key_seed: u64) -> Self {
        Self::with_policy(org, data_bytes, kind, key_seed, Box::new(IncrementPolicy))
    }

    /// Creates a secure memory with a custom counter-update policy (e.g.
    /// RMCC's memoization-aware update). The AES backend comes from
    /// `RMCC_BACKEND` ([`Backend::from_env`]); backends are
    /// ciphertext-identical, so everything this engine ever stores or
    /// digests is byte-identical across them.
    pub fn with_policy(
        org: CounterOrg,
        data_bytes: u64,
        kind: PipelineKind,
        key_seed: u64,
        policy: Box<dyn CounterUpdatePolicy>,
    ) -> Self {
        Self::with_policy_on(org, data_bytes, kind, key_seed, policy, Backend::from_env())
    }

    /// [`SecureMemory::with_policy`] with an explicitly pinned AES backend.
    pub fn with_policy_on(
        org: CounterOrg,
        data_bytes: u64,
        kind: PipelineKind,
        key_seed: u64,
        policy: Box<dyn CounterUpdatePolicy>,
        backend: Backend,
    ) -> Self {
        let keys = KeySet::from_master_on(key_seed, AesVariant::Aes128, backend);
        let (pipeline, pad_cost): (Box<dyn OtpPipeline>, CryptoCost) = match kind {
            PipelineKind::Sgx => (Box::new(SgxOtp::new(keys)), CryptoCost::sgx_block()),
            PipelineKind::Rmcc => (Box::new(RmccOtp::new(keys)), CryptoCost::rmcc_block()),
        };
        let meta = MetadataState::new(org, data_bytes, InitPolicy::Zero);
        let mut nodes = Vec::new();
        nodes.resize_with(meta.layout().depth(), PagedArena::new);
        SecureMemory {
            meta,
            pipeline,
            pad_cost,
            mac_keys: MacKeys::from_seed(key_seed ^ 0x6d61_6373),
            policy,
            data: PagedArena::new(),
            nodes,
            backend,
            overflow_reencryptions: 0,
            crypto: CryptoStats::new(),
            scratch_chain: Vec::new(),
            scratch_reencrypt: Vec::new(),
        }
    }

    /// The stored untrusted image of metadata node (`level`, `index`), if
    /// one was ever written back.
    fn stored_node(&self, level: usize, index: u64) -> Option<&StoredNode> {
        self.nodes.get(level)?.get(index)
    }

    /// Stores an untrusted node image. Levels outside the tree are ignored
    /// (no reachable caller produces one).
    fn store_node(&mut self, level: usize, index: u64, node: StoredNode) {
        if let Some(arena) = self.nodes.get_mut(level) {
            arena.insert(index, node);
        }
    }

    /// The OTP pipeline's diagnostic name.
    pub fn pipeline_name(&self) -> &'static str {
        self.pipeline.name()
    }

    /// The AES backend this engine's keys were expanded on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Pre-derives pads for the given data blocks through the pipeline's
    /// batched AES path ([`OtpPipeline::warm_pads`]), in
    /// [`BATCH_BLOCKS`]-sized groups. Blocks never written are skipped (a
    /// read of one fails before any pad is needed).
    ///
    /// This is a pure wall-clock accelerator and deliberately bypasses
    /// the modeled crypto tally: architecturally the MC still issues one
    /// pipeline invocation per access, and [`Self::pads_for`] charges it
    /// at request time whether the memo was warmed or not. Results are
    /// bit-identical with or without prefetching.
    pub fn prefetch_pads<I>(&mut self, blocks: I)
    where
        I: IntoIterator<Item = u64>,
    {
        let mut reqs = [(0u64, 0u64); BATCH_BLOCKS];
        let mut n = 0usize;
        for block in blocks {
            if self.data.get(block).is_none() {
                continue;
            }
            let ctr = self.meta.data_counter(block);
            if let Some(slot) = reqs.get_mut(n) {
                *slot = (block, ctr);
                n += 1;
            }
            if n == reqs.len() {
                self.pipeline.warm_pads(&reqs);
                n = 0;
            }
        }
        if let Some(partial) = reqs.get(..n) {
            if !partial.is_empty() {
                self.pipeline.warm_pads(partial);
            }
        }
    }

    /// Data blocks re-encrypted by counter-overflow relevels so far.
    pub fn overflow_reencryptions(&self) -> u64 {
        self.overflow_reencryptions
    }

    /// Cumulative primitive-invocation tally: AES invocations, clmul
    /// combines, and MAC verifications this engine has performed. This
    /// functional engine has no memoization table, so `aes_saved` stays
    /// zero here; the timing simulator's accounting adds the saved side.
    pub fn crypto_stats(&self) -> CryptoStats {
        self.crypto
    }

    /// Records one pad computation in the tally (every `block_pads` call
    /// routes through here so the counts match the pipeline exactly).
    fn pads_for(&mut self, block_addr: u64, ctr: u64) -> rmcc_crypto::otp::BlockPads {
        self.crypto.pay(self.pad_cost);
        self.pipeline.block_pads(block_addr, ctr)
    }

    /// The MAC pad alone, for node-image authentication. The modeled cost is
    /// the same as [`Self::pads_for`] — architecturally the MC still issues
    /// the full pipeline — but the functional engine skips materializing the
    /// data-word pads nobody reads on the verification path, which is where
    /// deep-tree walks spend most of their wall clock.
    fn mac_pad_for(&mut self, block_addr: u64, ctr: u64) -> u128 {
        self.crypto.pay(self.pad_cost);
        self.pipeline.mac_pad(block_addr, ctr)
    }

    /// The current write counter of `block` (trusted view).
    pub fn counter_of(&mut self, block: u64) -> u64 {
        self.meta.data_counter(block)
    }

    // --- write path ---------------------------------------------------

    /// Encrypts `plaintext` and stores it as data block `block`, raising the
    /// block's counter according to the policy and keeping the tree image
    /// consistent.
    ///
    /// # Errors
    ///
    /// * [`WriteError::Layout`] if `block` is beyond the protected capacity.
    /// * [`WriteError::CounterSaturated`] if the block's counter cannot
    ///   advance within the 56-bit space (key-renewal territory, §IV-D2).
    ///
    /// Both refusals happen *before* any state is mutated: previously
    /// written blocks remain readable and byte-identical.
    pub fn write(&mut self, block: u64, plaintext: DataBlock) -> Result<(), WriteError> {
        self.write_impl(block, plaintext, true)
    }

    /// Encrypts and stores `plaintext` like [`Self::write`], but bypasses
    /// the counter-update policy entirely: the counter advances by exactly
    /// one and relevels go to the minimum legal target, so no memoization
    /// state is consulted or mutated. This is the degraded-mode path a
    /// health monitor routes writes through while a shard's memo table is
    /// suspect — every pad is paid at full AES cost.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::write`].
    pub fn write_baseline(&mut self, block: u64, plaintext: DataBlock) -> Result<(), WriteError> {
        self.write_impl(block, plaintext, false)
    }

    fn write_impl(
        &mut self,
        block: u64,
        plaintext: DataBlock,
        use_policy: bool,
    ) -> Result<(), WriteError> {
        self.meta.layout().check_data_block(block)?;
        let current = self.meta.data_counter(block);
        let target = if use_policy {
            self.policy.bump(current)
        } else {
            current.saturating_add(1)
        };
        assert!(target > current, "policy must increase the counter");
        if target > COUNTER_MAX {
            return Err(WriteError::CounterSaturated { counter: current });
        }
        if let Err(overflow) = self.meta.write_data_counter(block, target) {
            let relevel_to = if use_policy {
                self.policy.relevel_target(overflow.min_relevel_target)
            } else {
                overflow.min_relevel_target
            };
            assert!(relevel_to >= overflow.min_relevel_target);
            if relevel_to > COUNTER_MAX {
                return Err(WriteError::CounterSaturated { counter: current });
            }
            let idx = self.meta.layout().l0_index(block);
            // Recover the plaintexts of every covered, already-written block
            // *before* the relevel erases their old counters.
            let coverage = self.meta.org().coverage() as u64;
            let mut to_reencrypt = std::mem::take(&mut self.scratch_reencrypt);
            to_reencrypt.clear();
            for slot in 0..coverage {
                let b = idx * coverage + slot;
                if b == block {
                    continue;
                }
                let Some(stored) = self.data.get(b).copied() else {
                    continue;
                };
                let old_counter = self.meta.data_counter(b);
                let pads = self.pads_for(b, old_counter);
                to_reencrypt.push((b, xor_with_pads(&stored.cipher, &pads)));
            }
            self.meta.relevel(0, idx, relevel_to);
            // Re-encrypt under the new shared counter value.
            for (b, plaintext) in to_reencrypt.drain(..) {
                let counter = self.meta.data_counter(b);
                let pads = self.pads_for(b, counter);
                let cipher = xor_with_pads(&plaintext, &pads);
                let mac = compute_mac(&self.mac_keys, &cipher, pads.mac);
                self.data.insert(b, StoredData { cipher, mac });
                self.overflow_reencryptions += 1;
            }
            self.scratch_reencrypt = to_reencrypt;
        }
        let counter = self.meta.data_counter(block);
        let pads = self.pads_for(block, counter);
        let cipher = xor_with_pads(&plaintext, &pads);
        let mac = compute_mac(&self.mac_keys, &cipher, pads.mac);
        self.data.insert(block, StoredData { cipher, mac });
        // The L0 counter block changed: publish its new image up the tree.
        let idx = self.meta.layout().l0_index(block);
        self.publish_node(0, idx)
    }

    // --- read path ------------------------------------------------------

    /// Verifies the tree path for L0 node `idx` from the root down, then
    /// returns `Ok` if every image matches its MAC under its parent counter.
    fn verify_path(&mut self, l0_idx: u64) -> Result<(), ReadError> {
        // Collect the chain of (level, index) from L0 up to the top
        // in-memory level, reusing the scratch buffer (no per-read alloc).
        let mut chain = std::mem::take(&mut self.scratch_chain);
        chain.clear();
        let mut idx = l0_idx;
        let mut level = 0;
        chain.push((level, idx));
        while let Some(p) = self.meta.layout().parent_index(level, idx) {
            level += 1;
            idx = p;
            chain.push((level, idx));
        }
        // Verify top-down: each node's image MAC under the trusted/verified
        // parent counter.
        let mut outcome = Ok(());
        for &(level, idx) in chain.iter().rev() {
            if let Some(node) = self.stored_node(level, idx).copied() {
                let counter = self.meta.node_counter(level, idx);
                let addr = self.meta.layout().node_addr(level, idx) >> 6;
                let mac_pad = self.mac_pad_for(addr, counter);
                self.crypto.verify_mac();
                // audit:allow(R5, reason = "the MAC verdict is the public accept/reject outcome; branching on it is the tamper-detection contract")
                if !verify_mac(&self.mac_keys, &node.image, mac_pad, node.mac) {
                    outcome = Err(ReadError::MetadataTampered { level });
                    break;
                }
                // The image is authentic: it must match the trusted state
                // (models the MC decoding the fetched counter block); a
                // stale-but-authentic image is a replay.
                if node.image != node_image(self.meta.block(level, idx)) {
                    outcome = Err(ReadError::MetadataTampered { level });
                    break;
                }
            }
            // Nodes with no image were never written back; their state is
            // the trusted initial state.
        }
        self.scratch_chain = chain;
        outcome
    }

    /// Reads and decrypts data block `block`, verifying the full chain.
    ///
    /// # Errors
    ///
    /// * [`ReadError::Unwritten`] if the block was never written.
    /// * [`ReadError::MetadataTampered`] if a counter image fails to verify.
    /// * [`ReadError::DataTampered`] if the data MAC fails.
    pub fn read(&mut self, block: u64) -> Result<DataBlock, ReadError> {
        let stored = *self.data.get(block).ok_or(ReadError::Unwritten { block })?;
        let l0_idx = self.meta.layout().l0_index(block);
        self.verify_path(l0_idx)?;
        let counter = self.meta.data_counter(block);
        let pads = self.pads_for(block, counter);
        self.crypto.verify_mac();
        // audit:allow(R5, reason = "the MAC verdict is the public accept/reject outcome; branching on it is the tamper-detection contract")
        if !verify_mac(&self.mac_keys, &stored.cipher, pads.mac, stored.mac) {
            return Err(ReadError::DataTampered { block });
        }
        Ok(xor_with_pads(&stored.cipher, &pads))
    }

    // --- tree maintenance -------------------------------------------------

    /// Writes node (`level`, `idx`)'s current state out to the untrusted
    /// image, bumping its protecting counter and re-MACing ancestors as
    /// needed (write-through tree maintenance).
    ///
    /// # Errors
    ///
    /// * [`WriteError::Layout`] if `(level, idx)` is outside the tree — a
    ///   layout bug that must surface, never alias to another node.
    /// * [`WriteError::CounterSaturated`] if a protecting counter has no
    ///   room left in the 56-bit space.
    fn publish_node(&mut self, level: usize, idx: u64) -> Result<(), WriteError> {
        let depth = self.meta.layout().depth();
        let (parent_level, parent_idx) = self.meta.layout().parent_loc(level, idx)?;
        let current = self.meta.node_counter(level, idx);
        if current >= COUNTER_MAX {
            return Err(WriteError::CounterSaturated { counter: current });
        }
        if let Err(overflow) = self.meta.write_node_counter(level, idx, current + 1) {
            // Parent relevel: every sibling node image must be re-MACed.
            if overflow.min_relevel_target > COUNTER_MAX {
                return Err(WriteError::CounterSaturated { counter: current });
            }
            self.meta
                .relevel(parent_level, parent_idx, overflow.min_relevel_target);
            let arity = self.meta.org().tree_arity() as u64;
            for slot in 0..arity {
                let sibling = parent_idx * arity + slot;
                if sibling != idx && self.stored_node(level, sibling).is_some() {
                    self.refresh_node_mac(level, sibling);
                    self.overflow_reencryptions += 1;
                }
            }
        }
        self.refresh_node_mac(level, idx);
        // The parent's state changed (its counters moved): publish it too,
        // unless the parent is the on-chip root.
        if parent_level < depth {
            self.publish_node(parent_level, parent_idx)?;
        }
        Ok(())
    }

    /// Recomputes the stored MAC for node (`level`, `idx`) from its current
    /// trusted state and protecting counter.
    fn refresh_node_mac(&mut self, level: usize, idx: u64) {
        let counter = self.meta.node_counter(level, idx);
        let addr = self.meta.layout().node_addr(level, idx) >> 6;
        let mac_pad = self.mac_pad_for(addr, counter);
        let image = node_image(self.meta.block(level, idx));
        let mac = compute_mac(&self.mac_keys, &image, mac_pad);
        self.store_node(level, idx, StoredNode { image, mac });
    }

    // --- recovery interface ------------------------------------------------

    /// Resets the counter-update policy's transient state (memo table
    /// contents, budget ledger) to its just-built configuration. Trusted
    /// counters, stored ciphertext, and node images are untouched — this is
    /// the memo half of a shard rebuild.
    pub fn reset_policy(&mut self) {
        self.policy.reset();
    }

    /// Asks the policy how many entries it currently knows to be corrupted
    /// (see [`CounterUpdatePolicy::scrub`]). Zero means the policy has no
    /// detected-but-unserved damage.
    pub fn scrub_policy(&mut self) -> u64 {
        self.policy.scrub()
    }

    /// Reconstructs the untrusted integrity-tree image from trusted state
    /// and re-verifies every stored data block's MAC — the deterministic
    /// rebuild pass a quarantined shard runs before readmission.
    ///
    /// Every stored node image is recomputed (and re-MACed) from the
    /// trusted counter tree, wiping any replayed or forged image an
    /// attacker planted. Every stored ciphertext is then re-verified under
    /// its trusted counter; blocks whose MAC fails even there are counted
    /// as unrecoverable (their backing-store image itself is damaged).
    /// Cumulative telemetry (crypto tallies, overflow counts) still grows —
    /// the rebuild pays real pad and verify work.
    pub fn rebuild(&mut self) -> RebuildReport {
        let mut report = RebuildReport::default();
        // Phase 1: re-derive every stored node image from trusted state.
        let mut locations: Vec<(usize, u64)> = Vec::new();
        for (level, arena) in self.nodes.iter().enumerate() {
            locations.extend(arena.entries().map(|(idx, _)| (level, idx)));
        }
        for (level, idx) in locations {
            self.refresh_node_mac(level, idx);
            report.nodes_rebuilt = report.nodes_rebuilt.saturating_add(1);
        }
        // Phase 2: re-verify every stored ciphertext under its trusted
        // counter. (Collected first: pad derivation needs `&mut self`.)
        let blocks: Vec<(u64, StoredData)> = self.data.entries().map(|(b, s)| (b, *s)).collect();
        for (block, stored) in blocks {
            let counter = self.meta.data_counter(block);
            let pads = self.pads_for(block, counter);
            self.crypto.verify_mac();
            // audit:allow(R5, reason = "the MAC verdict is the public accept/reject outcome; branching on it is the tamper-detection contract")
            if verify_mac(&self.mac_keys, &stored.cipher, pads.mac, stored.mac) {
                report.data_verified = report.data_verified.saturating_add(1);
            } else {
                report.data_unrecoverable = report.data_unrecoverable.saturating_add(1);
            }
        }
        report
    }

    /// Order-sensitive fingerprint of the engine's *architectural* state:
    /// the trusted counter tree plus every stored data and node image.
    /// Cumulative telemetry (crypto tallies, overflow-re-encryption counts)
    /// is deliberately excluded, so a rebuilt shard can be compared
    /// byte-for-byte against a never-faulted control twin whose history
    /// differs only in fallback accounting.
    pub fn state_digest(&self) -> u64 {
        let mut acc = self.meta.state_digest();
        for (block, stored) in self.data.entries() {
            acc = digest_mix(acc ^ block);
            for &byte in &stored.cipher {
                acc = acc.rotate_left(8) ^ u64::from(byte);
            }
            acc = digest_mix(acc ^ stored.mac);
        }
        for (level, arena) in self.nodes.iter().enumerate() {
            for (idx, node) in arena.entries() {
                acc = digest_mix(acc ^ ((level as u64) << 48) ^ idx);
                for &byte in &node.image {
                    acc = acc.rotate_left(8) ^ u64::from(byte);
                }
                acc = digest_mix(acc ^ node.mac);
            }
        }
        digest_mix(acc)
    }

    // --- attacker interface ------------------------------------------------
    //
    // Everything below manipulates only the *untrusted* memory image (stored
    // ciphertexts, MACs, and node images) — exactly what an adversary with
    // bus access controls. The trusted on-chip state (counter tree root,
    // keys) is never touched; that asymmetry is the defense.

    /// The address/coverage layout in use (attackers know the layout).
    pub fn layout(&self) -> &MetadataLayout {
        self.meta.layout()
    }

    /// The Observed-System-Max register value (§IV-D2) — an upper bound on
    /// every data counter in the system.
    pub fn observed_max(&self) -> u64 {
        self.meta.max_observed()
    }

    /// Flips bits in the stored ciphertext of `block` (physical tampering).
    ///
    /// # Errors
    ///
    /// [`TamperError::UnwrittenBlock`] if the block has no stored image;
    /// [`TamperError::OffsetOutOfRange`] if `byte` is past the block.
    #[allow(clippy::cast_possible_truncation)] // BLOCK_BYTES (64) fits any usize
    pub fn tamper_data(&mut self, block: u64, byte: usize, mask: u8) -> Result<(), TamperError> {
        if byte >= BLOCK_BYTES as usize {
            return Err(TamperError::OffsetOutOfRange { byte });
        }
        let stored = self
            .data
            .get_mut(block)
            .ok_or(TamperError::UnwrittenBlock { block })?;
        if let Some(b) = stored.cipher.get_mut(byte) {
            *b ^= mask;
        }
        Ok(())
    }

    /// Corrupts the stored MAC of `block`.
    ///
    /// # Errors
    ///
    /// [`TamperError::UnwrittenBlock`] if the block has no stored image.
    pub fn tamper_mac(&mut self, block: u64, mask: u64) -> Result<(), TamperError> {
        let stored = self
            .data
            .get_mut(block)
            .ok_or(TamperError::UnwrittenBlock { block })?;
        stored.mac ^= mask;
        Ok(())
    }

    /// Captures everything needed to replay `block` later: its ciphertext,
    /// MAC, and the covering counter-block image.
    ///
    /// # Errors
    ///
    /// [`TamperError::UnwrittenBlock`] if the block has no stored image;
    /// [`TamperError::MissingNode`] if its counter block was never written
    /// back (nothing on the bus to capture).
    pub fn snapshot(&self, block: u64) -> Result<ReplaySnapshot, TamperError> {
        let l0_idx = self.meta.layout().l0_index(block);
        Ok(ReplaySnapshot {
            block,
            data: *self
                .data
                .get(block)
                .ok_or(TamperError::UnwrittenBlock { block })?,
            l0: self
                .stored_node(0, l0_idx)
                .copied()
                .ok_or(TamperError::MissingNode {
                    level: 0,
                    index: l0_idx,
                })?,
        })
    }

    /// Replays a snapshot: restores the stale ciphertext, MAC, *and* the
    /// stale counter-block image consistently — the strongest replay an
    /// attacker with full bus access can mount. The integrity tree catches
    /// it because the L1 counter has moved on.
    ///
    /// # Errors
    ///
    /// [`TamperError::MissingNode`] if the snapshot's counter block lies
    /// outside this memory's layout (snapshot from an incompatible memory).
    pub fn replay(&mut self, snapshot: &ReplaySnapshot) -> Result<(), TamperError> {
        let l0_idx = self.meta.layout().l0_index(snapshot.block);
        if l0_idx >= self.meta.layout().level_count(0) {
            return Err(TamperError::MissingNode {
                level: 0,
                index: l0_idx,
            });
        }
        self.data.insert(snapshot.block, snapshot.data);
        self.store_node(0, l0_idx, snapshot.l0);
        // The attacker also rolls back the MC's decoded view of the counter
        // (they control the bus, so the MC will decode the stale image).
        // The trusted tree state is NOT rolled back — that is the defense.
        Ok(())
    }

    /// Captures the untrusted image of metadata node (`level`, `index`) —
    /// counter-image rollback raw material.
    ///
    /// # Errors
    ///
    /// [`TamperError::MissingNode`] if the node has no stored image.
    pub fn snapshot_node(&self, level: usize, index: u64) -> Result<NodeSnapshot, TamperError> {
        Ok(NodeSnapshot {
            level,
            index,
            node: self
                .stored_node(level, index)
                .copied()
                .ok_or(TamperError::MissingNode { level, index })?,
        })
    }

    /// Restores a stale node image — a counter-image rollback. The node's
    /// protecting counter (in its parent, or the on-chip root) has moved on,
    /// so subsequent reads under this node fail tree verification.
    pub fn replay_node(&mut self, snapshot: &NodeSnapshot) {
        self.store_node(snapshot.level, snapshot.index, snapshot.node);
    }

    /// Overwrites the stored image of node (`level`, `index`) with a forged
    /// counter block whose every slot reads `value` — e.g. the 56-bit
    /// [`COUNTER_MAX`] bound, probing for saturation-handling bugs. The old
    /// MAC is kept (or zero for never-written nodes): the attacker cannot
    /// compute a valid MAC for the forged image.
    ///
    /// # Errors
    ///
    /// [`TamperError::MissingNode`] if `(level, index)` is outside the tree.
    pub fn forge_node_counters(
        &mut self,
        level: usize,
        index: u64,
        value: u64,
    ) -> Result<(), TamperError> {
        let layout = self.meta.layout();
        if level >= layout.depth() || index >= layout.level_count(level) {
            return Err(TamperError::MissingNode { level, index });
        }
        let org = self.meta.org();
        let forged = CounterBlock::with_state(org, value, vec![0; org.coverage()]);
        let mac = self.stored_node(level, index).map_or(0, |n| n.mac);
        let image = node_image(&forged);
        self.store_node(level, index, StoredNode { image, mac });
        Ok(())
    }

    /// Captures the stored (ciphertext, MAC) pair of `block` — the bus image
    /// an attacker sees before suppressing a writeback.
    ///
    /// # Errors
    ///
    /// [`TamperError::UnwrittenBlock`] if the block has no stored image.
    pub fn data_snapshot(&self, block: u64) -> Result<DataSnapshot, TamperError> {
        Ok(DataSnapshot {
            block,
            data: *self
                .data
                .get(block)
                .ok_or(TamperError::UnwrittenBlock { block })?,
        })
    }

    /// Restores a stale data image *without* the counter image — models a
    /// dropped/suppressed data writeback: the counter advanced, the data
    /// did not. The stale ciphertext no longer verifies under the advanced
    /// counter.
    pub fn restore_data(&mut self, snapshot: &DataSnapshot) {
        self.data.insert(snapshot.block, snapshot.data);
    }

    /// Discards the stored image of `block` entirely — a dropped initial
    /// writeback. A subsequent read finds nothing to verify and reports
    /// [`ReadError::Unwritten`].
    ///
    /// # Errors
    ///
    /// [`TamperError::UnwrittenBlock`] if there was no image to drop.
    pub fn drop_stored(&mut self, block: u64) -> Result<(), TamperError> {
        self.data
            .remove(block)
            .map(|_| ())
            .ok_or(TamperError::UnwrittenBlock { block })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(kind: PipelineKind) -> SecureMemory {
        SecureMemory::new(CounterOrg::Morphable128, 1 << 24, kind, 99)
    }

    #[test]
    fn roundtrip_both_pipelines() {
        for kind in [PipelineKind::Sgx, PipelineKind::Rmcc] {
            let mut m = mem(kind);
            let pt = [0x5au8; 64];
            m.write(3, pt).unwrap();
            assert_eq!(m.read(3).unwrap(), pt, "{:?}", kind);
        }
    }

    #[test]
    fn rewrite_changes_counter_and_still_roundtrips() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(3, [1u8; 64]).unwrap();
        let c1 = m.counter_of(3);
        m.write(3, [2u8; 64]).unwrap();
        let c2 = m.counter_of(3);
        assert!(c2 > c1);
        assert_eq!(m.read(3).unwrap(), [2u8; 64]);
    }

    #[test]
    fn unwritten_read_errors() {
        let mut m = mem(PipelineKind::Rmcc);
        assert_eq!(m.read(9), Err(ReadError::Unwritten { block: 9 }));
    }

    #[test]
    fn data_tampering_detected() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [7u8; 64]).unwrap();
        m.tamper_data(5, 17, 0x40).unwrap();
        assert_eq!(m.read(5), Err(ReadError::DataTampered { block: 5 }));
    }

    #[test]
    fn mac_tampering_detected() {
        let mut m = mem(PipelineKind::Sgx);
        m.write(5, [7u8; 64]).unwrap();
        m.tamper_mac(5, 1).unwrap();
        assert_eq!(m.read(5), Err(ReadError::DataTampered { block: 5 }));
    }

    #[test]
    fn replay_attack_detected_by_tree() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [0x11u8; 64]).unwrap();
        let stale = m.snapshot(5).unwrap();
        m.write(5, [9u8; 64]).unwrap(); // victim updates the block
        m.replay(&stale).unwrap(); // attacker restores old cipher+mac+counter image
        let err = m.read(5).unwrap_err();
        assert!(
            matches!(err, ReadError::MetadataTampered { level: 0 }),
            "replay must fail tree verification, got {err:?}"
        );
    }

    #[test]
    fn sibling_blocks_unaffected_by_writes() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(0, [1u8; 64]).unwrap();
        m.write(1, [2u8; 64]).unwrap();
        m.write(0, [3u8; 64]).unwrap();
        assert_eq!(m.read(1).unwrap(), [2u8; 64]);
        assert_eq!(m.read(0).unwrap(), [3u8; 64]);
    }

    #[test]
    fn many_blocks_roundtrip() {
        let mut m = mem(PipelineKind::Rmcc);
        for b in 0..300u64 {
            let mut pt = [0u8; 64];
            pt[0] = b as u8;
            pt[63] = (b >> 8) as u8;
            m.write(b * 17 % 4096, pt).unwrap();
        }
        for b in (0..300u64).rev() {
            let got = m.read(b * 17 % 4096).unwrap();
            assert_eq!(got[0], b as u8);
        }
    }

    #[test]
    fn tampering_unwritten_state_reports_errors_not_panics() {
        let mut m = mem(PipelineKind::Rmcc);
        assert_eq!(
            m.tamper_data(9, 0, 1),
            Err(TamperError::UnwrittenBlock { block: 9 })
        );
        assert_eq!(
            m.tamper_mac(9, 1),
            Err(TamperError::UnwrittenBlock { block: 9 })
        );
        assert!(m.snapshot(9).is_err());
        assert!(m.snapshot_node(0, 0).is_err());
        assert!(m.data_snapshot(9).is_err());
        assert_eq!(
            m.drop_stored(9),
            Err(TamperError::UnwrittenBlock { block: 9 })
        );
        m.write(9, [1u8; 64]).unwrap();
        assert_eq!(
            m.tamper_data(9, 64, 1),
            Err(TamperError::OffsetOutOfRange { byte: 64 })
        );
    }

    #[test]
    fn out_of_capacity_write_is_a_layout_error() {
        let mut m = mem(PipelineKind::Rmcc);
        let capacity = m.layout().data_blocks();
        let err = m.write(capacity, [0u8; 64]).unwrap_err();
        assert_eq!(
            err,
            WriteError::Layout(LayoutError::DataBlockOutOfRange {
                block: capacity,
                capacity,
            })
        );
    }

    #[test]
    fn counter_rollback_via_node_snapshot_detected() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [1u8; 64]).unwrap();
        let l0 = m.layout().l0_index(5);
        let stale = m.snapshot_node(0, l0).unwrap();
        m.write(5, [2u8; 64]).unwrap();
        m.replay_node(&stale);
        assert_eq!(m.read(5), Err(ReadError::MetadataTampered { level: 0 }));
        // Rewriting republishes a fresh image; the block recovers.
        m.write(5, [3u8; 64]).unwrap();
        assert_eq!(m.read(5).unwrap(), [3u8; 64]);
    }

    #[test]
    fn dropped_data_writeback_detected() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [1u8; 64]).unwrap();
        let stale = m.data_snapshot(5).unwrap();
        m.write(5, [2u8; 64]).unwrap();
        m.restore_data(&stale); // the new data writeback never landed
        assert_eq!(m.read(5), Err(ReadError::DataTampered { block: 5 }));
    }

    #[test]
    fn dropped_initial_writeback_reads_unwritten() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [1u8; 64]).unwrap();
        m.drop_stored(5).unwrap();
        assert_eq!(m.read(5), Err(ReadError::Unwritten { block: 5 }));
    }

    #[test]
    fn forged_counter_image_at_max_detected_without_panic() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [1u8; 64]).unwrap();
        let l0 = m.layout().l0_index(5);
        for forged in [m.observed_max() + 1, COUNTER_MAX] {
            m.forge_node_counters(0, l0, forged).unwrap();
            assert_eq!(m.read(5), Err(ReadError::MetadataTampered { level: 0 }));
        }
        // Outside the tree: error, not panic or aliasing.
        let depth = m.layout().depth();
        assert_eq!(
            m.forge_node_counters(depth, 0, 1),
            Err(TamperError::MissingNode {
                level: depth,
                index: 0
            })
        );
    }

    #[test]
    fn crypto_stats_tally_writes_reads_and_verifies() {
        let mut m = mem(PipelineKind::Rmcc);
        assert_eq!(m.crypto_stats(), CryptoStats::default());
        m.write(3, [1u8; 64]).unwrap();
        let after_write = m.crypto_stats();
        assert!(after_write.aes_paid > 0, "writes pay for pads");
        assert!(after_write.clmul_ops > 0, "split pipeline combines");
        assert_eq!(after_write.mac_verifies, 0, "writes verify nothing");
        m.read(3).unwrap();
        let after_read = m.crypto_stats();
        assert!(
            after_read.mac_verifies >= 2,
            "tree chain plus the data block verify"
        );
        assert!(after_read.aes_paid > after_write.aes_paid);
        assert_eq!(
            after_read.aes_saved, 0,
            "the functional engine has no memoization table"
        );
        // The baseline pipeline performs no combines.
        let mut s = mem(PipelineKind::Sgx);
        s.write(3, [1u8; 64]).unwrap();
        s.read(3).unwrap();
        assert_eq!(s.crypto_stats().clmul_ops, 0);
        assert!(s.crypto_stats().mac_verifies > 0);
    }

    /// A policy that jumps straight to the 56-bit bound to probe saturation.
    struct SaturatingPolicy;
    impl CounterUpdatePolicy for SaturatingPolicy {
        fn bump(&mut self, current: u64) -> u64 {
            (current + 1).max(COUNTER_MAX + 1)
        }
        fn relevel_target(&mut self, min_target: u64) -> u64 {
            min_target
        }
    }

    #[test]
    fn saturated_counter_fails_write_safely() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(5, [1u8; 64]).unwrap();
        let mut sat = SecureMemory::with_policy(
            CounterOrg::Morphable128,
            1 << 24,
            PipelineKind::Rmcc,
            99,
            Box::new(SaturatingPolicy),
        );
        // First write under the saturating policy is refused up front…
        let err = sat.write(5, [2u8; 64]).unwrap_err();
        assert!(matches!(err, WriteError::CounterSaturated { .. }));
        // …and refusal is fail-safe: nothing was stored, nothing corrupted.
        assert_eq!(sat.read(5), Err(ReadError::Unwritten { block: 5 }));
    }

    #[test]
    fn write_baseline_matches_increment_policy_writes() {
        // A baseline write on any engine behaves exactly like a policy
        // write on an IncrementPolicy engine: same counters, same stored
        // images, same digest.
        let mut a = mem(PipelineKind::Rmcc);
        let mut b = mem(PipelineKind::Rmcc);
        for round in 0..3u8 {
            for block in [0u64, 1, 7, 130] {
                let pt = [round ^ block as u8; 64];
                a.write(block, pt).unwrap();
                b.write_baseline(block, pt).unwrap();
            }
        }
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.counter_of(7), b.counter_of(7));
        assert_eq!(b.read(130).unwrap(), [2 ^ 130u8; 64]);
    }

    #[test]
    fn state_digest_tracks_architectural_state_not_telemetry() {
        let mut a = mem(PipelineKind::Rmcc);
        let mut b = mem(PipelineKind::Rmcc);
        assert_eq!(a.state_digest(), b.state_digest(), "fresh twins agree");
        a.write(3, [1u8; 64]).unwrap();
        assert_ne!(a.state_digest(), b.state_digest(), "a write is visible");
        b.write(3, [1u8; 64]).unwrap();
        let agreed = a.state_digest();
        assert_eq!(agreed, b.state_digest(), "same history, same digest");
        // Reads pay crypto cost but change no architectural state.
        a.read(3).unwrap();
        a.read(3).unwrap();
        assert_eq!(a.state_digest(), agreed, "telemetry is excluded");
        // Tampering with the untrusted image is visible.
        a.tamper_mac(3, 1).unwrap();
        assert_ne!(a.state_digest(), agreed);
    }

    #[test]
    fn rebuild_heals_replayed_and_forged_node_images() {
        let mut m = mem(PipelineKind::Rmcc);
        let mut twin = mem(PipelineKind::Rmcc);
        for blk in [0u64, 5, 9, 200] {
            m.write(blk, [blk as u8; 64]).unwrap();
            twin.write(blk, [blk as u8; 64]).unwrap();
        }
        let l0 = m.layout().l0_index(5);
        let stale = m.snapshot_node(0, l0).unwrap();
        m.write(5, [0x44u8; 64]).unwrap();
        twin.write(5, [0x44u8; 64]).unwrap();
        m.replay_node(&stale);
        m.forge_node_counters(0, m.layout().l0_index(200), COUNTER_MAX)
            .unwrap();
        assert_eq!(m.read(5), Err(ReadError::MetadataTampered { level: 0 }));
        assert_ne!(m.state_digest(), twin.state_digest());

        let report = m.rebuild();
        assert!(report.is_clean(), "backing store was never touched");
        assert_eq!(report.data_verified, 4);
        assert!(report.nodes_rebuilt > 0);
        assert_eq!(
            m.state_digest(),
            twin.state_digest(),
            "rebuilt state is byte-identical to the never-faulted twin"
        );
        for blk in [0u64, 9, 200] {
            assert_eq!(m.read(blk).unwrap(), [blk as u8; 64]);
        }
        assert_eq!(m.read(5).unwrap(), [0x44u8; 64]);
    }

    #[test]
    fn rebuild_counts_damaged_ciphertext_as_unrecoverable() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(1, [1u8; 64]).unwrap();
        m.write(2, [2u8; 64]).unwrap();
        m.tamper_data(2, 0, 0xff).unwrap();
        let report = m.rebuild();
        assert!(!report.is_clean());
        assert_eq!(report.data_verified, 1);
        assert_eq!(report.data_unrecoverable, 1);
        // The undamaged block still reads; the damaged one still fails.
        assert_eq!(m.read(1).unwrap(), [1u8; 64]);
        assert_eq!(m.read(2), Err(ReadError::DataTampered { block: 2 }));
    }

    #[test]
    fn default_policy_reset_and_scrub_are_noops() {
        let mut m = mem(PipelineKind::Rmcc);
        m.write(3, [7u8; 64]).unwrap();
        let before = m.state_digest();
        m.reset_policy();
        assert_eq!(m.scrub_policy(), 0);
        assert_eq!(m.state_digest(), before);
    }
}
