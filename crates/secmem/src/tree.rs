//! Architectural counter state: level-0 counter blocks plus the integrity
//! tree that protects them.
//!
//! [`MetadataState`] owns every counter in the system, instantiated lazily
//! as blocks are touched. It is policy-free: callers decide target values
//! (baseline `+1` vs RMCC's memoization-aware update) and handle the
//! re-encryption traffic that a relevel implies; this module keeps the
//! values, the tree structure, and the Observed-System-Max register
//! (§IV-D2) consistent.

use std::collections::BTreeMap;

use crate::arena::PagedArena;
use crate::counters::{CounterBlock, CounterOrg, WouldOverflow};
use crate::layout::MetadataLayout;

/// How untouched counter blocks materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitPolicy {
    /// All counters start at zero. RMCC would look artificially perfect
    /// under this policy (§V: "If all counters are zero in the beginning,
    /// RMCC will work perfectly"), so it is only for unit tests.
    Zero,
    /// Counters start at large pseudo-random values — the equivalent end
    /// state of the paper's write-storm initialization, where every block is
    /// written ~100,000 times to randomize its counter.
    Randomized {
        /// Seed for the deterministic per-block state derivation.
        seed: u64,
    },
}

/// Mean initial counter value under randomized initialization (the paper
/// writes each block "100000 times on average").
pub const RANDOM_INIT_MEAN: u64 = 100_000;

/// The canonical counter-value ladder that a long write-storm under RMCC
/// converges to: 16 group starts spread over the randomized-counter range.
///
/// §V runs every block through ~100,000 writebacks *with all states —
/// including the memoization table — live*, so measurement begins from the
/// converged steady state: most blocks sit on memoized values, a minority
/// of stragglers do not. [`InitPolicy::Randomized`] reproduces that end
/// state directly (simulating the 10^11-access storm itself is the one
/// thing we cannot afford); RMCC seeds its tables with this ladder, and the
/// self-reinforcing dynamics continue from there.
pub fn canonical_group_starts() -> [u64; 16] {
    core::array::from_fn(|i| RANDOM_INIT_MEAN / 2 + i as u64 * 6_400)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// All counter state for one protected memory: L0 counter blocks at level 0
/// and tree nodes above, all using the same [`CounterOrg`].
///
/// # Examples
///
/// ```
/// use rmcc_secmem::counters::CounterOrg;
/// use rmcc_secmem::tree::{InitPolicy, MetadataState};
///
/// let mut meta = MetadataState::new(CounterOrg::Sc64, 1 << 30, InitPolicy::Zero);
/// assert_eq!(meta.data_counter(5), 0);
/// meta.write_data_counter(5, 1).unwrap();
/// assert_eq!(meta.data_counter(5), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetadataState {
    layout: MetadataLayout,
    /// `levels[k]` holds the counter blocks at in-memory level `k`, indexed
    /// by node index; the last entry is the on-chip root. Arenas rather
    /// than hash maps: node indices are dense layout arithmetic, so lookup
    /// is two pointer hops and steady-state access allocates nothing.
    levels: Vec<PagedArena<CounterBlock>>,
    init: InitPolicy,
    /// Observed System Max Counter Value Register (§IV-D2): the largest
    /// data-block counter value ever produced.
    max_observed: u64,
}

impl MetadataState {
    /// Creates counter state for `data_bytes` of protected memory.
    pub fn new(org: CounterOrg, data_bytes: u64, init: InitPolicy) -> Self {
        let layout = MetadataLayout::new(org, data_bytes);
        // depth() in-memory levels + 1 on-chip root level.
        let mut levels = Vec::new();
        levels.resize_with(layout.depth() + 1, PagedArena::new);
        let max_observed = match init {
            InitPolicy::Zero => 0,
            // Randomized majors are drawn from [mean/2, 3*mean/2); minors
            // add < 64; the register starts at a sound upper bound.
            InitPolicy::Randomized { .. } => RANDOM_INIT_MEAN * 3 / 2 + 64,
        };
        MetadataState {
            layout,
            levels,
            init,
            max_observed,
        }
    }

    /// The address/coverage layout in use.
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// The counter organization in use.
    pub fn org(&self) -> CounterOrg {
        self.layout.org()
    }

    /// The Observed-System-Max register: an upper bound on every data
    /// counter in the system. RMCC only inserts memoized groups starting at
    /// or below `max_observed() + 1` so the worst-case single-block writer
    /// still gets 2^56 writebacks before key renewal (§IV-D2).
    pub fn max_observed(&self) -> u64 {
        self.max_observed
    }

    fn materialize(org: CounterOrg, init: InitPolicy, level: usize, index: u64) -> CounterBlock {
        match init {
            InitPolicy::Zero => CounterBlock::new(org),
            InitPolicy::Randomized { seed } => {
                let h = splitmix(seed ^ (level as u64) << 56 ^ index);
                let n = org.coverage();
                // 7 of 8 blocks sit on the converged ladder (their last
                // relevel under the storm steered them to a memoized group;
                // in-group +1 walks leave small minors that are *still*
                // memoized because groups hold 8 consecutive values). The
                // rest are stragglers at unrelated random values.
                let conformed = !h.is_multiple_of(8);
                let ladder = canonical_group_starts();
                let major = if conformed {
                    #[allow(clippy::indexing_slicing)]
                    // audit:allow(R1, reason = "index reduced modulo the 16-entry ladder length is total")
                    ladder[(h >> 8) as usize % ladder.len()]
                } else {
                    RANDOM_INIT_MEAN / 2 + h % RANDOM_INIT_MEAN
                };
                // Straggler minors sit mid-way toward their format's
                // overflow point, as a long uniform write storm leaves them:
                // SC-64's 7-bit minors drift high, Morphable's relevels keep
                // minors narrow.
                let straggler_mag = match org {
                    CounterOrg::Sc64 => 96,
                    _ => 16,
                };
                let minors = (0..n)
                    .map(|s| {
                        let hs = splitmix(h ^ s as u64);
                        if conformed {
                            // Stay inside the 8-value group.
                            if hs.is_multiple_of(4) {
                                hs % 8
                            } else {
                                0
                            }
                        } else if hs.is_multiple_of(4) {
                            hs % straggler_mag
                        } else {
                            0
                        }
                    })
                    .collect();
                CounterBlock::with_state(org, major, minors)
            }
        }
    }

    /// The counter block at `level` / `index`, materializing it on first
    /// touch.
    pub fn block(&mut self, level: usize, index: u64) -> &CounterBlock {
        self.block_mut(level, index)
    }

    /// # Panics
    ///
    /// Panics when `level` exceeds the tree depth. Every public entry point
    /// derives `level` from the layout, so an out-of-range level here is a
    /// caller bug, not a reachable state.
    // audit:allow(R1, scope = fn, reason = "level bounds are this accessor's documented panic contract")
    #[allow(clippy::indexing_slicing)]
    fn block_mut(&mut self, level: usize, index: u64) -> &mut CounterBlock {
        let org = self.layout.org();
        let init = self.init;
        self.levels[level].get_or_insert_with(index, || Self::materialize(org, init, level, index))
    }

    /// The write counter of data block `data_block`.
    pub fn data_counter(&mut self, data_block: u64) -> u64 {
        let idx = self.layout.l0_index(data_block);
        let slot = self.layout.l0_slot(data_block);
        self.block_mut(0, idx).value(slot)
    }

    /// Raises data block `data_block`'s counter to `target`.
    ///
    /// # Errors
    ///
    /// Propagates [`WouldOverflow`] when the counter block must relevel; the
    /// caller picks the target and calls [`MetadataState::relevel`].
    pub fn write_data_counter(
        &mut self,
        data_block: u64,
        target: u64,
    ) -> Result<(), WouldOverflow> {
        let idx = self.layout.l0_index(data_block);
        let slot = self.layout.l0_slot(data_block);
        self.block_mut(0, idx).try_write(slot, target)?;
        self.max_observed = self.max_observed.max(target);
        Ok(())
    }

    /// The counter protecting metadata node `index` at `level` — i.e. the
    /// value held in its parent (which may be the on-chip root).
    ///
    /// # Panics
    ///
    /// Panics when `level` / `index` fall outside the layout; callers that
    /// need a fallible lookup should validate via
    /// [`MetadataLayout::parent_loc`] first.
    #[allow(clippy::expect_used)] // documented panic contract
    pub fn node_counter(&mut self, level: usize, index: u64) -> u64 {
        let slot = self.layout.parent_slot(index);
        let (parent_level, parent_idx) = self
            .layout
            .parent_loc(level, index)
            // audit:allow(R1, reason = "out-of-layout nodes are this accessor's documented panic contract")
            .expect("node_counter addressed a node outside the layout");
        self.block_mut(parent_level, parent_idx).value(slot)
    }

    /// Raises the counter protecting node `index` at `level` to `target`
    /// (done whenever that node is written back to memory).
    ///
    /// # Errors
    ///
    /// Propagates [`WouldOverflow`] from the parent block.
    ///
    /// # Panics
    ///
    /// Panics when `level` / `index` fall outside the layout; callers that
    /// need a fallible lookup should validate via
    /// [`MetadataLayout::parent_loc`] first.
    #[allow(clippy::expect_used)] // documented panic contract
    pub fn write_node_counter(
        &mut self,
        level: usize,
        index: u64,
        target: u64,
    ) -> Result<(), WouldOverflow> {
        let slot = self.layout.parent_slot(index);
        let (parent_level, parent_idx) = self
            .layout
            .parent_loc(level, index)
            // audit:allow(R1, reason = "out-of-layout nodes are this accessor's documented panic contract")
            .expect("write_node_counter addressed a node outside the layout");
        self.block_mut(parent_level, parent_idx)
            .try_write(slot, target)
    }

    /// Relevels the counter block at `level` / `index` to `target` and
    /// returns how many child blocks (data blocks for level 0, metadata
    /// nodes otherwise) must be re-encrypted / re-MACed — the traffic cost
    /// of the overflow.
    pub fn relevel(&mut self, level: usize, index: u64, target: u64) -> usize {
        self.block_mut(level, index).relevel(target);
        if level == 0 {
            self.max_observed = self.max_observed.max(target);
        }
        self.layout.org().coverage()
    }

    /// Runs `f` with mutable access to the counter block at `level` /
    /// `index`, keeping the Observed-System-Max register consistent with
    /// any level-0 changes `f` makes.
    pub fn with_block_mut<R>(
        &mut self,
        level: usize,
        index: u64,
        f: impl FnOnce(&mut CounterBlock) -> R,
    ) -> R {
        let block = self.block_mut(level, index);
        let r = f(&mut *block);
        if level == 0 {
            let max = block.max_value();
            self.max_observed = self.max_observed.max(max);
        }
        r
    }

    /// Number of counter blocks materialized at `level` (diagnostics).
    pub fn touched_blocks(&self, level: usize) -> usize {
        self.levels.get(level).map_or(0, PagedArena::len)
    }

    /// Order-sensitive digest of every materialized counter block (all
    /// levels, index order) plus the Observed-System-Max register — the
    /// trusted half of an engine's state fingerprint. Two states with equal
    /// digests hold byte-identical counters everywhere they have been
    /// touched (up to hash collisions).
    pub fn state_digest(&self) -> u64 {
        let mut acc = 0x7472_7573_7465_6421u64; // "trusted!"
        for (level, arena) in self.levels.iter().enumerate() {
            for (index, cb) in arena.entries() {
                acc = splitmix(acc ^ ((level as u64) << 48) ^ index);
                for v in cb.values() {
                    acc = splitmix(acc ^ v);
                }
            }
        }
        splitmix(acc ^ self.max_observed)
    }

    /// Iterates over every *touched* data-block counter value along with the
    /// number of data blocks currently holding it — the source for the
    /// paper's Figure 15 coverage metric.
    pub fn value_histogram(&self) -> BTreeMap<u64, u64> {
        let mut hist = BTreeMap::new();
        if let Some(l0) = self.levels.first() {
            for cb in l0.values() {
                for v in cb.values() {
                    *hist.entry(v).or_insert(0) += 1;
                }
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(init: InitPolicy) -> MetadataState {
        MetadataState::new(CounterOrg::Morphable128, 1 << 30, init)
    }

    #[test]
    fn zero_init_counters_start_at_zero() {
        let mut m = state(InitPolicy::Zero);
        assert_eq!(m.data_counter(0), 0);
        assert_eq!(m.data_counter(99_999), 0);
        assert_eq!(m.max_observed(), 0);
    }

    #[test]
    fn randomized_init_is_deterministic_and_big() {
        let mut a = state(InitPolicy::Randomized { seed: 7 });
        let mut b = state(InitPolicy::Randomized { seed: 7 });
        let mut c = state(InitPolicy::Randomized { seed: 8 });
        let va = a.data_counter(1234);
        assert_eq!(va, b.data_counter(1234));
        assert!(va >= RANDOM_INIT_MEAN / 2, "counter {va} too small");
        // Different seeds diverge somewhere.
        let diverged = (0..1000u64).any(|i| a.data_counter(i * 128) != c.data_counter(i * 128));
        assert!(diverged);
    }

    #[test]
    fn randomized_init_mixes_ladder_and_stragglers() {
        let mut m = state(InitPolicy::Randomized { seed: 1 });
        let ladder: std::collections::HashSet<u64> = canonical_group_starts().into_iter().collect();
        let values: Vec<u64> = (0..256u64).map(|cb| m.data_counter(cb * 128)).collect();
        let on_ladder = values
            .iter()
            .filter(|v| ladder.iter().any(|s| **v >= *s && **v < s + 8))
            .count();
        // Roughly 7/8 conformed to the converged ladder, the rest scattered.
        assert!(on_ladder > 200, "only {on_ladder}/256 conformed");
        assert!(
            on_ladder < 250,
            "all {on_ladder}/256 conformed; stragglers missing"
        );
        let distinct: std::collections::HashSet<u64> = values.iter().copied().collect();
        assert!(
            distinct.len() > 16,
            "values must not all collapse to one ladder rung"
        );
    }

    #[test]
    fn write_updates_value_and_max_register() {
        let mut m = state(InitPolicy::Zero);
        m.write_data_counter(10, 42).unwrap();
        assert_eq!(m.data_counter(10), 42);
        assert_eq!(m.max_observed(), 42);
        m.write_data_counter(11, 7).unwrap();
        assert_eq!(m.max_observed(), 42, "register keeps the max");
    }

    #[test]
    fn relevel_counts_coverage_and_updates_register() {
        let mut m = MetadataState::new(CounterOrg::Sc64, 1 << 30, InitPolicy::Zero);
        m.write_data_counter(0, 127).unwrap();
        let err = m.write_data_counter(0, 128).unwrap_err();
        let cost = m.relevel(0, 0, err.min_relevel_target);
        assert_eq!(cost, 64);
        assert_eq!(m.data_counter(0), 128);
        assert_eq!(m.data_counter(63), 128);
        assert_eq!(m.max_observed(), 128);
    }

    #[test]
    fn node_counters_live_in_parents() {
        let mut m = state(InitPolicy::Zero);
        assert_eq!(m.node_counter(0, 5), 0);
        m.write_node_counter(0, 5, 3).unwrap();
        assert_eq!(m.node_counter(0, 5), 3);
        // The sibling L0 node 6 shares the same L1 parent but another slot.
        assert_eq!(m.node_counter(0, 6), 0);
    }

    #[test]
    fn top_level_nodes_are_protected_by_onchip_root() {
        let mut m = state(InitPolicy::Zero);
        let top = m.layout().depth() - 1;
        // Writing a top-level node's counter must succeed (root is level
        // depth(), held on-chip) and be readable back.
        m.write_node_counter(top, 0, 9).unwrap();
        assert_eq!(m.node_counter(top, 0), 9);
    }

    #[test]
    fn value_histogram_counts_blocks_per_value() {
        let mut m = MetadataState::new(CounterOrg::Sc64, 1 << 30, InitPolicy::Zero);
        m.write_data_counter(0, 5).unwrap(); // touches block 0 of cb 0
        let hist = m.value_histogram();
        assert_eq!(hist[&5], 1);
        assert_eq!(hist[&0], 63, "remaining slots of the touched cb are 0");
        assert_eq!(m.touched_blocks(0), 1);
    }

    #[test]
    fn randomized_tree_levels_materialize_consistently() {
        let mut m = state(InitPolicy::Randomized { seed: 3 });
        let v1 = m.node_counter(0, 77);
        let v2 = m.node_counter(0, 77);
        assert_eq!(v1, v2);
        assert!(v1 > 0);
    }
}
