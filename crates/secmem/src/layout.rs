//! Physical placement of secure-memory metadata.
//!
//! Data occupies the bottom of the physical address space; counter blocks
//! (level 0) and integrity-tree nodes (levels 1+) live in dedicated regions
//! above it. The layout provides the address arithmetic every other layer
//! needs: which counter block covers a data block, where a tree node lives,
//! and which parent slot protects a child.
//!
//! Data MACs and ECC are co-located with data in the same DRAM access
//! (Table I: "this enables data, its MAC, and ECC to be accessed together in
//! one DRAM access without any memory traffic overhead"), so MACs need no
//! addresses of their own.

use crate::counters::CounterOrg;

/// Bytes per memory block / cache line.
pub const BLOCK_BYTES: u64 = 64;

/// A request addressed state outside the configured layout — always a bug
/// in the caller (or injected corruption), never a recoverable condition of
/// the memory itself, so it must surface as an error rather than silently
/// aliasing to some in-range location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// A data-block index at or beyond the protected capacity.
    DataBlockOutOfRange {
        /// The offending data-block index.
        block: u64,
        /// Protected capacity in 64 B blocks.
        capacity: u64,
    },
    /// A metadata-node coordinate outside the tree.
    NodeOutOfRange {
        /// The in-memory level addressed.
        level: usize,
        /// The node index addressed.
        index: u64,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::DataBlockOutOfRange { block, capacity } => {
                write!(f, "data block {block} beyond capacity of {capacity} blocks")
            }
            LayoutError::NodeOutOfRange { level, index } => {
                write!(f, "no metadata node at level {level}, index {index}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Address-space layout for one counter organization.
///
/// # Examples
///
/// ```
/// use rmcc_secmem::counters::CounterOrg;
/// use rmcc_secmem::layout::MetadataLayout;
///
/// // 128 GB of protected data under Morphable counters (Table I).
/// let l = MetadataLayout::new(CounterOrg::Morphable128, 128 << 30);
/// assert_eq!(l.depth(), 4); // L0..L3 in memory, root on-chip
/// // 128 data blocks share one counter block.
/// assert_eq!(l.l0_index(0), l.l0_index(127));
/// assert_ne!(l.l0_index(0), l.l0_index(128));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataLayout {
    org: CounterOrg,
    data_bytes: u64,
    /// Number of nodes at each in-memory level (index 0 = counter blocks).
    level_counts: Vec<u64>,
    /// Base byte address of each in-memory level's region.
    level_bases: Vec<u64>,
}

impl MetadataLayout {
    /// Builds the layout for `data_bytes` of protected memory.
    ///
    /// Levels are added until a level's node count fits within one tree
    /// node's arity; that final set of counters is the on-chip root.
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is not a multiple of the block size.
    pub fn new(org: CounterOrg, data_bytes: u64) -> Self {
        assert_eq!(
            data_bytes % BLOCK_BYTES,
            0,
            "data size must be whole blocks"
        );
        let arity = org.tree_arity() as u64;
        let data_blocks = data_bytes / BLOCK_BYTES;
        let mut level_counts = Vec::new();
        let mut count = data_blocks.div_ceil(arity); // L0 counter blocks
        loop {
            level_counts.push(count);
            if count <= arity {
                break;
            }
            count = count.div_ceil(arity);
        }
        // Metadata regions start at 1 TB, comfortably above any data
        // address, each level in its own 128 GB-aligned window.
        let meta_base = 1u64 << 40;
        let window = 1u64 << 37;
        let level_bases = (0..level_counts.len() as u64)
            .map(|k| meta_base + k * window)
            .collect();
        MetadataLayout {
            org,
            data_bytes,
            level_counts,
            level_bases,
        }
    }

    /// The counter organization.
    pub fn org(&self) -> CounterOrg {
        self.org
    }

    /// Protected data capacity in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Number of in-memory metadata levels (level 0 = counter blocks). The
    /// root that protects level `depth() - 1` is on-chip and never touches
    /// memory.
    pub fn depth(&self) -> usize {
        self.level_counts.len()
    }

    /// Node count at in-memory `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= depth()`.
    #[allow(clippy::indexing_slicing)] // documented panic contract
    pub fn level_count(&self, level: usize) -> u64 {
        // audit:allow(R1, reason = "level bounds are this accessor's documented panic contract")
        self.level_counts[level]
    }

    /// The level-0 counter-block index covering `data_block` (a 64 B block
    /// index, i.e. byte address / 64).
    pub fn l0_index(&self, data_block: u64) -> u64 {
        data_block / self.org.coverage() as u64
    }

    /// The slot within its counter block that holds `data_block`'s counter.
    #[allow(clippy::cast_possible_truncation)] // remainder < coverage (≤ 128)
    pub fn l0_slot(&self, data_block: u64) -> usize {
        (data_block % self.org.coverage() as u64) as usize
    }

    /// Byte address of the metadata block `index` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= depth()` or `index` is out of range.
    // audit:allow(R1, scope = fn, reason = "level/index bounds are this accessor's documented panic contract")
    #[allow(clippy::indexing_slicing)] // documented panic contract
    pub fn node_addr(&self, level: usize, index: u64) -> u64 {
        assert!(index < self.level_counts[level], "node index out of range");
        self.level_bases[level] + index * BLOCK_BYTES
    }

    /// The parent node index at `level + 1` protecting node `index` at
    /// `level`. Returns `None` when the parent is the on-chip root.
    pub fn parent_index(&self, level: usize, index: u64) -> Option<u64> {
        if level + 1 >= self.depth() {
            None
        } else {
            Some(index / self.org.tree_arity() as u64)
        }
    }

    /// The *storage* coordinates `(level, index)` of the counter block
    /// protecting node `index` at `level` — for the top in-memory level that
    /// is the on-chip root block, stored at `(depth(), 0)`.
    ///
    /// Unlike [`MetadataLayout::parent_index`], this validates the child
    /// coordinate: an out-of-layout node has no parent, and asking for one
    /// is a layout bug that surfaces as [`LayoutError::NodeOutOfRange`]
    /// instead of silently aliasing to index 0.
    ///
    /// # Errors
    ///
    /// [`LayoutError::NodeOutOfRange`] when `(level, index)` is not a node
    /// of this layout.
    pub fn parent_loc(&self, level: usize, index: u64) -> Result<(usize, u64), LayoutError> {
        match self.level_counts.get(level) {
            Some(&count) if index < count => {}
            _ => return Err(LayoutError::NodeOutOfRange { level, index }),
        }
        Ok(match self.parent_index(level, index) {
            Some(p) => (level + 1, p),
            None => (self.depth(), 0),
        })
    }

    /// Protected capacity in 64 B data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.data_bytes / BLOCK_BYTES
    }

    /// Validates that `data_block` lies within the protected capacity.
    ///
    /// # Errors
    ///
    /// [`LayoutError::DataBlockOutOfRange`] when it does not.
    pub fn check_data_block(&self, data_block: u64) -> Result<(), LayoutError> {
        if data_block < self.data_blocks() {
            Ok(())
        } else {
            Err(LayoutError::DataBlockOutOfRange {
                block: data_block,
                capacity: self.data_blocks(),
            })
        }
    }

    /// The slot within the parent (on-chip root included) that holds the
    /// counter of node `index` at `level`.
    #[allow(clippy::cast_possible_truncation)] // remainder < arity (≤ 128)
    pub fn parent_slot(&self, index: u64) -> usize {
        (index % self.org.tree_arity() as u64) as usize
    }

    /// Whether `addr` falls in any metadata region.
    pub fn is_metadata_addr(&self, addr: u64) -> bool {
        self.level_bases.first().is_some_and(|&base| addr >= base)
    }

    /// Maps a metadata byte address back to its `(level, index)` — the
    /// inverse of [`MetadataLayout::node_addr`]. Returns `None` for
    /// non-metadata addresses.
    pub fn locate(&self, addr: u64) -> Option<(usize, u64)> {
        if !self.is_metadata_addr(addr) {
            return None;
        }
        let levels = self.level_bases.iter().zip(self.level_counts.iter());
        for (level, (&base, &count)) in levels.enumerate().rev() {
            if addr >= base {
                let index = (addr - base) / BLOCK_BYTES;
                if index < count {
                    return Some((level, index));
                }
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_morphable_is_four_levels() {
        let l = MetadataLayout::new(CounterOrg::Morphable128, 128 << 30);
        // 2^31 data blocks / 128 = 2^24 L0, 2^17 L1, 2^10 L2, 8 L3.
        assert_eq!(l.depth(), 4);
        assert_eq!(l.level_count(0), 1 << 24);
        assert_eq!(l.level_count(1), 1 << 17);
        assert_eq!(l.level_count(2), 1 << 10);
        assert_eq!(l.level_count(3), 8);
    }

    #[test]
    fn sgx_mono_tree_is_much_deeper() {
        let mono = MetadataLayout::new(CounterOrg::Mono8, 128 << 30);
        let morph = MetadataLayout::new(CounterOrg::Morphable128, 128 << 30);
        assert!(mono.depth() > 2 * morph.depth());
    }

    #[test]
    fn coverage_partitions_data_blocks() {
        let l = MetadataLayout::new(CounterOrg::Sc64, 1 << 30);
        assert_eq!(l.l0_index(0), 0);
        assert_eq!(l.l0_index(63), 0);
        assert_eq!(l.l0_index(64), 1);
        assert_eq!(l.l0_slot(0), 0);
        assert_eq!(l.l0_slot(63), 63);
        assert_eq!(l.l0_slot(64), 0);
    }

    #[test]
    fn metadata_addresses_are_disjoint_from_data_and_each_other() {
        let l = MetadataLayout::new(CounterOrg::Morphable128, 128 << 30);
        let a0 = l.node_addr(0, 0);
        let a0_last = l.node_addr(0, l.level_count(0) - 1);
        let a1 = l.node_addr(1, 0);
        assert!(a0 > 128 << 30, "metadata must sit above data");
        assert!(a0_last < a1, "levels must not overlap");
        assert!(l.is_metadata_addr(a0));
        assert!(!l.is_metadata_addr(0xdead));
    }

    #[test]
    fn parent_chain_reaches_root() {
        let l = MetadataLayout::new(CounterOrg::Morphable128, 128 << 30);
        let mut level = 0;
        let mut idx = l.level_count(0) - 1;
        let mut hops = 0;
        while let Some(p) = l.parent_index(level, idx) {
            assert!(p < l.level_count(level + 1));
            idx = p;
            level += 1;
            hops += 1;
        }
        assert_eq!(hops, l.depth() - 1);
        assert!(l.parent_slot(idx) < l.org().tree_arity());
    }

    #[test]
    fn parent_loc_matches_parent_index_and_maps_root() {
        let l = MetadataLayout::new(CounterOrg::Morphable128, 128 << 30);
        // Interior node: same answer as parent_index, one level up.
        assert_eq!(
            l.parent_loc(0, 129),
            Ok((1, l.parent_index(0, 129).unwrap()))
        );
        // Top in-memory level: parent is the on-chip root block.
        assert_eq!(l.parent_loc(l.depth() - 1, 3), Ok((l.depth(), 0)));
        // Out-of-layout coordinates are an error, not an alias to index 0.
        assert_eq!(
            l.parent_loc(0, l.level_count(0)),
            Err(LayoutError::NodeOutOfRange {
                level: 0,
                index: l.level_count(0)
            })
        );
        assert_eq!(
            l.parent_loc(l.depth(), 0),
            Err(LayoutError::NodeOutOfRange {
                level: l.depth(),
                index: 0
            })
        );
    }

    #[test]
    fn data_block_bounds_are_validated() {
        let l = MetadataLayout::new(CounterOrg::Sc64, 1 << 20);
        assert_eq!(l.data_blocks(), (1 << 20) / BLOCK_BYTES);
        assert_eq!(l.check_data_block(0), Ok(()));
        assert_eq!(l.check_data_block(l.data_blocks() - 1), Ok(()));
        assert_eq!(
            l.check_data_block(l.data_blocks()),
            Err(LayoutError::DataBlockOutOfRange {
                block: l.data_blocks(),
                capacity: l.data_blocks(),
            })
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_addr_bounds_checked() {
        let l = MetadataLayout::new(CounterOrg::Sc64, 1 << 20);
        let _ = l.node_addr(0, l.level_count(0));
    }
}
