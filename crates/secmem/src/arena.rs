//! Flat, page-granular storage arenas for metadata and data images.
//!
//! The engine and the counter tree address their state with dense integer
//! indices computed by layout arithmetic ([`crate::layout`]), so hash maps
//! add hashing and probe work to every access for no benefit. A
//! [`PagedArena`] instead resolves an index with two shifts and two
//! pointer hops: a page directory (`Vec` of optional page boxes) over
//! fixed-size pages of optional slots. Pages materialize on first touch —
//! sparse workloads over huge layouts stay cheap — and once a page exists,
//! reads, writes, and overwrites of its slots perform **zero heap
//! allocations**, which is what makes the engine's steady-state access
//! loop allocation-free (DESIGN.md §10).
//!
//! Every accessor is total: out-of-page lookups return `None`, and the
//! mutable slot accessor is structured so no index can panic. The arena
//! therefore needs no audit waivers despite living on the trusted path.

/// log2 of the page size (1024 slots per page).
const PAGE_BITS: u32 = 10;

/// Slots per page.
const PAGE_SLOTS: usize = 1 << PAGE_BITS;

/// Mask selecting the in-page slot bits of an index.
const SLOT_MASK: u64 = (1u64 << PAGE_BITS) - 1;

/// Splits an index into (page number, in-page slot). The slot is masked to
/// `PAGE_BITS` bits, so it always addresses inside a page.
#[inline]
fn split(index: u64) -> (usize, usize) {
    let page = usize::try_from(index >> PAGE_BITS).unwrap_or(usize::MAX);
    let slot = usize::try_from(index & SLOT_MASK).unwrap_or(0);
    (page, slot)
}

/// A sparse array of `T` addressed by `u64` indices, organized as lazily
/// allocated fixed-size pages.
///
/// # Examples
///
/// ```
/// use rmcc_secmem::arena::PagedArena;
///
/// let mut arena: PagedArena<u32> = PagedArena::new();
/// assert_eq!(arena.get(7), None);
/// arena.insert(7, 42);
/// assert_eq!(arena.get(7), Some(&42));
/// assert_eq!(arena.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PagedArena<T> {
    /// Page directory: `pages[p]` holds slots `p * 1024 ..`.
    pages: Vec<Option<Box<[Option<T>]>>>,
    /// Number of occupied slots.
    occupied: usize,
    /// Fallback target for the structurally unreachable arms of
    /// [`PagedArena::slot_mut`]; never read on any reachable path. It
    /// exists so the accessor is total without a panic (and therefore
    /// without an audit waiver).
    spare: Option<T>,
}

impl<T> Default for PagedArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PagedArena<T> {
    /// An empty arena. Allocates nothing until the first insertion.
    pub fn new() -> Self {
        PagedArena {
            pages: Vec::new(),
            occupied: 0,
            spare: None,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The value at `index`, if occupied.
    #[inline]
    pub fn get(&self, index: u64) -> Option<&T> {
        let (page, slot) = split(index);
        self.pages.get(page)?.as_ref()?.get(slot)?.as_ref()
    }

    /// Mutable access to the value at `index`, if occupied.
    #[inline]
    pub fn get_mut(&mut self, index: u64) -> Option<&mut T> {
        let (page, slot) = split(index);
        self.pages.get_mut(page)?.as_mut()?.get_mut(slot)?.as_mut()
    }

    /// The slot holding `index`, materializing its page on first touch.
    /// Once the page exists, this performs no heap allocation.
    fn slot_mut(&mut self, index: u64) -> &mut Option<T> {
        let (page, slot) = split(index);
        if self.pages.len() <= page {
            self.pages.resize_with(page + 1, || None);
        }
        let Some(dir) = self.pages.get_mut(page) else {
            // Unreachable: the directory was just grown past `page`.
            return &mut self.spare;
        };
        let boxed = dir.get_or_insert_with(|| {
            let mut fresh = Vec::new();
            fresh.resize_with(PAGE_SLOTS, || None);
            fresh.into_boxed_slice()
        });
        match boxed.get_mut(slot) {
            Some(s) => s,
            // Unreachable: `slot` is masked below the page size.
            None => &mut self.spare,
        }
    }

    /// Stores `value` at `index`, returning the previous occupant.
    pub fn insert(&mut self, index: u64, value: T) -> Option<T> {
        let prev = self.slot_mut(index).replace(value);
        if prev.is_none() {
            self.occupied += 1;
        }
        prev
    }

    /// Removes and returns the value at `index`.
    pub fn remove(&mut self, index: u64) -> Option<T> {
        let (page, slot) = split(index);
        let removed = self.pages.get_mut(page)?.as_mut()?.get_mut(slot)?.take();
        if removed.is_some() {
            self.occupied = self.occupied.saturating_sub(1);
        }
        removed
    }

    /// The value at `index`, inserting `default()` first when the slot is
    /// vacant.
    pub fn get_or_insert_with(&mut self, index: u64, default: impl FnOnce() -> T) -> &mut T {
        if self.get(index).is_none() {
            self.occupied += 1;
        }
        self.slot_mut(index).get_or_insert_with(default)
    }

    /// Iterates over the occupied values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.pages
            .iter()
            .flatten()
            .flat_map(|page| page.iter().flatten())
    }

    /// Iterates over `(index, value)` pairs of the occupied slots in index
    /// order — the walk a rebuild pass uses to visit every stored entry at
    /// its addressable location.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &T)> {
        self.pages.iter().enumerate().flat_map(|(p, page)| {
            page.iter().flat_map(move |slots| {
                slots.iter().enumerate().filter_map(move |(s, slot)| {
                    slot.as_ref()
                        .map(|v| (((p as u64) << PAGE_BITS) | s as u64, v))
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_arena_reads_none() {
        let arena: PagedArena<u8> = PagedArena::new();
        assert_eq!(arena.get(0), None);
        assert_eq!(arena.get(SLOT_MASK), None);
        assert!(arena.is_empty());
    }

    #[test]
    fn insert_read_overwrite_remove() {
        let mut arena = PagedArena::new();
        assert_eq!(arena.insert(5, "a"), None);
        assert_eq!(arena.insert(5, "b"), Some("a"));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(5), Some(&"b"));
        assert_eq!(arena.remove(5), Some("b"));
        assert_eq!(arena.remove(5), None);
        assert!(arena.is_empty());
    }

    #[test]
    fn sparse_indices_use_separate_pages() {
        let mut arena = PagedArena::new();
        arena.insert(0, 1u32);
        arena.insert(1 << 20, 2);
        arena.insert((1 << 20) + 1, 3);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.get(0), Some(&1));
        assert_eq!(arena.get(1 << 20), Some(&2));
        assert_eq!(arena.get((1 << 20) - 1), None);
        let all: Vec<u32> = arena.values().copied().collect();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn entries_yield_index_value_pairs_in_order() {
        let mut arena = PagedArena::new();
        arena.insert(3, 30u32);
        arena.insert((1 << 20) + 5, 50);
        arena.insert(1 << 20, 40);
        let all: Vec<(u64, u32)> = arena.entries().map(|(i, v)| (i, *v)).collect();
        assert_eq!(all, vec![(3, 30), (1 << 20, 40), ((1 << 20) + 5, 50)]);
        let empty: PagedArena<u32> = PagedArena::new();
        assert_eq!(empty.entries().count(), 0);
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut arena = PagedArena::new();
        *arena.get_or_insert_with(9, || 10u64) += 1;
        *arena.get_or_insert_with(9, || 99) += 1;
        assert_eq!(arena.get(9), Some(&12));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut arena = PagedArena::new();
        arena.insert(3, vec![1u8]);
        if let Some(v) = arena.get_mut(3) {
            v.push(2);
        }
        assert_eq!(arena.get(3), Some(&vec![1u8, 2]));
    }
}
