//! Stateful property test: the functional secure memory behaves like a
//! plain key-value store under arbitrary interleavings of writes and reads,
//! while every injected corruption is detected.

use proptest::prelude::*;
use rmcc_secmem::counters::CounterOrg;
use rmcc_secmem::engine::{PipelineKind, ReadError, SecureMemory};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u8),
    Read(u64),
    Tamper(u64, usize, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..256, any::<u8>()).prop_map(|(b, v)| Op::Write(b, v)),
        (0u64..256).prop_map(Op::Read),
        (0u64..256, 0usize..64, 1u8..=255).prop_map(|(b, o, m)| Op::Tamper(b, o, m)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn secure_memory_is_a_tamper_evident_store(
        ops in prop::collection::vec(op_strategy(), 1..120),
        org_sel in 0usize..3,
    ) {
        let org = [CounterOrg::Mono8, CounterOrg::Sc64, CounterOrg::Morphable128][org_sel];
        let mut mem = SecureMemory::new(org, 1 << 22, PipelineKind::Rmcc, 7);
        let mut model: HashMap<u64, [u8; 64]> = HashMap::new();
        // Exact attacker model: the cumulative XOR delta applied to each
        // block's ciphertext. A block verifies iff its delta is zero
        // (tampers at the same offset cancel; different offsets do not).
        let mut deltas: HashMap<u64, [u8; 64]> = HashMap::new();
        for op in ops {
            match op {
                Op::Write(b, v) => {
                    let data = [v; 64];
                    mem.write(b, data).unwrap();
                    model.insert(b, data);
                    deltas.insert(b, [0u8; 64]);
                }
                Op::Read(b) => {
                    let clean = deltas.get(&b).map(|d| d.iter().all(|&x| x == 0)).unwrap_or(true);
                    match (model.get(&b), clean) {
                        (None, _) => {
                            prop_assert_eq!(mem.read(b), Err(ReadError::Unwritten { block: b }));
                        }
                        (Some(expect), true) => {
                            prop_assert_eq!(mem.read(b).unwrap(), *expect);
                        }
                        (Some(_), false) => {
                            prop_assert!(mem.read(b).is_err(), "tampered block {} verified", b);
                        }
                    }
                }
                Op::Tamper(b, off, mask) => {
                    if model.contains_key(&b) {
                        mem.tamper_data(b, off, mask).unwrap();
                        deltas.entry(b).or_insert([0u8; 64])[off] ^= mask;
                    }
                }
            }
        }
    }
}
