//! Steady-state allocation regression for the secure-memory hot path.
//!
//! Once a working set is materialized — arenas populated, scratch buffers
//! grown to their high-water marks — reads, writes, and the relevels they
//! trigger must run entirely out of preallocated storage. A counting
//! allocator wrapper makes any per-access heap traffic a hard test failure
//! rather than a silent throughput regression.
//!
//! This file deliberately holds a single `#[test]`: the counter is global,
//! so a second concurrently-running test would pollute the measurement.

// Test harness: unwrap-on-failure is the desired failure mode here.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::cast_possible_truncation
)]
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rmcc_secmem::counters::CounterOrg;
use rmcc_secmem::engine::{PipelineKind, SecureMemory};

/// Counts every allocation and reallocation; frees are not interesting
/// here (a steady-state free implies a matching steady-state alloc).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The throughput harness's access mix: random reads and writes over a
/// fixed working set, including the counter overflows and relevels that
/// mix provokes.
fn drive(mem: &mut SecureMemory, blocks: u64, iters: u64, rng: &mut u64) -> u64 {
    let mut chk = 0u64;
    for i in 0..iters {
        let r = splitmix(rng);
        let block = r % blocks;
        if r & 1 == 0 {
            let mut pt = [0u8; 64];
            pt[..8].copy_from_slice(&r.to_be_bytes());
            pt[56..].copy_from_slice(&i.to_be_bytes());
            mem.write(block, pt).unwrap();
        } else {
            chk ^= u64::from(mem.read(block).unwrap()[0]);
        }
    }
    chk
}

#[test]
fn steady_state_accesses_do_not_allocate() {
    let mut mem = SecureMemory::new(CounterOrg::Morphable128, 1 << 22, PipelineKind::Rmcc, 7);
    let blocks = 512u64;
    let mut rng = 0x1234_5678u64;

    // Materialize every block, then run the mixed workload as long as the
    // measured window below so scratch buffers and relevel paths reach
    // their steady-state capacities before counting starts.
    for b in 0..blocks {
        mem.write(b, [b as u8; 64]).unwrap();
    }
    drive(&mut mem, blocks, 20_000, &mut rng);
    let relevels_before = mem.overflow_reencryptions();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let chk = drive(&mut mem, blocks, 20_000, &mut rng);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    std::hint::black_box(chk);

    // The measured window must itself have exercised the relevel path,
    // otherwise the zero-allocation claim would not cover it.
    assert!(
        mem.overflow_reencryptions() > relevels_before,
        "measured window triggered no relevels; workload too small"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state reads/writes touched the heap"
    );
}
