//! A three-level data-cache hierarchy that filters a core's access stream
//! down to the memory-side traffic (LLC misses and dirty writebacks) that the
//! secure-memory machinery actually sees.
//!
//! The paper's two methodologies both start from this filter: the Pin-based
//! lifetime studies model "1MB L2 cache, 2MB LLC and 32KB counter cache per
//! core" (§V) and the gem5 runs use 32/64 KB L1, 1 MB L2, 8 MB L3 (Table I).

use crate::set_assoc::{CacheStats, SetAssocCache};

/// Cache levels in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// First-level data cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::L1 => write!(f, "L1"),
            Level::L2 => write!(f, "L2"),
            Level::L3 => write!(f, "L3"),
        }
    }
}

/// Geometry for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Associativity.
    pub ways: usize,
}

/// Geometry for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: LevelConfig,
    /// L2 geometry.
    pub l2: LevelConfig,
    /// LLC geometry.
    pub l3: LevelConfig,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: usize,
}

impl HierarchyConfig {
    /// Table I configuration (per-core slice): 64 KB 8-way L1D, 1 MB 8-way
    /// L2, 8 MB 16-way L3, 64 B lines.
    pub fn gem5_table1() -> Self {
        HierarchyConfig {
            l1: LevelConfig {
                bytes: 64 << 10,
                ways: 8,
            },
            l2: LevelConfig {
                bytes: 1 << 20,
                ways: 8,
            },
            l3: LevelConfig {
                bytes: 8 << 20,
                ways: 16,
            },
            line_bytes: 64,
        }
    }

    /// §V lifetime (Pin) configuration per thread: 32 KB L1, 1 MB L2, 2 MB
    /// LLC.
    pub fn pintool_lifetime() -> Self {
        HierarchyConfig {
            l1: LevelConfig {
                bytes: 32 << 10,
                ways: 8,
            },
            l2: LevelConfig {
                bytes: 1 << 20,
                ways: 8,
            },
            l3: LevelConfig {
                bytes: 2 << 20,
                ways: 16,
            },
            line_bytes: 64,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::gem5_table1()
    }
}

/// What one access did at the memory boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierarchyOutcome {
    /// The highest level that hit, or `None` if the access went to memory.
    pub hit_level: Option<Level>,
    /// Dirty LLC victims that must be written back to memory. Usually empty
    /// or a single line; cascaded victims can briefly produce more.
    pub writebacks: Vec<u64>,
}

impl HierarchyOutcome {
    /// `true` when the access missed every level and needs a DRAM read.
    pub fn is_llc_miss(&self) -> bool {
        self.hit_level.is_none()
    }
}

/// The three-level hierarchy filter.
///
/// Lines are filled into every level on the way up (mostly-inclusive), and
/// dirty victims trickle down level by level; only dirty LLC evictions reach
/// memory — the standard trace-filter approximation used by Pin-style cache
/// models.
///
/// # Examples
///
/// ```
/// use rmcc_cache::hierarchy::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::pintool_lifetime());
/// let out = h.access_bytes(0x4000, false);
/// assert!(out.is_llc_miss()); // cold
/// assert!(!h.access_bytes(0x4000, false).is_llc_miss());
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    line_shift: u32,
}

impl Hierarchy {
    /// Builds the hierarchy from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any level's set count is not a power of two.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            l1: SetAssocCache::with_capacity(config.l1.bytes, config.line_bytes, config.l1.ways),
            l2: SetAssocCache::with_capacity(config.l2.bytes, config.line_bytes, config.l2.ways),
            l3: SetAssocCache::with_capacity(config.l3.bytes, config.line_bytes, config.l3.ways),
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    /// Accesses a *byte* address, extracting the line address internally.
    pub fn access_bytes(&mut self, byte_addr: u64, is_write: bool) -> HierarchyOutcome {
        self.access(byte_addr >> self.line_shift, is_write)
    }

    /// Accesses a *line* address.
    pub fn access(&mut self, line_addr: u64, is_write: bool) -> HierarchyOutcome {
        let mut out = HierarchyOutcome::default();

        if self.l1.lookup(line_addr, is_write) {
            out.hit_level = Some(Level::L1);
            return out;
        }
        if self.l2.lookup(line_addr, false) {
            out.hit_level = Some(Level::L2);
        } else if self.l3.lookup(line_addr, false) {
            out.hit_level = Some(Level::L3);
        } else {
            // Full miss: fetch from memory and install in the LLC.
            if let Some(v) = self.l3.fill(line_addr, false) {
                if v.dirty {
                    out.writebacks.push(v.addr);
                }
            }
        }

        // Fill into L2 unless it already hit there.
        if out.hit_level != Some(Level::L2) {
            if let Some(v) = self.l2.fill(line_addr, false) {
                if v.dirty {
                    self.spill_into_l3(v.addr, &mut out.writebacks);
                }
            }
        }
        // Fill into L1, carrying the write's dirty bit.
        if let Some(v) = self.l1.fill(line_addr, is_write) {
            if v.dirty {
                self.spill_into_l2(v.addr, &mut out.writebacks);
            }
        }
        out
    }

    /// Installs a dirty L1 victim into L2, cascading further victims.
    fn spill_into_l2(&mut self, addr: u64, writebacks: &mut Vec<u64>) {
        if let Some(v) = self.l2.fill(addr, true) {
            if v.dirty {
                self.spill_into_l3(v.addr, writebacks);
            }
        }
    }

    /// Installs a dirty L2 victim into the LLC, emitting a memory writeback
    /// if the LLC in turn evicts a dirty line.
    fn spill_into_l3(&mut self, addr: u64, writebacks: &mut Vec<u64>) {
        if let Some(v) = self.l3.fill(addr, true) {
            if v.dirty {
                writebacks.push(v.addr);
            }
        }
    }

    /// Per-level statistics `(l1, l2, l3)`.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.l3.stats())
    }

    /// LLC statistics alone — the denominator of most figures in the paper.
    pub fn llc_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Resets statistics at every level, preserving contents (end of
    /// warm-up).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // 4-line L1, 16-line L2, 64-line L3 for fast eviction testing.
        Hierarchy::new(HierarchyConfig {
            l1: LevelConfig {
                bytes: 4 * 64,
                ways: 2,
            },
            l2: LevelConfig {
                bytes: 16 * 64,
                ways: 4,
            },
            l3: LevelConfig {
                bytes: 64 * 64,
                ways: 8,
            },
            line_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut h = tiny();
        assert!(h.access(100, false).is_llc_miss());
        assert_eq!(h.access(100, false).hit_level, Some(Level::L1));
    }

    #[test]
    fn l1_capacity_spill_hits_l2() {
        let mut h = tiny();
        // Fill far more than L1 can hold, all clean.
        for a in 0..8u64 {
            h.access(a, false);
        }
        // The earliest lines left L1 but should still be in L2.
        let out = h.access(0, false);
        assert!(matches!(out.hit_level, Some(Level::L2) | Some(Level::L3)));
    }

    #[test]
    fn dirty_line_eventually_writes_back_to_memory() {
        let mut h = tiny();
        h.access(0, true); // dirty
                           // Push enough conflicting lines through to evict line 0 from every
                           // level (same-set strides guarantee conflicts).
        let mut wrote_back = false;
        for a in 1..4096u64 {
            let out = h.access(a, false);
            if out.writebacks.contains(&0) {
                wrote_back = true;
                break;
            }
        }
        assert!(wrote_back, "dirty line 0 never reached memory");
    }

    #[test]
    fn clean_evictions_produce_no_writebacks() {
        let mut h = tiny();
        let mut total_wb = 0;
        for a in 0..4096u64 {
            total_wb += h.access(a, false).writebacks.len();
        }
        assert_eq!(total_wb, 0);
    }

    #[test]
    fn byte_addressing_shares_lines() {
        let mut h = Hierarchy::new(HierarchyConfig::pintool_lifetime());
        h.access_bytes(0x1000, false);
        assert_eq!(h.access_bytes(0x1030, false).hit_level, Some(Level::L1));
        assert!(h.access_bytes(0x1040, false).is_llc_miss());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut h = tiny();
        for a in 0..32u64 {
            h.access(a, false);
        }
        let (l1, _l2, l3) = h.stats();
        assert_eq!(l1.accesses, 32);
        assert_eq!(l3.misses, 32);
        h.reset_stats();
        assert_eq!(h.llc_stats().accesses, 0);
    }

    #[test]
    fn repeated_writes_stay_in_l1() {
        let mut h = tiny();
        h.access(7, true);
        for _ in 0..100 {
            let out = h.access(7, true);
            assert_eq!(out.hit_level, Some(Level::L1));
            assert!(out.writebacks.is_empty());
        }
    }

    #[test]
    fn table1_and_lifetime_configs_construct() {
        let _ = Hierarchy::new(HierarchyConfig::gem5_table1());
        let _ = Hierarchy::new(HierarchyConfig::pintool_lifetime());
        assert_eq!(HierarchyConfig::default(), HierarchyConfig::gem5_table1());
    }
}
