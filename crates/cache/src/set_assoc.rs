//! A tag-only set-associative cache model.
//!
//! Every cache in the reproduction — L1/L2/LLC, the memory controller's
//! counter cache, and the TLB — is an instance of [`SetAssocCache`]. The
//! model tracks tags, dirty bits, and LRU state but not data contents;
//! functional data lives in the simulator's backing store, which mirrors how
//! trace-driven cache models (the paper's Pin-based "lifetime" methodology)
//! work.

/// Why an access missed or what it displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The line (block) address that was evicted.
    pub addr: u64,
    /// Whether the victim was dirty and must be written back.
    pub dirty: bool,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// The victim displaced by the fill, if the set was full.
        evicted: Option<Eviction>,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Running counters for a cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty victims produced by fills.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the last touch, for LRU.
    last_use: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    last_use: 0,
};

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// Addresses given to [`SetAssocCache::access`] are *line* addresses (the
/// byte address divided by the line size); the cache itself is agnostic to
/// what a line holds, so the same type models data caches, counter caches,
/// and TLBs (where a "line" is a page number).
///
/// # Examples
///
/// ```
/// use rmcc_cache::set_assoc::SetAssocCache;
///
/// // 32 KiB counter cache, 64 B lines, 8-way (the paper's Pin config).
/// let mut cc = SetAssocCache::new(32 * 1024 / 64, 8);
/// assert!(!cc.access(0x10, false).is_hit()); // cold miss
/// assert!(cc.access(0x10, false).is_hit()); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates a cache holding `total_lines` lines at associativity `ways`.
    ///
    /// The number of sets (`total_lines / ways`) must be a power of two, as
    /// in real indexed caches.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, `total_lines` is not a multiple of `ways`,
    /// or the set count is not a power of two.
    pub fn new(total_lines: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be non-zero");
        assert!(
            total_lines.is_multiple_of(ways),
            "total lines {total_lines} not divisible by ways {ways}"
        );
        let n_sets = total_lines / ways;
        assert!(
            n_sets.is_power_of_two(),
            "set count {n_sets} must be a power of two"
        );
        SetAssocCache {
            sets: vec![vec![INVALID; ways]; n_sets],
            ways,
            set_mask: (n_sets - 1) as u64,
            set_shift: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Builds a cache from a capacity in bytes and a line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SetAssocCache::new`].
    pub fn with_capacity(bytes: usize, line_bytes: usize, ways: usize) -> Self {
        Self::new(bytes / line_bytes, ways)
    }

    /// Number of ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics without disturbing cache contents (used at the
    /// end of warm-up windows).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    /// Looks up `addr` without changing any state (no LRU update, no fill,
    /// no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let set = &self.sets[self.set_index(addr)];
        set.iter().any(|l| l.valid && l.tag == addr)
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate) and the
    /// LRU victim, if any, is reported. `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == addr) {
            line.last_use = clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats.misses += 1;
        // Prefer an invalid way; otherwise evict the LRU line.
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set has at least one way")
        });
        let victim = set[victim_idx];
        let evicted = if victim.valid {
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(Eviction {
                addr: victim.tag,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set[victim_idx] = Line {
            tag: addr,
            valid: true,
            dirty: is_write,
            last_use: clock,
        };
        AccessOutcome::Miss { evicted }
    }

    /// Looks up `addr`, updating LRU/dirty state and statistics, but does
    /// **not** fill on a miss. Returns `true` on a hit.
    ///
    /// Multi-level hierarchies use `lookup` + [`SetAssocCache::fill`] so that
    /// victims can be propagated between levels explicitly.
    pub fn lookup(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == addr) {
            line.last_use = clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Invalidates `addr` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        for line in set.iter_mut() {
            if line.valid && line.tag == addr {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Inserts `addr` without counting a normal access (used to model fills
    /// from lower levels or prefetches). Returns the victim, if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Eviction> {
        self.clock += 1;
        let clock = self.clock;
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == addr) {
            line.last_use = clock;
            line.dirty |= dirty;
            return None;
        }
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set has at least one way")
        });
        let victim = set[victim_idx];
        let evicted = if victim.valid {
            Some(Eviction {
                addr: victim.tag,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set[victim_idx] = Line {
            tag: addr,
            valid: true,
            dirty,
            last_use: clock,
        };
        evicted
    }

    /// Iterates over all resident line addresses (diagnostics only).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.valid)
            .map(|l| l.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(64, 4);
        assert!(!c.access(1, false).is_hit());
        assert!(c.access(1, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 1 set, 2 ways: addresses map to the same set when n_sets == 1.
        let mut c = SetAssocCache::new(2, 2);
        c.access(10, false);
        c.access(20, false);
        c.access(10, false); // refresh 10; 20 is now LRU
        let out = c.access(30, false);
        match out {
            AccessOutcome::Miss { evicted: Some(e) } => assert_eq!(e.addr, 20),
            other => panic!("expected eviction of 20, got {other:?}"),
        }
        assert!(c.probe(10));
        assert!(!c.probe(20));
        assert!(c.probe(30));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, true); // dirty
        let out = c.access(2, false);
        match out {
            AccessOutcome::Miss { evicted: Some(e) } => {
                assert!(e.dirty);
                assert_eq!(e.addr, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, false);
        c.access(1, true); // hit + dirty
        let out = c.access(2, false);
        assert!(matches!(out, AccessOutcome::Miss { evicted: Some(e) } if e.dirty));
    }

    #[test]
    fn addresses_map_to_distinct_sets() {
        let mut c = SetAssocCache::new(8, 1); // 8 sets, direct-mapped
        for a in 0..8u64 {
            c.access(a, false);
        }
        for a in 0..8u64 {
            assert!(c.probe(a), "address {a} should be resident");
        }
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = SetAssocCache::new(8, 1);
        c.access(0, false);
        c.access(8, false); // same set (8 sets, stride 8)
        assert!(!c.probe(0));
        assert!(c.probe(8));
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = SetAssocCache::new(4, 4);
        c.access(5, true);
        assert_eq!(c.invalidate(5), Some(true));
        assert_eq!(c.invalidate(5), None);
        assert!(!c.probe(5));
    }

    #[test]
    fn fill_does_not_count_access() {
        let mut c = SetAssocCache::new(4, 4);
        c.fill(9, false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.probe(9));
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(1, false);
        c.access(2, false);
        // Probing 1 must not refresh its LRU position.
        assert!(c.probe(1));
        c.access(3, false); // evicts LRU = 1
        assert!(!c.probe(1));
    }

    #[test]
    fn stats_rates() {
        let mut c = SetAssocCache::new(4, 4);
        c.access(1, false);
        c.access(1, false);
        c.access(2, false);
        let s = c.stats();
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = SetAssocCache::new(4, 4);
        c.access(1, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.probe(1));
    }

    #[test]
    fn capacity_constructor() {
        let c = SetAssocCache::with_capacity(128 * 1024, 64, 32);
        assert_eq!(c.capacity_lines(), 2048);
        assert_eq!(c.ways(), 32);
        assert_eq!(c.n_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = SetAssocCache::new(12, 2); // 6 sets
    }

    #[test]
    fn resident_lines_enumerates() {
        let mut c = SetAssocCache::new(4, 2);
        c.access(1, false);
        c.access(2, false);
        let mut lines: Vec<u64> = c.resident_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 2]);
    }
}
