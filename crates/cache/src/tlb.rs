//! TLB model used to reproduce Figure 4 (TLB misses per LLC miss under 4 KB
//! and 2 MB pages).
//!
//! The paper's key observation (§III) is that counter blocks have coverage
//! comparable to a 4 KB page-table entry, so workloads with high TLB miss
//! rates also have high counter-cache miss rates. This TLB is deliberately
//! simple — fully parameterized by entry count and page size — because only
//! the *correlation* matters for the reproduction.

use crate::set_assoc::SetAssocCache;

/// Page sizes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// Normal 4 KB pages.
    Small4K,
    /// 2 MB huge pages ("each 2MB PTE covers tens of thousands of memory
    /// blocks", §III).
    Huge2M,
}

impl PageSize {
    /// The page size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4 << 10,
            PageSize::Huge2M => 2 << 20,
        }
    }

    /// log2 of the page size.
    pub fn shift(self) -> u32 {
        self.bytes().trailing_zeros()
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Small4K => write!(f, "4KB"),
            PageSize::Huge2M => write!(f, "2MB"),
        }
    }
}

/// A translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use rmcc_cache::tlb::{PageSize, Tlb};
///
/// // The paper's config: 1536-entry D-TLB (12-way → 128 sets).
/// let mut tlb = Tlb::new(1536, 12, PageSize::Small4K);
/// assert!(!tlb.access(0x0000)); // cold miss
/// assert!(tlb.access(0x0fff)); // same 4 KB page: hit
/// assert!(!tlb.access(0x1000)); // next page: miss
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: SetAssocCache,
    page: PageSize,
}

impl Tlb {
    /// Creates a TLB with `n_entries` translations at `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `n_entries / ways` is not a power of two.
    pub fn new(n_entries: usize, ways: usize, page: PageSize) -> Self {
        Tlb {
            entries: SetAssocCache::new(n_entries, ways),
            page,
        }
    }

    /// Translates the byte address `vaddr`; returns `true` on a TLB hit.
    pub fn access(&mut self, vaddr: u64) -> bool {
        let vpn = vaddr >> self.page.shift();
        self.entries.access(vpn, false).is_hit()
    }

    /// The configured page size.
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    /// Total translation lookups so far.
    pub fn accesses(&self) -> u64 {
        self.entries.stats().accesses
    }

    /// Translation misses so far.
    pub fn misses(&self) -> u64 {
        self.entries.stats().misses
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        self.entries.stats().miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Small4K.shift(), 12);
        assert_eq!(PageSize::Huge2M.shift(), 21);
        assert_eq!(PageSize::Small4K.to_string(), "4KB");
        assert_eq!(PageSize::Huge2M.to_string(), "2MB");
    }

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(16, 4, PageSize::Small4K);
        assert!(!t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096));
        assert_eq!(t.accesses(), 3);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn huge_pages_cover_more() {
        let mut small = Tlb::new(16, 4, PageSize::Small4K);
        let mut huge = Tlb::new(16, 4, PageSize::Huge2M);
        // Stride through 2 MB in 4 KB steps: every step misses the 4 KB TLB
        // eventually (capacity), but the 2 MB TLB sees one page.
        for i in 0..512u64 {
            small.access(i * 4096);
            huge.access(i * 4096);
        }
        assert_eq!(huge.misses(), 1);
        assert!(small.misses() > 16);
    }

    #[test]
    fn miss_rate_in_bounds() {
        let mut t = Tlb::new(16, 4, PageSize::Small4K);
        for i in 0..1000u64 {
            t.access(i * 8192);
        }
        let r = t.miss_rate();
        assert!((0.0..=1.0).contains(&r));
        assert!(r > 0.5, "strided pattern should thrash a 16-entry TLB");
    }
}
