//! Cache substrate for the RMCC secure-memory reproduction.
//!
//! Three building blocks:
//!
//! * [`set_assoc`] — a tag-only set-associative cache with LRU replacement,
//!   dirty tracking, and explicit lookup/fill primitives; it backs every
//!   cache-like structure in the stack (data caches, the memory controller's
//!   counter cache, TLBs).
//! * [`tlb`] — a TLB model (4 KB / 2 MB pages) for reproducing the paper's
//!   Figure 4 TLB-miss ↔ counter-miss correlation.
//! * [`hierarchy`] — an L1/L2/LLC filter that turns a core's access stream
//!   into the LLC-miss/writeback stream the secure-memory machinery sees.
//!
//! # Example
//!
//! ```
//! use rmcc_cache::hierarchy::{Hierarchy, HierarchyConfig};
//!
//! let mut caches = Hierarchy::new(HierarchyConfig::pintool_lifetime());
//! let miss = caches.access_bytes(0xdead_000, false);
//! assert!(miss.is_llc_miss());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hierarchy;
pub mod set_assoc;
pub mod tlb;

pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyOutcome, Level, LevelConfig};
pub use set_assoc::{AccessOutcome, CacheStats, Eviction, SetAssocCache};
pub use tlb::{PageSize, Tlb};
