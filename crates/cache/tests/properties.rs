//! Property-based tests for the cache substrate.

use proptest::prelude::*;
use rmcc_cache::hierarchy::{Hierarchy, HierarchyConfig, LevelConfig};
use rmcc_cache::set_assoc::SetAssocCache;

proptest! {
    /// A just-accessed line is always resident, and statistics reconcile.
    #[test]
    fn accessed_lines_are_resident(addrs in prop::collection::vec(0u64..10_000, 1..500)) {
        let mut c = SetAssocCache::new(256, 8);
        for &a in &addrs {
            c.access(a, false);
            prop_assert!(c.probe(a), "line {} missing right after access", a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.accesses);
    }

    /// With at most `ways` distinct lines per set, nothing is ever evicted.
    #[test]
    fn working_set_within_ways_never_evicts(rounds in 1usize..50) {
        let mut c = SetAssocCache::new(64, 4); // 16 sets
        // 4 lines, all in set 3.
        let lines: Vec<u64> = (0..4u64).map(|i| 3 + i * 16).collect();
        for _ in 0..rounds {
            for &l in &lines {
                c.access(l, false);
            }
        }
        for &l in &lines {
            prop_assert!(c.probe(l));
        }
        prop_assert_eq!(c.stats().misses, 4, "only compulsory misses allowed");
    }

    /// Residency count never exceeds capacity.
    #[test]
    fn capacity_is_respected(addrs in prop::collection::vec(any::<u64>(), 1..2_000) ) {
        let mut c = SetAssocCache::new(128, 8);
        for &a in &addrs {
            c.access(a, a % 3 == 0);
        }
        prop_assert!(c.resident_lines().count() <= c.capacity_lines());
    }

    /// Every dirty line eventually comes back out as a writeback or stays
    /// resident: dirty-in == writebacks + dirty-resident.
    #[test]
    fn dirty_lines_are_conserved(addrs in prop::collection::vec(0u64..500, 1..1_000)) {
        let mut c = SetAssocCache::new(32, 4);
        let mut dirtied = std::collections::HashSet::new();
        let mut written_back = 0u64;
        for &a in &addrs {
            match c.access(a, true) {
                rmcc_cache::set_assoc::AccessOutcome::Miss { evicted: Some(e) } if e.dirty => {
                    written_back += 1;
                    dirtied.remove(&e.addr);
                }
                _ => {}
            }
            dirtied.insert(a);
        }
        let resident_dirty = dirtied.iter().filter(|a| c.probe(**a)).count() as u64;
        prop_assert_eq!(c.stats().writebacks, written_back);
        prop_assert!(resident_dirty <= c.capacity_lines() as u64);
    }

    /// The hierarchy never reports a hit for a line it has never seen, and
    /// repeated accesses promote into L1.
    #[test]
    fn hierarchy_hits_require_history(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let cfg = HierarchyConfig {
            l1: LevelConfig { bytes: 8 * 64, ways: 2 },
            l2: LevelConfig { bytes: 32 * 64, ways: 4 },
            l3: LevelConfig { bytes: 128 * 64, ways: 8 },
            line_bytes: 64,
        };
        let mut h = Hierarchy::new(cfg);
        let mut seen = std::collections::HashSet::new();
        for &a in &addrs {
            let out = h.access(a, false);
            if !seen.contains(&a) {
                // First touch can only hit if another access brought it in —
                // impossible here since addresses are lines.
                prop_assert!(out.is_llc_miss(), "unseen line {} hit", a);
            }
            seen.insert(a);
            // Immediate re-access must hit L1.
            let again = h.access(a, false);
            prop_assert_eq!(again.hit_level, Some(rmcc_cache::hierarchy::Level::L1));
        }
    }
}
