//! The secure-memory metadata engine: everything the memory controller does
//! besides raw DRAM timing.
//!
//! For every LLC miss or writeback the engine walks the counter cache and
//! integrity tree, applies the counter-update policy (baseline `+1` or
//! RMCC's memoization-aware update), performs RMCC table lookups, handles
//! overflows and dirty counter-block evictions, and reports the resulting
//! memory requests. Both the lifetime (Pin-style) runner and the detailed
//! timing simulator drive this one engine, so functional behaviour cannot
//! diverge between modes.

use std::collections::VecDeque;

use rmcc_cache::set_assoc::SetAssocCache;
use rmcc_core::rmcc::Rmcc;
use rmcc_core::table::LookupResult;
use rmcc_secmem::layout::BLOCK_BYTES;
use rmcc_secmem::tree::MetadataState;

use crate::config::{Scheme, SystemConfig};

/// Why a side request exists — mapped to DRAM traffic classes and overhead
/// accounting by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SideKind {
    /// A dirty counter block / tree node written back to memory.
    CounterWriteback,
    /// Re-encryption of a data block caused by an L0 relevel.
    OverflowL0,
    /// Re-MAC of metadata caused by an L1-or-higher relevel.
    OverflowHigher,
    /// Re-encryption write for a read-triggered memoization-aware update
    /// (§IV-C1).
    ReadTriggeredReencrypt,
}

/// A memory request generated as a side effect of metadata maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideRequest {
    /// Physical byte address.
    pub addr: u64,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// Why the request exists.
    pub kind: SideKind,
}

/// One level of the verification chain that had to be fetched from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFetch {
    /// The in-memory metadata level (0 = counter blocks).
    pub level: usize,
    /// The node's physical byte address.
    pub addr: u64,
    /// Whether the OTP needed to *verify* this node after it arrives can
    /// come from a memoization table (the node's protecting counter value
    /// hit the level-above table) instead of a fresh AES.
    pub verify_memo_hit: bool,
}

/// What servicing a data read required.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadOutcome {
    /// Metadata levels fetched from memory, innermost (L0) first. Empty
    /// when the L0 counter block hit in the counter cache.
    pub fetches: Vec<ChainFetch>,
    /// The level that terminated the walk with a counter-cache hit;
    /// `None` means the walk reached the on-chip root.
    pub cache_hit_level: Option<usize>,
    /// The data block's counter value (after any read-triggered update).
    pub counter_value: u64,
    /// RMCC: the data block's counter value hit the L0 memoization table,
    /// so the data OTP needs only a lookup + carry-less multiply.
    pub l0_memo_hit: bool,
    /// Side traffic (dirty evictions, read-triggered re-encryptions, …).
    pub side: Vec<SideRequest>,
}

impl ReadOutcome {
    /// Whether the L0 counter missed the counter cache (the paper's
    /// "counter miss" event, Figure 3).
    pub fn counter_missed(&self) -> bool {
        self.fetches.iter().any(|f| f.level == 0)
    }
}

/// What servicing a dirty-data writeback required.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteOutcome {
    /// Metadata levels fetched (the counter block must be resident to
    /// update it).
    pub fetches: Vec<ChainFetch>,
    /// The counter value the block was encrypted under.
    pub counter_value: u64,
    /// Whether the update releveled the whole counter block.
    pub releveled: bool,
    /// Side traffic (overflow re-encryption, dirty evictions, …).
    pub side: Vec<SideRequest>,
}

/// Per-level memoization lookup tallies, split by counter-cache outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoTally {
    /// Group hits on counter-cache misses.
    pub miss_group_hits: u64,
    /// MRU hits on counter-cache misses.
    pub miss_mru_hits: u64,
    /// Table misses on counter-cache misses.
    pub miss_misses: u64,
    /// Group hits across all lookups (cache hit or miss) — Figure 19's
    /// definition.
    pub all_group_hits: u64,
    /// MRU hits across all lookups.
    pub all_mru_hits: u64,
    /// Table misses across all lookups.
    pub all_misses: u64,
}

impl MemoTally {
    fn record(&mut self, result: LookupResult, counter_missed: bool) {
        match result {
            LookupResult::GroupHit => self.all_group_hits += 1,
            LookupResult::MruHit => self.all_mru_hits += 1,
            LookupResult::Miss => self.all_misses += 1,
        }
        if counter_missed {
            match result {
                LookupResult::GroupHit => self.miss_group_hits += 1,
                LookupResult::MruHit => self.miss_mru_hits += 1,
                LookupResult::Miss => self.miss_misses += 1,
            }
        }
    }

    /// Hit rate over lookups that followed a counter-cache miss (Fig. 10).
    pub fn miss_hit_rate(&self) -> f64 {
        let n = self.miss_group_hits + self.miss_mru_hits + self.miss_misses;
        if n == 0 {
            0.0
        } else {
            (self.miss_group_hits + self.miss_mru_hits) as f64 / n as f64
        }
    }

    /// Hit rate over all lookups (Fig. 19's definition).
    pub fn all_hit_rate(&self) -> f64 {
        let n = self.all_group_hits + self.all_mru_hits + self.all_misses;
        if n == 0 {
            0.0
        } else {
            (self.all_group_hits + self.all_mru_hits) as f64 / n as f64
        }
    }
}

/// Aggregate functional statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetaStats {
    /// Data-read requests (LLC misses).
    pub data_reads: u64,
    /// Data writeback requests.
    pub data_writes: u64,
    /// LLC misses whose L0 counter missed the counter cache (Fig. 3).
    pub counter_misses: u64,
    /// Metadata blocks fetched from memory.
    pub counter_fetches: u64,
    /// Dirty metadata writebacks.
    pub counter_writebacks: u64,
    /// Data-block requests caused by L0 relevels.
    pub overflow_l0_requests: u64,
    /// Metadata requests caused by L1+ relevels.
    pub overflow_hi_requests: u64,
    /// L0 relevel events.
    pub relevels_l0: u64,
    /// L1+ relevel events.
    pub relevels_hi: u64,
    /// Read-triggered re-encryption writes (RMCC).
    pub read_triggered_writes: u64,
    /// Requests charged to RMCC budgets (jump-induced overflow traffic +
    /// read-triggered updates).
    pub rmcc_charged_requests: u64,
    /// L0-value memoization lookups.
    pub memo_l0: MemoTally,
    /// L1-value memoization lookups (on L0 fetch verification).
    pub memo_l1: MemoTally,
    /// Counter misses whose decryption/verification was fully accelerated:
    /// L0 value memoized AND the L1 requirement satisfied (cache hit or
    /// memoized) — the paper's 92% metric.
    pub accelerated_counter_misses: u64,
    /// Every memory request the MC issued (data + metadata + overflow).
    pub total_requests: u64,
}

impl MetaStats {
    /// Fraction of LLC misses that suffered a counter-cache miss (Fig. 3).
    pub fn counter_miss_rate(&self) -> f64 {
        if self.data_reads == 0 {
            0.0
        } else {
            self.counter_misses as f64 / self.data_reads as f64
        }
    }

    /// Fraction of counter misses that were accelerated (the 92% result).
    pub fn accelerated_rate(&self) -> f64 {
        if self.counter_misses == 0 {
            0.0
        } else {
            self.accelerated_counter_misses as f64 / self.counter_misses as f64
        }
    }
}

/// The metadata engine.
pub struct MetaEngine {
    scheme: Scheme,
    meta: Option<MetadataState>,
    rmcc: Option<Rmcc>,
    counter_cache: SetAssocCache,
    stats: MetaStats,
}

impl std::fmt::Debug for MetaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaEngine")
            .field("scheme", &self.scheme)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MetaEngine {
    /// Builds the engine for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let meta = cfg
            .scheme
            .counter_org()
            .map(|org| MetadataState::new(org, cfg.data_bytes, cfg.counter_init));
        let rmcc = cfg.scheme.uses_rmcc().then(|| {
            let mut r = Rmcc::new(cfg.rmcc);
            if matches!(
                cfg.counter_init,
                rmcc_secmem::tree::InitPolicy::Randomized { .. }
            ) {
                // Measurement starts from the §V write-storm's converged
                // steady state: the tables hold the ladder the storm's
                // memoization-aware updates steered counters onto (see
                // `canonical_group_starts`).
                for start in rmcc_secmem::tree::canonical_group_starts() {
                    for level in 0..cfg.rmcc.levels {
                        r.seed_group(level, start);
                    }
                }
            }
            r
        });
        MetaEngine {
            scheme: cfg.scheme,
            meta,
            rmcc,
            counter_cache: SetAssocCache::new(
                cfg.counter_cache_lines().max(cfg.counter_cache_ways),
                cfg.counter_cache_ways,
            ),
            stats: MetaStats::default(),
        }
    }

    /// Functional statistics so far.
    pub fn stats(&self) -> &MetaStats {
        &self.stats
    }

    /// Clears measured statistics while preserving all architectural state
    /// (counter cache, counter values, memoization tables) — end-of-warm-up
    /// semantics, as in the paper's §V methodology.
    pub fn reset_stats(&mut self) {
        self.stats = MetaStats::default();
        self.counter_cache.reset_stats();
    }

    /// The RMCC engine, when the scheme uses it.
    pub fn rmcc(&self) -> Option<&Rmcc> {
        self.rmcc.as_ref()
    }

    /// Seeds a memoized group directly (warm-started experiments / tests).
    /// No-op for schemes without RMCC.
    pub fn seed_rmcc_group(&mut self, level: usize, start: u64) {
        if let Some(r) = self.rmcc.as_mut() {
            r.seed_group(level, start);
        }
    }

    /// The counter state, when the scheme is secure.
    pub fn metadata(&mut self) -> Option<&mut MetadataState> {
        self.meta.as_mut()
    }

    /// Counter-cache statistics.
    pub fn counter_cache_stats(&self) -> rmcc_cache::set_assoc::CacheStats {
        self.counter_cache.stats()
    }

    fn tick(&mut self, requests: u64) {
        self.stats.total_requests += requests;
        if let Some(r) = self.rmcc.as_mut() {
            for _ in 0..requests {
                r.on_memory_access();
            }
        }
    }

    /// Walks the counter cache from level 0 upward until a hit (or the
    /// root), filling missed levels and returning the fetches plus any side
    /// traffic from dirty victims. `dirty_l0` marks the L0 access as a
    /// write (writeback flow).
    fn resolve_chain(
        &mut self,
        l0_index: u64,
        dirty_l0: bool,
        fetches: &mut Vec<ChainFetch>,
        side: &mut Vec<SideRequest>,
    ) -> Option<usize> {
        let meta = self.meta.as_mut().expect("secure scheme");
        let depth = meta.layout().depth();
        let mut victims = VecDeque::new();
        let mut hit_level = None;
        let mut level = 0;
        let mut index = l0_index;
        loop {
            if level >= depth {
                break; // reached the on-chip root
            }
            let addr = meta.layout().node_addr(level, index);
            let outcome = self.counter_cache.access(addr >> 6, dirty_l0 && level == 0);
            match outcome {
                rmcc_cache::set_assoc::AccessOutcome::Hit => {
                    hit_level = Some(level);
                    break;
                }
                rmcc_cache::set_assoc::AccessOutcome::Miss { evicted } => {
                    if let Some(e) = evicted {
                        if e.dirty {
                            victims.push_back(e.addr << 6);
                        }
                    }
                    // Verification of this fetched node needs an OTP from
                    // its protecting counter; check the level-above table.
                    let protecting_value = meta.node_counter(level, index);
                    let verify_memo_hit = match self.rmcc.as_mut() {
                        Some(r) if r.covers_level(level + 1) => {
                            let result = r.lookup(level + 1, protecting_value);
                            if level == 0 {
                                self.stats.memo_l1.record(result, true);
                            }
                            result.is_hit()
                        }
                        _ => false,
                    };
                    fetches.push(ChainFetch {
                        level,
                        addr,
                        verify_memo_hit,
                    });
                    index = match meta.layout().parent_index(level, index) {
                        Some(p) => p,
                        None => break, // parent is the root
                    };
                    level += 1;
                }
            }
        }
        // Handle dirty victims (and any cascade they cause).
        while let Some(victim_addr) = victims.pop_front() {
            self.write_back_node(victim_addr, side, &mut victims);
        }
        hit_level
    }

    /// A dirty metadata block leaves the counter cache: write it to memory
    /// and bump its protecting counter, releveling ancestors as needed.
    fn write_back_node(
        &mut self,
        addr: u64,
        side: &mut Vec<SideRequest>,
        victims: &mut VecDeque<u64>,
    ) {
        let meta = self.meta.as_mut().expect("secure scheme");
        let Some((level, index)) = meta.layout().locate(addr) else {
            return;
        };
        side.push(SideRequest {
            addr,
            is_write: true,
            kind: SideKind::CounterWriteback,
        });
        self.stats.counter_writebacks += 1;

        let (parent_level, parent_index) = meta
            .layout()
            .parent_loc(level, index)
            .expect("writeback addressed a node outside the layout");
        let slot = meta.layout().parent_slot(index);
        let arity = meta.org().tree_arity() as u64;
        let depth = meta.layout().depth();

        // Bump the protecting counter — memoization-aware when a table
        // covers it (the L1 table covers counters of L0 blocks).
        let rmcc = self.rmcc.as_mut();
        let (releveled, charged) = match rmcc {
            Some(r) if r.covers_level(parent_level) => {
                let out = meta.with_block_mut(parent_level, parent_index, |cb| {
                    r.update_counter(parent_level, cb, slot, false)
                });
                let out = out.expect("writeback updates always apply");
                (out.releveled, out.charged_requests)
            }
            _ => {
                let releveled = meta.with_block_mut(parent_level, parent_index, |cb| {
                    let target = cb.value(slot) + 1;
                    match cb.try_write(slot, target) {
                        Ok(()) => false,
                        Err(of) => {
                            cb.relevel(of.min_relevel_target);
                            true
                        }
                    }
                });
                (releveled, 0)
            }
        };
        self.stats.rmcc_charged_requests += charged;

        if releveled {
            // Every child of the parent changed its protecting counter:
            // re-MAC them all (read + write each).
            self.stats.relevels_hi += 1;
            for child_slot in 0..arity {
                let child = parent_index * arity + child_slot;
                let child_addr = meta
                    .layout()
                    .node_addr(level, child.min(meta.layout().level_count(level) - 1));
                side.push(SideRequest {
                    addr: child_addr,
                    is_write: false,
                    kind: SideKind::OverflowHigher,
                });
                side.push(SideRequest {
                    addr: child_addr,
                    is_write: true,
                    kind: SideKind::OverflowHigher,
                });
                self.stats.overflow_hi_requests += 2;
            }
        }

        // The parent's state changed: it must become dirty in the counter
        // cache (unless the parent is the on-chip root).
        if parent_level < depth {
            let parent_addr = meta.layout().node_addr(parent_level, parent_index);
            if let rmcc_cache::set_assoc::AccessOutcome::Miss { evicted: Some(e) } =
                self.counter_cache.access(parent_addr >> 6, true)
            {
                if e.dirty {
                    victims.push_back(e.addr << 6);
                }
            }
        }
    }

    /// Services a data-block read (an LLC miss) at physical address `paddr`.
    pub fn on_read(&mut self, paddr: u64) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        self.stats.data_reads += 1;
        if self.scheme == Scheme::NonSecure {
            self.tick(1);
            return out;
        }
        let data_block = paddr / BLOCK_BYTES;
        let (l0_index, slot) = {
            let meta = self.meta.as_mut().expect("secure scheme");
            (
                meta.layout().l0_index(data_block),
                meta.layout().l0_slot(data_block),
            )
        };
        out.cache_hit_level = self.resolve_chain(l0_index, false, &mut out.fetches, &mut out.side);
        let counter_missed = out.counter_missed();
        if counter_missed {
            self.stats.counter_misses += 1;
        }

        let meta = self.meta.as_mut().expect("secure scheme");
        out.counter_value = meta.block(0, l0_index).value(slot);
        let system_max = meta.max_observed();

        if let Some(r) = self.rmcc.as_mut() {
            r.note_system_max(system_max);
            let result = r.lookup(0, out.counter_value);
            self.stats.memo_l0.record(result, counter_missed);
            out.l0_memo_hit = result.is_hit();

            if counter_missed {
                // The 92% metric: L0 memoized and the L1 side satisfied.
                let l1_ok = match out.fetches.iter().find(|f| f.level == 0) {
                    Some(f0) => {
                        let l1_fetched = out.fetches.iter().any(|f| f.level == 1);
                        !l1_fetched || f0.verify_memo_hit
                    }
                    None => true,
                };
                if out.l0_memo_hit && l1_ok {
                    self.stats.accelerated_counter_misses += 1;
                }

                // Read-triggered memoization-aware update (§IV-C1).
                if !out.l0_memo_hit {
                    let meta = self.meta.as_mut().expect("secure scheme");
                    let updated =
                        meta.with_block_mut(0, l0_index, |cb| r.update_counter(0, cb, slot, true));
                    if let Some(u) = updated {
                        self.stats.read_triggered_writes += 1;
                        self.stats.rmcc_charged_requests += u.charged_requests;
                        out.counter_value = u.new_value;
                        out.side.push(SideRequest {
                            addr: paddr,
                            is_write: true,
                            kind: SideKind::ReadTriggeredReencrypt,
                        });
                        // The counter block is now dirty in the cache.
                        self.counter_cache.access(
                            self.meta
                                .as_mut()
                                .expect("secure")
                                .layout()
                                .node_addr(0, l0_index)
                                >> 6,
                            true,
                        );
                    }
                }
            }
        }

        self.stats.counter_fetches += out.fetches.len() as u64;
        let requests = 1 + out.fetches.len() as u64 + out.side.len() as u64;
        self.tick(requests);
        out
    }

    /// Services a dirty-data writeback at physical address `paddr`.
    pub fn on_writeback(&mut self, paddr: u64) -> WriteOutcome {
        let mut out = WriteOutcome::default();
        self.stats.data_writes += 1;
        if self.scheme == Scheme::NonSecure {
            self.tick(1);
            return out;
        }
        let data_block = paddr / BLOCK_BYTES;
        let (l0_index, slot, coverage) = {
            let meta = self.meta.as_mut().expect("secure scheme");
            (
                meta.layout().l0_index(data_block),
                meta.layout().l0_slot(data_block),
                meta.org().coverage() as u64,
            )
        };
        self.resolve_chain(l0_index, true, &mut out.fetches, &mut out.side);

        // Counter update.
        let meta = self.meta.as_mut().expect("secure scheme");
        let (new_value, releveled, charged) = match self.rmcc.as_mut() {
            Some(r) => {
                r.note_system_max(meta.max_observed());
                let u = meta
                    .with_block_mut(0, l0_index, |cb| r.update_counter(0, cb, slot, false))
                    .expect("writeback updates always apply");
                (u.new_value, u.releveled, u.charged_requests)
            }
            None => {
                let (v, releveled) = meta.with_block_mut(0, l0_index, |cb| {
                    let target = cb.value(slot) + 1;
                    match cb.try_write(slot, target) {
                        Ok(()) => (target, false),
                        Err(of) => {
                            cb.relevel(of.min_relevel_target);
                            (of.min_relevel_target, true)
                        }
                    }
                });
                (v, releveled, 0)
            }
        };
        out.counter_value = new_value;
        out.releveled = releveled;
        self.stats.rmcc_charged_requests += charged;

        if releveled {
            // Re-encrypt every covered data block: read + write each.
            self.stats.relevels_l0 += 1;
            let base = l0_index * coverage;
            for s in 0..coverage {
                let addr = (base + s) * BLOCK_BYTES;
                out.side.push(SideRequest {
                    addr,
                    is_write: false,
                    kind: SideKind::OverflowL0,
                });
                out.side.push(SideRequest {
                    addr,
                    is_write: true,
                    kind: SideKind::OverflowL0,
                });
                self.stats.overflow_l0_requests += 2;
            }
        }

        self.stats.counter_fetches += out.fetches.len() as u64;
        let requests = 1 + out.fetches.len() as u64 + out.side.len() as u64;
        self.tick(requests);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_secmem::tree::InitPolicy;

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::lifetime(scheme);
        c.counter_init = InitPolicy::Zero;
        c.data_bytes = 1 << 30;
        c
    }

    #[test]
    fn non_secure_has_no_metadata_traffic() {
        let mut e = MetaEngine::new(&cfg(Scheme::NonSecure));
        let out = e.on_read(0x1000);
        assert!(out.fetches.is_empty());
        assert_eq!(e.stats().total_requests, 1);
        assert_eq!(e.stats().counter_misses, 0);
    }

    #[test]
    fn first_read_walks_to_root_then_hits() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        let out = e.on_read(0x1000);
        // Cold caches: every in-memory level fetched.
        assert!(!out.fetches.is_empty());
        assert!(out.counter_missed());
        assert_eq!(out.cache_hit_level, None);
        // Second read of the same region: L0 now cached.
        let out2 = e.on_read(0x1040);
        assert!(out2.fetches.is_empty());
        assert_eq!(out2.cache_hit_level, Some(0));
        assert_eq!(e.stats().counter_misses, 1);
        assert_eq!(e.stats().data_reads, 2);
    }

    #[test]
    fn distant_blocks_share_higher_tree_levels() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        e.on_read(0);
        // A block in a different counter block but same L1 subtree: only L0
        // should miss.
        let out = e.on_read(128 * 64);
        assert_eq!(out.fetches.len(), 1);
        assert_eq!(out.fetches[0].level, 0);
        assert_eq!(out.cache_hit_level, Some(1));
    }

    #[test]
    fn writeback_increments_counter() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        let w1 = e.on_writeback(0x2000);
        assert_eq!(w1.counter_value, 1);
        let w2 = e.on_writeback(0x2000);
        assert_eq!(w2.counter_value, 2);
        assert!(!w2.releveled);
    }

    #[test]
    fn sc64_releveling_generates_overflow_traffic() {
        let mut e = MetaEngine::new(&cfg(Scheme::Sc64));
        for _ in 0..127 {
            let w = e.on_writeback(0x3000);
            assert!(!w.releveled);
        }
        let w = e.on_writeback(0x3000);
        assert!(w.releveled, "128th write overflows the 7-bit minor");
        let overflow_reqs = w
            .side
            .iter()
            .filter(|s| s.kind == SideKind::OverflowL0)
            .count();
        assert_eq!(overflow_reqs, 2 * 64);
        assert_eq!(e.stats().relevels_l0, 1);
    }

    #[test]
    fn rmcc_conforms_writebacks_and_hits_on_read() {
        // Bootstrap: with zero-init counters and nothing memoized yet,
        // every first writeback lands on the baseline value 1.
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        for i in 0..200u64 {
            let w = e.on_writeback(i * 64);
            assert_eq!(
                w.counter_value, 1,
                "unmemoized writeback increments from zero"
            );
        }
        assert_eq!(
            e.stats().memo_l0.all_group_hits,
            0,
            "nothing memoized during bootstrap"
        );
        // A memoized group changes that: writes conform and reads hit.
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        e.rmcc.as_mut().unwrap().seed_group(0, 5);
        let w = e.on_writeback(0x4000);
        assert_eq!(w.counter_value, 5, "write conforms to the memoized group");
        let r = e.on_read(0x4000);
        assert!(r.l0_memo_hit, "read of a conformed counter hits the table");
        assert_eq!(e.stats().memo_l0.all_group_hits, 1);
    }

    #[test]
    fn read_triggered_update_reencrypts() {
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        e.rmcc.as_mut().unwrap().seed_group(0, 50);
        let r = e.on_read(0x8000);
        assert!(!r.l0_memo_hit, "value 0 is not memoized");
        assert_eq!(
            r.counter_value, 50,
            "read-triggered update conformed the counter"
        );
        assert!(r
            .side
            .iter()
            .any(|s| s.kind == SideKind::ReadTriggeredReencrypt && s.is_write));
        assert_eq!(e.stats().read_triggered_writes, 1);
        // Next read hits.
        let r2 = e.on_read(0x8000);
        assert!(r2.l0_memo_hit);
    }

    #[test]
    fn dirty_counter_eviction_bumps_l1_and_writes_back() {
        let mut small = cfg(Scheme::Morphable);
        small.counter_cache_bytes = 4 * 64; // 4 lines → constant thrashing
        small.counter_cache_ways = 2;
        let mut e = MetaEngine::new(&small);
        // Dirty a counter block, then thrash the cache with distant reads.
        e.on_writeback(0);
        let mut saw_writeback = false;
        for i in 1..200u64 {
            let out = e.on_read(i * 128 * 64 * 7);
            if out
                .side
                .iter()
                .any(|s| s.kind == SideKind::CounterWriteback)
            {
                saw_writeback = true;
                break;
            }
        }
        assert!(saw_writeback, "dirty counter block never written back");
        assert!(e.stats().counter_writebacks > 0);
    }

    #[test]
    fn stats_rates() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        e.on_read(0);
        e.on_read(64);
        let s = e.stats();
        assert!((s.counter_miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(MetaStats::default().counter_miss_rate(), 0.0);
        assert_eq!(MetaStats::default().accelerated_rate(), 0.0);
    }
}
