//! The secure-memory metadata engine: everything the memory controller does
//! besides raw DRAM timing.
//!
//! For every LLC miss or writeback the engine walks the counter cache and
//! integrity tree, applies the counter-update policy (baseline `+1` or
//! RMCC's memoization-aware update), performs RMCC table lookups, handles
//! overflows and dirty counter-block evictions, and reports the resulting
//! memory requests. Both the lifetime (Pin-style) runner and the detailed
//! timing simulator drive this one engine, so functional behaviour cannot
//! diverge between modes.

use std::collections::VecDeque;

use rmcc_cache::set_assoc::SetAssocCache;
use rmcc_core::rmcc::Rmcc;
use rmcc_core::table::{LookupResult, TableStats};
use rmcc_crypto::stats::{CryptoCost, CryptoStats};
use rmcc_secmem::layout::BLOCK_BYTES;
use rmcc_secmem::tree::MetadataState;
use rmcc_telemetry::{CounterId, GaugeId, HistogramId, MetricsRegistry, Telemetry};

use crate::config::{Scheme, SystemConfig};

/// Why a side request exists — mapped to DRAM traffic classes and overhead
/// accounting by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SideKind {
    /// A dirty counter block / tree node written back to memory.
    CounterWriteback,
    /// Re-encryption of a data block caused by an L0 relevel.
    OverflowL0,
    /// Re-MAC of metadata caused by an L1-or-higher relevel.
    OverflowHigher,
    /// Re-encryption write for a read-triggered memoization-aware update
    /// (§IV-C1).
    ReadTriggeredReencrypt,
}

/// A memory request generated as a side effect of metadata maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideRequest {
    /// Physical byte address.
    pub addr: u64,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// Why the request exists.
    pub kind: SideKind,
}

/// One level of the verification chain that had to be fetched from memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainFetch {
    /// The in-memory metadata level (0 = counter blocks).
    pub level: usize,
    /// The node's physical byte address.
    pub addr: u64,
    /// Whether the OTP needed to *verify* this node after it arrives can
    /// come from a memoization table (the node's protecting counter value
    /// hit the level-above table) instead of a fresh AES.
    pub verify_memo_hit: bool,
}

/// What servicing a data read required.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadOutcome {
    /// Metadata levels fetched from memory, innermost (L0) first. Empty
    /// when the L0 counter block hit in the counter cache.
    pub fetches: Vec<ChainFetch>,
    /// The level that terminated the walk with a counter-cache hit;
    /// `None` means the walk reached the on-chip root.
    pub cache_hit_level: Option<usize>,
    /// The data block's counter value (after any read-triggered update).
    pub counter_value: u64,
    /// RMCC: the data block's counter value hit the L0 memoization table,
    /// so the data OTP needs only a lookup + carry-less multiply.
    pub l0_memo_hit: bool,
    /// Side traffic (dirty evictions, read-triggered re-encryptions, …).
    pub side: Vec<SideRequest>,
}

impl ReadOutcome {
    /// Whether the L0 counter missed the counter cache (the paper's
    /// "counter miss" event, Figure 3).
    pub fn counter_missed(&self) -> bool {
        self.fetches.iter().any(|f| f.level == 0)
    }
}

/// What servicing a dirty-data writeback required.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteOutcome {
    /// Metadata levels fetched (the counter block must be resident to
    /// update it).
    pub fetches: Vec<ChainFetch>,
    /// The counter value the block was encrypted under.
    pub counter_value: u64,
    /// Whether the update releveled the whole counter block.
    pub releveled: bool,
    /// Side traffic (overflow re-encryption, dirty evictions, …).
    pub side: Vec<SideRequest>,
}

/// Per-level memoization lookup tallies, split by counter-cache outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoTally {
    /// Group hits on counter-cache misses.
    pub miss_group_hits: u64,
    /// MRU hits on counter-cache misses.
    pub miss_mru_hits: u64,
    /// Table misses on counter-cache misses.
    pub miss_misses: u64,
    /// Group hits across all lookups (cache hit or miss) — Figure 19's
    /// definition.
    pub all_group_hits: u64,
    /// MRU hits across all lookups.
    pub all_mru_hits: u64,
    /// Table misses across all lookups.
    pub all_misses: u64,
}

impl MemoTally {
    fn record(&mut self, result: LookupResult, counter_missed: bool) {
        match result {
            LookupResult::GroupHit => self.all_group_hits += 1,
            LookupResult::MruHit => self.all_mru_hits += 1,
            LookupResult::Miss => self.all_misses += 1,
        }
        if counter_missed {
            match result {
                LookupResult::GroupHit => self.miss_group_hits += 1,
                LookupResult::MruHit => self.miss_mru_hits += 1,
                LookupResult::Miss => self.miss_misses += 1,
            }
        }
    }

    /// Hit rate over lookups that followed a counter-cache miss (Fig. 10).
    pub fn miss_hit_rate(&self) -> f64 {
        let n = self.miss_group_hits + self.miss_mru_hits + self.miss_misses;
        if n == 0 {
            0.0
        } else {
            (self.miss_group_hits + self.miss_mru_hits) as f64 / n as f64
        }
    }

    /// Hit rate over all lookups (Fig. 19's definition).
    pub fn all_hit_rate(&self) -> f64 {
        let n = self.all_group_hits + self.all_mru_hits + self.all_misses;
        if n == 0 {
            0.0
        } else {
            (self.all_group_hits + self.all_mru_hits) as f64 / n as f64
        }
    }
}

/// Aggregate functional statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetaStats {
    /// Data-read requests (LLC misses).
    pub data_reads: u64,
    /// Data writeback requests.
    pub data_writes: u64,
    /// LLC misses whose L0 counter missed the counter cache (Fig. 3).
    pub counter_misses: u64,
    /// Metadata blocks fetched from memory.
    pub counter_fetches: u64,
    /// Dirty metadata writebacks.
    pub counter_writebacks: u64,
    /// Data-block requests caused by L0 relevels.
    pub overflow_l0_requests: u64,
    /// Metadata requests caused by L1+ relevels.
    pub overflow_hi_requests: u64,
    /// L0 relevel events.
    pub relevels_l0: u64,
    /// L1+ relevel events.
    pub relevels_hi: u64,
    /// Read-triggered re-encryption writes (RMCC).
    pub read_triggered_writes: u64,
    /// Requests charged to RMCC budgets (jump-induced overflow traffic +
    /// read-triggered updates).
    pub rmcc_charged_requests: u64,
    /// L0-value memoization lookups.
    pub memo_l0: MemoTally,
    /// L1-value memoization lookups (on L0 fetch verification).
    pub memo_l1: MemoTally,
    /// Counter misses whose decryption/verification was fully accelerated:
    /// L0 value memoized AND the L1 requirement satisfied (cache hit or
    /// memoized) — the paper's 92% metric.
    pub accelerated_counter_misses: u64,
    /// Every memory request the MC issued (data + metadata + overflow).
    pub total_requests: u64,
}

impl MetaStats {
    /// Fraction of LLC misses that suffered a counter-cache miss (Fig. 3).
    pub fn counter_miss_rate(&self) -> f64 {
        if self.data_reads == 0 {
            0.0
        } else {
            self.counter_misses as f64 / self.data_reads as f64
        }
    }

    /// Fraction of counter misses that were accelerated (the 92% result).
    pub fn accelerated_rate(&self) -> f64 {
        if self.counter_misses == 0 {
            0.0
        } else {
            self.accelerated_counter_misses as f64 / self.counter_misses as f64
        }
    }
}

/// Typed handles into the engine's metric registry, resolved once at
/// construction so epoch snapshots are plain indexed stores (no name
/// lookups on any path). Registration order in [`TeleIds::register`] *is*
/// the JSONL/CSV column order — append new metrics at the end of their
/// section, or golden exports change.
struct TeleIds {
    // Engine traffic, mirrored from `MetaStats` at each epoch boundary.
    data_reads: CounterId,
    data_writes: CounterId,
    counter_misses: CounterId,
    counter_fetches: CounterId,
    counter_writebacks: CounterId,
    relevels_l0: CounterId,
    relevels_hi: CounterId,
    read_triggered_writes: CounterId,
    total_requests: CounterId,
    // Counter cache.
    cache_hits: CounterId,
    cache_misses: CounterId,
    // L0 memoization table.
    table_group_hits: CounterId,
    table_mru_hits: CounterId,
    table_misses: CounterId,
    table_insertions: CounterId,
    table_evictions: CounterId,
    table_shadow_promotions: CounterId,
    table_mru_harvests: CounterId,
    // Static crypto-invocation model.
    aes_paid: CounterId,
    aes_saved: CounterId,
    clmul_ops: CounterId,
    mac_verifies: CounterId,
    // Budget / Observed-System-Max (level 0).
    budget_spent_total: CounterId,
    osm: CounterId,
    // Point-sampled gauges.
    cache_hit_rate: GaugeId,
    table_hit_rate: GaugeId,
    table_hit_rate_epoch: GaugeId,
    conformance_ratio: GaugeId,
    budget_spent_epoch: GaugeId,
    budget_carry_over: GaugeId,
    budget_available: GaugeId,
    aes_saved_fraction: GaugeId,
    // Histograms.
    chain_depth: HistogramId,
}

impl TeleIds {
    fn register(reg: &mut MetricsRegistry) -> Self {
        TeleIds {
            data_reads: reg.counter("data_reads"),
            data_writes: reg.counter("data_writes"),
            counter_misses: reg.counter("counter_misses"),
            counter_fetches: reg.counter("counter_fetches"),
            counter_writebacks: reg.counter("counter_writebacks"),
            relevels_l0: reg.counter("relevels_l0"),
            relevels_hi: reg.counter("relevels_hi"),
            read_triggered_writes: reg.counter("read_triggered_writes"),
            total_requests: reg.counter("total_requests"),
            cache_hits: reg.counter("cache_hits"),
            cache_misses: reg.counter("cache_misses"),
            table_group_hits: reg.counter("table_group_hits"),
            table_mru_hits: reg.counter("table_mru_hits"),
            table_misses: reg.counter("table_misses"),
            table_insertions: reg.counter("table_insertions"),
            table_evictions: reg.counter("table_evictions"),
            table_shadow_promotions: reg.counter("table_shadow_promotions"),
            table_mru_harvests: reg.counter("table_mru_harvests"),
            aes_paid: reg.counter("aes_paid"),
            aes_saved: reg.counter("aes_saved"),
            clmul_ops: reg.counter("clmul_ops"),
            mac_verifies: reg.counter("mac_verifies"),
            budget_spent_total: reg.counter("budget_spent_total"),
            osm: reg.counter("osm"),
            cache_hit_rate: reg.gauge("cache_hit_rate"),
            table_hit_rate: reg.gauge("table_hit_rate"),
            table_hit_rate_epoch: reg.gauge("table_hit_rate_epoch"),
            conformance_ratio: reg.gauge("conformance_ratio"),
            budget_spent_epoch: reg.gauge("budget_spent_epoch"),
            budget_carry_over: reg.gauge("budget_carry_over"),
            budget_available: reg.gauge("budget_available"),
            aes_saved_fraction: reg.gauge("aes_saved_fraction"),
            chain_depth: reg.histogram("chain_depth", &[0, 1, 2, 3, 4]),
        }
    }
}

/// The metadata engine.
pub struct MetaEngine {
    scheme: Scheme,
    meta: Option<MetadataState>,
    rmcc: Option<Rmcc>,
    counter_cache: SetAssocCache,
    stats: MetaStats,
    /// Static-model crypto tally; only accumulates while telemetry is on.
    crypto: CryptoStats,
    /// Full pad cost of one block under this scheme's pipeline.
    pad_full: CryptoCost,
    /// Share of `pad_full` a memoization hit skips (zero for non-RMCC).
    pad_memo_share: CryptoCost,
    telemetry: Telemetry,
    tele: Option<TeleIds>,
    /// Snapshot cadence in memory requests (`RmccConfig::epoch_accesses`);
    /// ticks in lockstep with the RMCC budgets' own epoch counters.
    epoch_len: u64,
    epoch_progress: u64,
    accesses_seen: u64,
    epochs_done: u64,
    prev_table_hits: u64,
    prev_table_lookups: u64,
}

impl std::fmt::Debug for MetaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaEngine")
            .field("scheme", &self.scheme)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MetaEngine {
    /// Builds the engine for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let meta = cfg
            .scheme
            .counter_org()
            .map(|org| MetadataState::new(org, cfg.data_bytes, cfg.counter_init));
        let rmcc = cfg.scheme.uses_rmcc().then(|| {
            let mut r = Rmcc::new(cfg.rmcc);
            if matches!(
                cfg.counter_init,
                rmcc_secmem::tree::InitPolicy::Randomized { .. }
            ) {
                // Measurement starts from the §V write-storm's converged
                // steady state: the tables hold the ladder the storm's
                // memoization-aware updates steered counters onto (see
                // `canonical_group_starts`).
                for start in rmcc_secmem::tree::canonical_group_starts() {
                    for level in 0..cfg.rmcc.levels {
                        r.seed_group(level, start);
                    }
                }
            }
            r
        });
        let (telemetry, tele) = if cfg.telemetry {
            let mut reg = MetricsRegistry::new();
            let ids = TeleIds::register(&mut reg);
            (Telemetry::on(reg), Some(ids))
        } else {
            (Telemetry::off(), None)
        };
        let (pad_full, pad_memo_share) = match cfg.scheme {
            Scheme::NonSecure => (CryptoCost::default(), CryptoCost::default()),
            Scheme::Sc64 | Scheme::Morphable => (CryptoCost::sgx_block(), CryptoCost::default()),
            Scheme::Rmcc => (CryptoCost::rmcc_block(), CryptoCost::rmcc_counter_share()),
        };
        MetaEngine {
            scheme: cfg.scheme,
            meta,
            rmcc,
            counter_cache: SetAssocCache::new(
                cfg.counter_cache_lines().max(cfg.counter_cache_ways),
                cfg.counter_cache_ways,
            ),
            stats: MetaStats::default(),
            crypto: CryptoStats::default(),
            pad_full,
            pad_memo_share,
            telemetry,
            tele,
            epoch_len: cfg.rmcc.epoch_accesses.max(1),
            epoch_progress: 0,
            accesses_seen: 0,
            epochs_done: 0,
            prev_table_hits: 0,
            prev_table_lookups: 0,
        }
    }

    /// Functional statistics so far.
    pub fn stats(&self) -> &MetaStats {
        &self.stats
    }

    /// Clears measured statistics while preserving all architectural state
    /// (counter cache, counter values, memoization tables) — end-of-warm-up
    /// semantics, as in the paper's §V methodology.
    pub fn reset_stats(&mut self) {
        self.stats = MetaStats::default();
        self.counter_cache.reset_stats();
        self.crypto = CryptoStats::default();
    }

    /// The RMCC engine, when the scheme uses it.
    pub fn rmcc(&self) -> Option<&Rmcc> {
        self.rmcc.as_ref()
    }

    /// Seeds a memoized group directly (warm-started experiments / tests).
    /// No-op for schemes without RMCC.
    pub fn seed_rmcc_group(&mut self, level: usize, start: u64) {
        if let Some(r) = self.rmcc.as_mut() {
            r.seed_group(level, start);
        }
    }

    /// The counter state, when the scheme is secure.
    pub fn metadata(&mut self) -> Option<&mut MetadataState> {
        self.meta.as_mut()
    }

    /// Counter-cache statistics.
    pub fn counter_cache_stats(&self) -> rmcc_cache::set_assoc::CacheStats {
        self.counter_cache.stats()
    }

    fn tick(&mut self, requests: u64) {
        self.stats.total_requests += requests;
        if self.telemetry.is_on() {
            for _ in 0..requests {
                self.accesses_seen += 1;
                self.epoch_progress += 1;
                if self.epoch_progress >= self.epoch_len {
                    // Snapshot *before* the boundary access reaches the
                    // RMCC budgets: `epoch_spent` / `carry_over` still
                    // describe the epoch that just finished, and the table
                    // is in the state that served it (pre-reselection).
                    self.epoch_progress = 0;
                    self.snapshot_epoch();
                }
                if let Some(r) = self.rmcc.as_mut() {
                    r.on_memory_access();
                }
            }
        } else if let Some(r) = self.rmcc.as_mut() {
            for _ in 0..requests {
                r.on_memory_access();
            }
        }
    }

    /// Charges the static crypto model for one data-block pad computation
    /// (`block_memo_hit` = its counter-only AES came from the memoization
    /// table) plus one verify-OTP per fetched chain node. `verify_data`
    /// adds the data block's own MAC check (read path).
    fn note_op_crypto(&mut self, block_memo_hit: bool, fetches: &[ChainFetch], verify_data: bool) {
        if self.scheme == Scheme::NonSecure {
            return;
        }
        if block_memo_hit {
            self.crypto.pay_with_hit(self.pad_full, self.pad_memo_share);
        } else {
            self.crypto.pay(self.pad_full);
        }
        if verify_data {
            self.crypto.verify_mac();
        }
        for f in fetches {
            if f.verify_memo_hit {
                self.crypto.pay_with_hit(self.pad_full, self.pad_memo_share);
            } else {
                self.crypto.pay(self.pad_full);
            }
            self.crypto.verify_mac();
        }
    }

    /// Samples every metric into the registry and appends an epoch snapshot.
    /// Counters are mirrored absolutely from the engine's own cumulative
    /// tallies (so the hot path pays nothing between boundaries); gauges are
    /// point-in-time.
    fn snapshot_epoch(&mut self) {
        if self.tele.is_none() {
            return;
        }
        let stats = self.stats;
        let crypto = self.crypto;
        let cache = self.counter_cache.stats();
        let (table, osm, budget) = match self.rmcc.as_ref() {
            Some(r) => (
                r.table_stats(0),
                r.observed_system_max(),
                Some(*r.budget(0)),
            ),
            None => (TableStats::default(), 0, None),
        };
        // Conformance: fraction of live (touched) data counters whose value
        // the table can currently serve. The histogram is a BTreeMap, so
        // iteration order is the sorted counter values.
        let conformance = match (self.meta.as_ref(), self.rmcc.as_ref()) {
            (Some(m), Some(r)) => {
                let hist = m.value_histogram();
                let mut total = 0u64;
                let mut covered = 0u64;
                for (v, n) in &hist {
                    total = total.saturating_add(*n);
                    if r.table(0).probe(*v) {
                        covered = covered.saturating_add(*n);
                    }
                }
                if total == 0 {
                    0.0
                } else {
                    covered as f64 / total as f64
                }
            }
            _ => 0.0,
        };
        let hits = table.group_hits + table.mru_hits;
        let lookups = table.lookups();
        let ep_hits = hits.saturating_sub(self.prev_table_hits);
        let ep_lookups = lookups.saturating_sub(self.prev_table_lookups);
        self.prev_table_hits = hits;
        self.prev_table_lookups = lookups;
        let epoch_hit_rate = if ep_lookups == 0 {
            0.0
        } else {
            ep_hits as f64 / ep_lookups as f64
        };

        self.epochs_done += 1;
        let (epoch, accesses) = (self.epochs_done, self.accesses_seen);
        let Some(ids) = self.tele.as_ref() else {
            return;
        };
        let Some(active) = self.telemetry.active_mut() else {
            return;
        };
        let reg = &mut active.registry;
        reg.set_counter(ids.data_reads, stats.data_reads);
        reg.set_counter(ids.data_writes, stats.data_writes);
        reg.set_counter(ids.counter_misses, stats.counter_misses);
        reg.set_counter(ids.counter_fetches, stats.counter_fetches);
        reg.set_counter(ids.counter_writebacks, stats.counter_writebacks);
        reg.set_counter(ids.relevels_l0, stats.relevels_l0);
        reg.set_counter(ids.relevels_hi, stats.relevels_hi);
        reg.set_counter(ids.read_triggered_writes, stats.read_triggered_writes);
        reg.set_counter(ids.total_requests, stats.total_requests);
        reg.set_counter(ids.cache_hits, cache.hits);
        reg.set_counter(ids.cache_misses, cache.misses);
        reg.set_counter(ids.table_group_hits, table.group_hits);
        reg.set_counter(ids.table_mru_hits, table.mru_hits);
        reg.set_counter(ids.table_misses, table.misses);
        reg.set_counter(ids.table_insertions, table.insertions);
        reg.set_counter(ids.table_evictions, table.evictions);
        reg.set_counter(ids.table_shadow_promotions, table.shadow_promotions);
        reg.set_counter(ids.table_mru_harvests, table.mru_harvests);
        reg.set_counter(ids.aes_paid, crypto.aes_paid);
        reg.set_counter(ids.aes_saved, crypto.aes_saved);
        reg.set_counter(ids.clmul_ops, crypto.clmul_ops);
        reg.set_counter(ids.mac_verifies, crypto.mac_verifies);
        reg.set_counter(
            ids.budget_spent_total,
            budget.map_or(0, |b| b.total_spent()),
        );
        reg.set_counter(ids.osm, osm);
        reg.set_gauge(ids.cache_hit_rate, cache.hit_rate());
        reg.set_gauge(ids.table_hit_rate, table.hit_rate());
        reg.set_gauge(ids.table_hit_rate_epoch, epoch_hit_rate);
        reg.set_gauge(ids.conformance_ratio, conformance);
        reg.set_gauge(
            ids.budget_spent_epoch,
            budget.map_or(0.0, |b| b.epoch_spent() as f64),
        );
        reg.set_gauge(
            ids.budget_carry_over,
            budget.map_or(0.0, |b| b.carry_over()),
        );
        reg.set_gauge(ids.budget_available, budget.map_or(0.0, |b| b.available()));
        reg.set_gauge(ids.aes_saved_fraction, crypto.aes_saved_fraction());
        active.snapshot(epoch, accesses);
    }

    /// Flushes a trailing partial epoch (if any requests arrived since the
    /// last boundary) and renders the recorded series as JSONL. Returns
    /// `None` when the engine was built without telemetry. Calling it again
    /// without further traffic re-renders the same series.
    pub fn finish_telemetry(&mut self) -> Option<String> {
        if self.telemetry.is_on() && self.epoch_progress > 0 {
            self.epoch_progress = 0;
            self.snapshot_epoch();
        }
        self.telemetry.to_jsonl()
    }

    /// The engine's telemetry handle (the `Off` variant unless
    /// [`SystemConfig::telemetry`] enabled it).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The static-model crypto tally. Only accumulates while telemetry is
    /// on; zero otherwise.
    pub fn crypto_stats(&self) -> CryptoStats {
        self.crypto
    }

    /// Walks the counter cache from level 0 upward until a hit (or the
    /// root), filling missed levels and returning the fetches plus any side
    /// traffic from dirty victims. `dirty_l0` marks the L0 access as a
    /// write (writeback flow).
    fn resolve_chain(
        &mut self,
        l0_index: u64,
        dirty_l0: bool,
        fetches: &mut Vec<ChainFetch>,
        side: &mut Vec<SideRequest>,
    ) -> Option<usize> {
        let meta = self.meta.as_mut().expect("secure scheme");
        let depth = meta.layout().depth();
        let mut victims = VecDeque::new();
        let mut hit_level = None;
        let mut level = 0;
        let mut index = l0_index;
        loop {
            if level >= depth {
                break; // reached the on-chip root
            }
            let addr = meta.layout().node_addr(level, index);
            let outcome = self.counter_cache.access(addr >> 6, dirty_l0 && level == 0);
            match outcome {
                rmcc_cache::set_assoc::AccessOutcome::Hit => {
                    hit_level = Some(level);
                    break;
                }
                rmcc_cache::set_assoc::AccessOutcome::Miss { evicted } => {
                    if let Some(e) = evicted {
                        if e.dirty {
                            victims.push_back(e.addr << 6);
                        }
                    }
                    // Verification of this fetched node needs an OTP from
                    // its protecting counter; check the level-above table.
                    let protecting_value = meta.node_counter(level, index);
                    let verify_memo_hit = match self.rmcc.as_mut() {
                        Some(r) if r.covers_level(level + 1) => {
                            let result = r.lookup(level + 1, protecting_value);
                            if level == 0 {
                                self.stats.memo_l1.record(result, true);
                            }
                            result.is_hit()
                        }
                        _ => false,
                    };
                    fetches.push(ChainFetch {
                        level,
                        addr,
                        verify_memo_hit,
                    });
                    index = match meta.layout().parent_index(level, index) {
                        Some(p) => p,
                        None => break, // parent is the root
                    };
                    level += 1;
                }
            }
        }
        // Handle dirty victims (and any cascade they cause).
        while let Some(victim_addr) = victims.pop_front() {
            self.write_back_node(victim_addr, side, &mut victims);
        }
        hit_level
    }

    /// A dirty metadata block leaves the counter cache: write it to memory
    /// and bump its protecting counter, releveling ancestors as needed.
    fn write_back_node(
        &mut self,
        addr: u64,
        side: &mut Vec<SideRequest>,
        victims: &mut VecDeque<u64>,
    ) {
        let meta = self.meta.as_mut().expect("secure scheme");
        let Some((level, index)) = meta.layout().locate(addr) else {
            return;
        };
        side.push(SideRequest {
            addr,
            is_write: true,
            kind: SideKind::CounterWriteback,
        });
        self.stats.counter_writebacks += 1;

        let (parent_level, parent_index) = meta
            .layout()
            .parent_loc(level, index)
            .expect("writeback addressed a node outside the layout");
        let slot = meta.layout().parent_slot(index);
        let arity = meta.org().tree_arity() as u64;
        let depth = meta.layout().depth();

        // Bump the protecting counter — memoization-aware when a table
        // covers it (the L1 table covers counters of L0 blocks).
        let rmcc = self.rmcc.as_mut();
        let (releveled, charged) = match rmcc {
            Some(r) if r.covers_level(parent_level) => {
                let out = meta.with_block_mut(parent_level, parent_index, |cb| {
                    r.update_counter(parent_level, cb, slot, false)
                });
                let out = out.expect("writeback updates always apply");
                (out.releveled, out.charged_requests)
            }
            _ => {
                let releveled = meta.with_block_mut(parent_level, parent_index, |cb| {
                    let target = cb.value(slot) + 1;
                    match cb.try_write(slot, target) {
                        Ok(()) => false,
                        Err(of) => {
                            cb.relevel(of.min_relevel_target);
                            true
                        }
                    }
                });
                (releveled, 0)
            }
        };
        self.stats.rmcc_charged_requests += charged;

        if releveled {
            // Every child of the parent changed its protecting counter:
            // re-MAC them all (read + write each).
            self.stats.relevels_hi += 1;
            for child_slot in 0..arity {
                let child = parent_index * arity + child_slot;
                let child_addr = meta
                    .layout()
                    .node_addr(level, child.min(meta.layout().level_count(level) - 1));
                side.push(SideRequest {
                    addr: child_addr,
                    is_write: false,
                    kind: SideKind::OverflowHigher,
                });
                side.push(SideRequest {
                    addr: child_addr,
                    is_write: true,
                    kind: SideKind::OverflowHigher,
                });
                self.stats.overflow_hi_requests += 2;
            }
        }

        // The parent's state changed: it must become dirty in the counter
        // cache (unless the parent is the on-chip root).
        if parent_level < depth {
            let parent_addr = meta.layout().node_addr(parent_level, parent_index);
            if let rmcc_cache::set_assoc::AccessOutcome::Miss { evicted: Some(e) } =
                self.counter_cache.access(parent_addr >> 6, true)
            {
                if e.dirty {
                    victims.push_back(e.addr << 6);
                }
            }
        }
    }

    /// Services a data-block read (an LLC miss) at physical address `paddr`.
    pub fn on_read(&mut self, paddr: u64) -> ReadOutcome {
        let mut out = ReadOutcome::default();
        self.stats.data_reads += 1;
        if self.scheme == Scheme::NonSecure {
            self.tick(1);
            return out;
        }
        let data_block = paddr / BLOCK_BYTES;
        let (l0_index, slot) = {
            let meta = self.meta.as_mut().expect("secure scheme");
            (
                meta.layout().l0_index(data_block),
                meta.layout().l0_slot(data_block),
            )
        };
        out.cache_hit_level = self.resolve_chain(l0_index, false, &mut out.fetches, &mut out.side);
        let counter_missed = out.counter_missed();
        if counter_missed {
            self.stats.counter_misses += 1;
        }

        let meta = self.meta.as_mut().expect("secure scheme");
        out.counter_value = meta.block(0, l0_index).value(slot);
        let system_max = meta.max_observed();

        if let Some(r) = self.rmcc.as_mut() {
            r.note_system_max(system_max);
            let result = r.lookup(0, out.counter_value);
            self.stats.memo_l0.record(result, counter_missed);
            out.l0_memo_hit = result.is_hit();

            if counter_missed {
                // The 92% metric: L0 memoized and the L1 side satisfied.
                let l1_ok = match out.fetches.iter().find(|f| f.level == 0) {
                    Some(f0) => {
                        let l1_fetched = out.fetches.iter().any(|f| f.level == 1);
                        !l1_fetched || f0.verify_memo_hit
                    }
                    None => true,
                };
                if out.l0_memo_hit && l1_ok {
                    self.stats.accelerated_counter_misses += 1;
                }

                // Read-triggered memoization-aware update (§IV-C1).
                if !out.l0_memo_hit {
                    let meta = self.meta.as_mut().expect("secure scheme");
                    let updated =
                        meta.with_block_mut(0, l0_index, |cb| r.update_counter(0, cb, slot, true));
                    if let Some(u) = updated {
                        self.stats.read_triggered_writes += 1;
                        self.stats.rmcc_charged_requests += u.charged_requests;
                        out.counter_value = u.new_value;
                        out.side.push(SideRequest {
                            addr: paddr,
                            is_write: true,
                            kind: SideKind::ReadTriggeredReencrypt,
                        });
                        // The counter block is now dirty in the cache.
                        self.counter_cache.access(
                            self.meta
                                .as_mut()
                                .expect("secure")
                                .layout()
                                .node_addr(0, l0_index)
                                >> 6,
                            true,
                        );
                    }
                }
            }
        }

        if self.telemetry.is_on() {
            self.note_op_crypto(out.l0_memo_hit, &out.fetches, true);
            let depth = out.fetches.len() as u64;
            if let (Some(active), Some(ids)) = (self.telemetry.active_mut(), self.tele.as_ref()) {
                active.registry.observe(ids.chain_depth, depth);
            }
        }
        self.stats.counter_fetches += out.fetches.len() as u64;
        let requests = 1 + out.fetches.len() as u64 + out.side.len() as u64;
        self.tick(requests);
        out
    }

    /// Services a dirty-data writeback at physical address `paddr`.
    pub fn on_writeback(&mut self, paddr: u64) -> WriteOutcome {
        let mut out = WriteOutcome::default();
        self.stats.data_writes += 1;
        if self.scheme == Scheme::NonSecure {
            self.tick(1);
            return out;
        }
        let data_block = paddr / BLOCK_BYTES;
        let (l0_index, slot, coverage) = {
            let meta = self.meta.as_mut().expect("secure scheme");
            (
                meta.layout().l0_index(data_block),
                meta.layout().l0_slot(data_block),
                meta.org().coverage() as u64,
            )
        };
        self.resolve_chain(l0_index, true, &mut out.fetches, &mut out.side);

        // Counter update.
        let meta = self.meta.as_mut().expect("secure scheme");
        let (new_value, releveled, charged, landed_memoized) = match self.rmcc.as_mut() {
            Some(r) => {
                r.note_system_max(meta.max_observed());
                let u = meta
                    .with_block_mut(0, l0_index, |cb| r.update_counter(0, cb, slot, false))
                    .expect("writeback updates always apply");
                (
                    u.new_value,
                    u.releveled,
                    u.charged_requests,
                    u.landed_on_memoized,
                )
            }
            None => {
                let (v, releveled) = meta.with_block_mut(0, l0_index, |cb| {
                    let target = cb.value(slot) + 1;
                    match cb.try_write(slot, target) {
                        Ok(()) => (target, false),
                        Err(of) => {
                            cb.relevel(of.min_relevel_target);
                            (of.min_relevel_target, true)
                        }
                    }
                });
                (v, releveled, 0, false)
            }
        };
        out.counter_value = new_value;
        out.releveled = releveled;
        self.stats.rmcc_charged_requests += charged;

        if releveled {
            // Re-encrypt every covered data block: read + write each.
            self.stats.relevels_l0 += 1;
            let base = l0_index * coverage;
            for s in 0..coverage {
                let addr = (base + s) * BLOCK_BYTES;
                out.side.push(SideRequest {
                    addr,
                    is_write: false,
                    kind: SideKind::OverflowL0,
                });
                out.side.push(SideRequest {
                    addr,
                    is_write: true,
                    kind: SideKind::OverflowL0,
                });
                self.stats.overflow_l0_requests += 2;
            }
        }

        if self.telemetry.is_on() {
            // Writebacks re-encrypt under the new counter value; the
            // counter-only AES is memoized when the update conformed.
            self.note_op_crypto(landed_memoized, &out.fetches, false);
        }
        self.stats.counter_fetches += out.fetches.len() as u64;
        let requests = 1 + out.fetches.len() as u64 + out.side.len() as u64;
        self.tick(requests);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_secmem::tree::InitPolicy;
    use rmcc_telemetry::JsonValue;

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::lifetime(scheme);
        c.counter_init = InitPolicy::Zero;
        c.data_bytes = 1 << 30;
        c
    }

    #[test]
    fn non_secure_has_no_metadata_traffic() {
        let mut e = MetaEngine::new(&cfg(Scheme::NonSecure));
        let out = e.on_read(0x1000);
        assert!(out.fetches.is_empty());
        assert_eq!(e.stats().total_requests, 1);
        assert_eq!(e.stats().counter_misses, 0);
    }

    #[test]
    fn first_read_walks_to_root_then_hits() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        let out = e.on_read(0x1000);
        // Cold caches: every in-memory level fetched.
        assert!(!out.fetches.is_empty());
        assert!(out.counter_missed());
        assert_eq!(out.cache_hit_level, None);
        // Second read of the same region: L0 now cached.
        let out2 = e.on_read(0x1040);
        assert!(out2.fetches.is_empty());
        assert_eq!(out2.cache_hit_level, Some(0));
        assert_eq!(e.stats().counter_misses, 1);
        assert_eq!(e.stats().data_reads, 2);
    }

    #[test]
    fn distant_blocks_share_higher_tree_levels() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        e.on_read(0);
        // A block in a different counter block but same L1 subtree: only L0
        // should miss.
        let out = e.on_read(128 * 64);
        assert_eq!(out.fetches.len(), 1);
        assert_eq!(out.fetches[0].level, 0);
        assert_eq!(out.cache_hit_level, Some(1));
    }

    #[test]
    fn writeback_increments_counter() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        let w1 = e.on_writeback(0x2000);
        assert_eq!(w1.counter_value, 1);
        let w2 = e.on_writeback(0x2000);
        assert_eq!(w2.counter_value, 2);
        assert!(!w2.releveled);
    }

    #[test]
    fn sc64_releveling_generates_overflow_traffic() {
        let mut e = MetaEngine::new(&cfg(Scheme::Sc64));
        for _ in 0..127 {
            let w = e.on_writeback(0x3000);
            assert!(!w.releveled);
        }
        let w = e.on_writeback(0x3000);
        assert!(w.releveled, "128th write overflows the 7-bit minor");
        let overflow_reqs = w
            .side
            .iter()
            .filter(|s| s.kind == SideKind::OverflowL0)
            .count();
        assert_eq!(overflow_reqs, 2 * 64);
        assert_eq!(e.stats().relevels_l0, 1);
    }

    #[test]
    fn rmcc_conforms_writebacks_and_hits_on_read() {
        // Bootstrap: with zero-init counters and nothing memoized yet,
        // every first writeback lands on the baseline value 1.
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        for i in 0..200u64 {
            let w = e.on_writeback(i * 64);
            assert_eq!(
                w.counter_value, 1,
                "unmemoized writeback increments from zero"
            );
        }
        assert_eq!(
            e.stats().memo_l0.all_group_hits,
            0,
            "nothing memoized during bootstrap"
        );
        // A memoized group changes that: writes conform and reads hit.
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        e.rmcc.as_mut().unwrap().seed_group(0, 5);
        let w = e.on_writeback(0x4000);
        assert_eq!(w.counter_value, 5, "write conforms to the memoized group");
        let r = e.on_read(0x4000);
        assert!(r.l0_memo_hit, "read of a conformed counter hits the table");
        assert_eq!(e.stats().memo_l0.all_group_hits, 1);
    }

    #[test]
    fn read_triggered_update_reencrypts() {
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        e.rmcc.as_mut().unwrap().seed_group(0, 50);
        let r = e.on_read(0x8000);
        assert!(!r.l0_memo_hit, "value 0 is not memoized");
        assert_eq!(
            r.counter_value, 50,
            "read-triggered update conformed the counter"
        );
        assert!(r
            .side
            .iter()
            .any(|s| s.kind == SideKind::ReadTriggeredReencrypt && s.is_write));
        assert_eq!(e.stats().read_triggered_writes, 1);
        // Next read hits.
        let r2 = e.on_read(0x8000);
        assert!(r2.l0_memo_hit);
    }

    #[test]
    fn dirty_counter_eviction_bumps_l1_and_writes_back() {
        let mut small = cfg(Scheme::Morphable);
        small.counter_cache_bytes = 4 * 64; // 4 lines → constant thrashing
        small.counter_cache_ways = 2;
        let mut e = MetaEngine::new(&small);
        // Dirty a counter block, then thrash the cache with distant reads.
        e.on_writeback(0);
        let mut saw_writeback = false;
        for i in 1..200u64 {
            let out = e.on_read(i * 128 * 64 * 7);
            if out
                .side
                .iter()
                .any(|s| s.kind == SideKind::CounterWriteback)
            {
                saw_writeback = true;
                break;
            }
        }
        assert!(saw_writeback, "dirty counter block never written back");
        assert!(e.stats().counter_writebacks > 0);
    }

    #[test]
    fn telemetry_snapshots_at_epoch_boundaries() {
        let mut c = cfg(Scheme::Rmcc);
        c.telemetry = true;
        c.rmcc.epoch_accesses = 64;
        let mut e = MetaEngine::new(&c);
        for i in 0..200u64 {
            e.on_writeback(i * 64);
            e.on_read(i * 64);
        }
        let jsonl = e.finish_telemetry().expect("telemetry on");
        let rows = rmcc_telemetry::parse_jsonl(&jsonl).expect("self-emitted JSONL parses");
        assert!(rows.len() >= 2, "several epochs elapsed");
        // Epoch ordinals count up from 1; accesses are cumulative and land
        // exactly on the boundary for all but a trailing partial epoch.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.get("epoch").and_then(JsonValue::as_f64),
                Some((i + 1) as f64)
            );
        }
        let accesses = |i: usize| {
            rows[i]
                .get("accesses")
                .and_then(JsonValue::as_f64)
                .expect("accesses column")
        };
        assert_eq!(accesses(0), 64.0);
        assert_eq!(accesses(1), 128.0);
        // Counters are cumulative (non-decreasing) across epochs.
        for w in rows.windows(2) {
            let a = w[0].get("mac_verifies").and_then(JsonValue::as_f64);
            let b = w[1].get("mac_verifies").and_then(JsonValue::as_f64);
            assert!(a <= b, "cumulative counters never decrease");
        }
        let last = rows.last().expect("non-empty");
        let val = |k: &str| last.get(k).and_then(JsonValue::as_f64).unwrap_or(-1.0);
        assert!(val("data_reads") >= 200.0);
        assert!(val("aes_paid") > 0.0, "crypto model charged");
        assert!(val("mac_verifies") > 0.0);
        assert!(val("osm") >= 0.0, "osm column present");
        let conf = val("conformance_ratio");
        assert!((0.0..=1.0).contains(&conf), "conformance in [0,1]");
    }

    #[test]
    fn telemetry_off_is_inert() {
        let mut e = MetaEngine::new(&cfg(Scheme::Rmcc));
        e.on_writeback(0);
        assert!(!e.telemetry().is_on());
        assert!(e.finish_telemetry().is_none());
        assert_eq!(e.crypto_stats(), CryptoStats::default());
    }

    #[test]
    fn stats_rates() {
        let mut e = MetaEngine::new(&cfg(Scheme::Morphable));
        e.on_read(0);
        e.on_read(64);
        let s = e.stats();
        assert!((s.counter_miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(MetaStats::default().counter_miss_rate(), 0.0);
        assert_eq!(MetaStats::default().accelerated_rate(), 0.0);
    }
}
