//! Seeded memoization-dynamics workload — the paper's Figure 6–8 story as
//! a reproducible run.
//!
//! Drives a [`MetaEngine`] with a hot/cold, write-heavy access stream from a
//! cold (zero-counter) start, with telemetry on and a short epoch so a small
//! run still crosses many epoch boundaries. The resulting JSONL series shows
//! the self-reinforcing trajectory: the memoization table populates from the
//! high-value monitor, writes start conforming to the memoized ladder, and
//! the conformance ratio and table hit rate climb epoch over epoch.
//!
//! Everything here is a pure function of [`DynamicsConfig`]: the stream
//! comes from a xorshift64 generator seeded from the config, so the same
//! config yields byte-identical telemetry — the golden and convergence tests
//! rely on that.

use rmcc_crypto::stats::CryptoStats;
use rmcc_secmem::tree::InitPolicy;

use crate::config::{Scheme, SystemConfig};
use crate::meta_engine::{MetaEngine, MetaStats};

/// Parameters of a dynamics run. Every field participates in determinism:
/// two equal configs produce byte-identical telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicsConfig {
    /// Secure-memory scheme to drive (the interesting one is [`Scheme::Rmcc`]).
    pub scheme: Scheme,
    /// Seed for the xorshift64 access-stream generator.
    pub seed: u64,
    /// Memory operations (reads + writebacks) to issue.
    pub steps: u64,
    /// Total distinct 64 B data blocks touched.
    pub working_set_blocks: u64,
    /// Size of the hot subset (the first `hot_blocks` of the working set).
    pub hot_blocks: u64,
    /// Probability, in per-mille, that an operation targets the hot subset.
    pub hot_permille: u32,
    /// Probability, in per-mille, that an operation is a writeback.
    pub write_permille: u32,
    /// Telemetry epoch length in memory requests (shrunk from the paper's
    /// 1,000,000 so short runs still resolve multiple epochs).
    pub epoch_accesses: u64,
}

impl DynamicsConfig {
    /// A small run (tens of thousands of operations, a handful of epochs)
    /// sized for tests and the golden JSONL fixture. The mix is chosen so
    /// the high-value monitor's 2 K-read insertion trigger (§IV-C3) fires
    /// organically within the first epochs: enough reads of already-written
    /// counters to bootstrap the table, enough writes to then conform the
    /// working set to it.
    pub fn small() -> Self {
        DynamicsConfig {
            scheme: Scheme::Rmcc,
            seed: 0x00D1_5EA5_ED00_0001,
            steps: 40_000,
            working_set_blocks: 1_024,
            hot_blocks: 128,
            hot_permille: 800,
            write_permille: 400,
            epoch_accesses: 8_000,
        }
    }
}

/// What a dynamics run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsResult {
    /// The epoch-resolved telemetry series, rendered as JSONL.
    pub jsonl: String,
    /// End-of-run functional statistics.
    pub stats: MetaStats,
    /// End-of-run static-model crypto tally.
    pub crypto: CryptoStats,
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Runs the dynamics stream and returns the engine with its telemetry still
/// open (no trailing partial epoch flushed), for tests that want to inspect
/// columns directly.
pub fn run_dynamics_engine(cfg: &DynamicsConfig) -> MetaEngine {
    let mut sys = SystemConfig::lifetime(cfg.scheme);
    sys.telemetry = true;
    // Cold start: an empty table and all-zero counters, so the series shows
    // convergence happening rather than the §V pre-converged steady state.
    sys.counter_init = InitPolicy::Zero;
    sys.data_bytes = 1 << 30;
    sys.rmcc.epoch_accesses = cfg.epoch_accesses;
    let mut engine = MetaEngine::new(&sys);

    let mut s = cfg.seed | 1; // xorshift must not start at zero
    let hot = cfg.hot_blocks.max(1);
    let cold_span = cfg.working_set_blocks.saturating_sub(cfg.hot_blocks).max(1);
    for _ in 0..cfg.steps {
        let block = if xorshift(&mut s) % 1_000 < u64::from(cfg.hot_permille) {
            xorshift(&mut s) % hot
        } else {
            cfg.hot_blocks + xorshift(&mut s) % cold_span
        };
        let addr = block * 64;
        if xorshift(&mut s) % 1_000 < u64::from(cfg.write_permille) {
            engine.on_writeback(addr);
        } else {
            engine.on_read(addr);
        }
    }
    engine
}

/// Runs the dynamics stream to completion and renders its telemetry.
pub fn run_dynamics(cfg: &DynamicsConfig) -> DynamicsResult {
    let mut engine = run_dynamics_engine(cfg);
    let jsonl = engine.finish_telemetry().unwrap_or_default();
    DynamicsResult {
        jsonl,
        stats: *engine.stats(),
        crypto: engine.crypto_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_is_byte_identical() {
        let cfg = DynamicsConfig::small();
        let a = run_dynamics(&cfg);
        let b = run_dynamics(&cfg);
        assert_eq!(a, b, "dynamics runs are pure functions of their config");
        assert!(!a.jsonl.is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut cfg = DynamicsConfig::small();
        let a = run_dynamics(&cfg);
        cfg.seed ^= 0xFFFF;
        let b = run_dynamics(&cfg);
        assert_ne!(a.jsonl, b.jsonl, "the seed drives the stream");
    }

    #[test]
    fn small_run_resolves_multiple_epochs() {
        let r = run_dynamics(&DynamicsConfig::small());
        let rows = rmcc_telemetry::parse_jsonl(&r.jsonl).expect("valid JSONL");
        assert!(rows.len() >= 4, "got {} epochs", rows.len());
        assert!(r.stats.data_writes > 0);
        assert!(r.crypto.aes_paid > 0);
    }
}
