//! Multi-core detailed simulation.
//!
//! §V evaluates GraphBig "as four threads" sharing one memory system. This
//! runner models `n` cores — each with the private L1/L2 and ROB/MLP state
//! of [`crate::core_model::CoreModel`] — contending for a shared LLC, one
//! counter cache, one set of memoization tables, and one DDR4 channel.
//! Threads execute the same kernel over disjoint partitions (their traces
//! are offset into separate address regions, modeling partitioned inputs).

use std::collections::VecDeque;

use rmcc_cache::set_assoc::SetAssocCache;
use rmcc_dram::config::Ps;
use rmcc_workloads::trace::TraceEvent;
use rmcc_workloads::workload::{Scale, Workload};

use crate::config::SystemConfig;
use crate::mc::MemoryController;
use crate::page_map::PageMap;

/// Virtual-address stride separating per-thread partitions (1 TB).
const THREAD_STRIDE: u64 = 1 << 40;

/// Per-core private state.
struct Core {
    l1: SetAssocCache,
    l2: SetAssocCache,
    dispatch: Ps,
    last_load_done: Ps,
    rob: VecDeque<(u64, Ps)>,
    rob_occupancy: u64,
    outstanding: VecDeque<Ps>,
    trace: Vec<TraceEvent>,
    cursor: usize,
    horizon: Ps,
}

/// Result of a multi-core run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCoreReport {
    /// Cores simulated.
    pub cores: usize,
    /// Wall-clock of the slowest core.
    pub elapsed_ps: Ps,
    /// Total instructions across cores.
    pub instrs: u64,
    /// Total LLC misses across cores.
    pub llc_misses: u64,
    /// Mean LLC-miss latency (ns) at the shared memory controller.
    pub mean_miss_latency_ns: f64,
}

/// Runs `workload` on `n_cores` cores sharing one memory system.
///
/// Each core executes the workload over its own partition (a distinct
/// placement seed and address region), so footprint and memory pressure
/// scale with the core count, as in the paper's 4-thread GraphBig runs.
///
/// # Panics
///
/// Panics if `n_cores` is zero.
pub fn run_multicore(
    workload: Workload,
    scale: Scale,
    n_cores: usize,
    cfg: &SystemConfig,
) -> MultiCoreReport {
    assert!(n_cores > 0, "need at least one core");
    let graph = workload
        .uses_graph()
        .then(|| rmcc_workloads::workload::graph_for(scale));

    // Collect per-thread traces, offset into disjoint address regions.
    let mut cores: Vec<Core> = (0..n_cores)
        .map(|t| {
            let mut trace: Vec<TraceEvent> = Vec::new();
            workload.run_on(graph.as_ref(), scale, &mut trace);
            for ev in &mut trace {
                ev.addr += t as u64 * THREAD_STRIDE;
            }
            Core {
                l1: SetAssocCache::with_capacity(cfg.hierarchy.l1.bytes, 64, cfg.hierarchy.l1.ways),
                l2: SetAssocCache::with_capacity(cfg.hierarchy.l2.bytes, 64, cfg.hierarchy.l2.ways),
                dispatch: 0,
                last_load_done: 0,
                rob: VecDeque::new(),
                rob_occupancy: 0,
                outstanding: VecDeque::new(),
                trace,
                cursor: 0,
                horizon: 0,
            }
        })
        .collect();

    let mut llc = SetAssocCache::with_capacity(cfg.hierarchy.l3.bytes, 64, cfg.hierarchy.l3.ways);
    let mut mc = MemoryController::new(cfg);
    let page_map = PageMap::new(cfg.page_size, 0x9a9e, cfg.data_bytes);

    let cycle = cfg.cycle_ps() as f64;
    let width = cfg.retire_width as f64;
    let mut instrs_total = 0u64;
    let mut llc_misses = 0u64;

    // Lockstep: always advance the core that is furthest behind, so shared
    // structures see an approximately time-ordered request stream.
    loop {
        let Some(ci) = (0..n_cores)
            .filter(|&i| cores[i].cursor < cores[i].trace.len())
            .min_by_key(|&i| cores[i].dispatch)
        else {
            break;
        };
        let core = &mut cores[ci];
        let ev = core.trace[core.cursor];
        core.cursor += 1;

        let instrs = 1 + ev.work as u64 * cfg.work_scale as u64;
        instrs_total += instrs;
        core.dispatch += (instrs as f64 * cycle / width) as Ps;
        while core.rob_occupancy + instrs > cfg.rob_entries as u64 {
            let Some((n, done)) = core.rob.pop_front() else { break };
            core.rob_occupancy -= n;
            core.dispatch = core.dispatch.max(done);
        }

        let paddr = page_map.translate(ev.addr);
        let line = paddr >> 6;
        let mut issue = if ev.dep_on_prev_load {
            core.dispatch.max(core.last_load_done)
        } else {
            core.dispatch
        };

        // Private L1 → private L2 → shared LLC → shared MC.
        let done = if core.l1.lookup(line, ev.is_write) {
            issue + cfg.l1_latency
        } else if core.l2.lookup(line, false) {
            fill_private(core, line, ev.is_write);
            issue + cfg.l2_latency
        } else if llc.lookup(line, false) {
            fill_private(core, line, ev.is_write);
            issue + cfg.l3_latency
        } else {
            llc_misses += 1;
            if let Some(victim) = llc.fill(line, false) {
                if victim.dirty {
                    mc.write(issue, victim.addr << 6);
                }
            }
            // Dirty private victims drain into the LLC.
            fill_private_dirty_into(core, &mut llc, &mut mc, issue, line, ev.is_write);
            while let Some(&front) = core.outstanding.front() {
                if front <= issue {
                    core.outstanding.pop_front();
                } else if core.outstanding.len() >= cfg.max_outstanding_misses {
                    issue = front;
                    core.outstanding.pop_front();
                } else {
                    break;
                }
            }
            let done = mc.read(issue + cfg.l3_latency, line << 6);
            core.outstanding.push_back(done);
            done
        };

        if ev.is_write {
            core.rob.push_back((instrs, core.dispatch));
        } else {
            core.rob.push_back((instrs, done));
            core.last_load_done = done;
        }
        core.rob_occupancy += instrs;
        core.horizon = core.horizon.max(done).max(core.dispatch);
    }

    let elapsed = cores.iter().map(|c| c.horizon).max().unwrap_or(0);
    MultiCoreReport {
        cores: n_cores,
        elapsed_ps: elapsed,
        instrs: instrs_total,
        llc_misses,
        mean_miss_latency_ns: mc.latency_stats().mean_ns(),
    }
}

/// Fills a line into both private levels after a lower-level hit.
fn fill_private(core: &mut Core, line: u64, dirty: bool) {
    core.l2.fill(line, false);
    core.l1.fill(line, dirty);
}

/// Fills private levels on a full miss, draining dirty victims into the
/// shared LLC (and memory if the LLC evicts dirty lines in turn).
fn fill_private_dirty_into(
    core: &mut Core,
    llc: &mut SetAssocCache,
    mc: &mut MemoryController,
    at: Ps,
    line: u64,
    dirty: bool,
) {
    if let Some(v) = core.l2.fill(line, false) {
        if v.dirty {
            if let Some(v3) = llc.fill(v.addr, true) {
                if v3.dirty {
                    mc.write(at, v3.addr << 6);
                }
            }
        }
    }
    if let Some(v) = core.l1.fill(line, dirty) {
        if v.dirty {
            if let Some(v2) = core.l2.fill(v.addr, true) {
                if v2.dirty {
                    if let Some(v3) = llc.fill(v2.addr, true) {
                        if v3.dirty {
                            mc.write(at, v3.addr << 6);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::detailed_scaled(Scheme::Morphable);
        c.data_bytes = 1 << 33;
        c
    }

    #[test]
    fn more_cores_do_more_work_in_more_time() {
        let one = run_multicore(Workload::Canneal, Scale::Tiny, 1, &cfg());
        let four = run_multicore(Workload::Canneal, Scale::Tiny, 4, &cfg());
        assert_eq!(four.cores, 4);
        assert_eq!(four.instrs, 4 * one.instrs);
        // Contention on one channel: at least as slow as 1 core, but far
        // faster than 4x serial (the cores do overlap).
        assert!(four.elapsed_ps >= one.elapsed_ps);
        assert!(
            four.elapsed_ps < 4 * one.elapsed_ps,
            "no parallelism modeled: {} vs {}",
            four.elapsed_ps,
            one.elapsed_ps
        );
        assert!(four.llc_misses >= 2 * one.llc_misses);
        assert!(four.mean_miss_latency_ns >= 0.9 * one.mean_miss_latency_ns);
    }

    #[test]
    fn single_core_multicore_is_deterministic() {
        let a = run_multicore(Workload::Omnetpp, Scale::Tiny, 2, &cfg());
        let b = run_multicore(Workload::Omnetpp, Scale::Tiny, 2, &cfg());
        assert_eq!(a, b);
    }
}
