//! Multi-core detailed simulation.
//!
//! §V evaluates GraphBig "as four threads" sharing one memory system. This
//! runner models `n` cores — each a [`CoreEngine`] with its own private
//! L1/L2 and ROB/MLP state — contending for a shared LLC, one counter
//! cache, one set of memoization tables, and one DDR4 channel. Threads
//! execute the same kernel over disjoint partitions: the trace is buffered
//! *once* (in a [`VecSink`] — the lockstep interleaving genuinely needs
//! random access) and each core replays it offset into its own address
//! region, modeling partitioned inputs without `n` trace copies.

use rmcc_dram::config::Ps;
use rmcc_workloads::trace::{TraceSource, VecSink};
use rmcc_workloads::workload::{Scale, Workload};

use crate::config::SystemConfig;
use crate::engine::CoreEngine;
use crate::mc::MemoryController;
use crate::meta_engine::MetaStats;
use crate::page_map::PageMap;
use crate::runner::Runner;

/// Virtual-address stride separating per-thread partitions (1 TB).
const THREAD_STRIDE: u64 = 1 << 40;

/// Result of a multi-core run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCoreReport {
    /// Cores simulated.
    pub cores: usize,
    /// Wall-clock of the slowest core.
    pub elapsed_ps: Ps,
    /// Total instructions across cores.
    pub instrs: u64,
    /// Total LLC misses across cores.
    pub llc_misses: u64,
    /// Mean LLC-miss latency (ns) at the shared memory controller.
    pub mean_miss_latency_ns: f64,
    /// Functional metadata statistics of the shared memory controller.
    pub meta: MetaStats,
}

/// The lockstep n-core runner: buffers the source's trace once, then
/// interleaves per-core replay by simulated time against one shared LLC,
/// metadata engine, and DRAM channel.
#[derive(Debug, Clone)]
pub struct MultiCoreRunner {
    cfg: SystemConfig,
    n_cores: usize,
}

impl MultiCoreRunner {
    /// Builds a runner for `n_cores` cores under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn new(cfg: &SystemConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "need at least one core");
        MultiCoreRunner {
            cfg: cfg.clone(),
            n_cores,
        }
    }
}

impl Runner for MultiCoreRunner {
    type Report = MultiCoreReport;

    fn run(&mut self, source: &mut dyn TraceSource) -> MultiCoreReport {
        // One shared buffer; each core replays it offset into its own 1 TB
        // region (the seed buffered one full copy per core).
        let mut buf = VecSink::default();
        source.stream(&mut buf);
        let events = &buf.events;

        let n = self.n_cores;
        let mut engines: Vec<CoreEngine> = (0..n).map(|_| CoreEngine::new(&self.cfg)).collect();
        let mut cursors = vec![0usize; n];
        let mut llc = CoreEngine::llc_for(&self.cfg);
        let mut mc = MemoryController::new(&self.cfg);
        let page_map = PageMap::new(self.cfg.page_size, 0x9a9e, self.cfg.data_bytes);

        // Lockstep: always advance the core that is furthest behind, so
        // shared structures see an approximately time-ordered request
        // stream.
        while let Some(ci) = (0..n)
            .filter(|&i| cursors[i] < events.len())
            .min_by_key(|&i| engines[i].dispatch())
        {
            let mut ev = events[cursors[ci]];
            cursors[ci] += 1;
            ev.addr += ci as u64 * THREAD_STRIDE;
            engines[ci].step(ev, &page_map, &mut llc, &mut mc);
        }

        let mut elapsed = 0;
        let mut instrs = 0;
        let mut llc_misses = 0;
        for e in &engines {
            let s = e.stats();
            elapsed = s.elapsed_ps.max(elapsed);
            instrs += s.instrs;
            llc_misses += s.llc_misses;
        }
        MultiCoreReport {
            cores: n,
            elapsed_ps: elapsed,
            instrs,
            llc_misses,
            mean_miss_latency_ns: mc.latency_stats().mean_ns(),
            meta: *mc.meta_stats(),
        }
    }
}

/// Runs `workload` on `n_cores` cores sharing one memory system.
///
/// Each core executes the workload over its own partition (a distinct
/// address region), so footprint and memory pressure scale with the core
/// count, as in the paper's 4-thread GraphBig runs.
///
/// # Panics
///
/// Panics if `n_cores` is zero.
///
/// # Errors
///
/// Typed like the other runners; the source builds its own graph, so this
/// cannot fail in practice.
pub fn run_multicore(
    workload: Workload,
    scale: Scale,
    n_cores: usize,
    cfg: &SystemConfig,
) -> Result<MultiCoreReport, rmcc_workloads::workload::WorkloadError> {
    let mut buf = VecSink::default();
    workload.source(scale).try_stream(&mut buf)?;
    Ok(MultiCoreRunner::new(cfg, n_cores).run(&mut buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::detailed_scaled(Scheme::Morphable);
        c.data_bytes = 1 << 33;
        c
    }

    #[test]
    fn more_cores_do_more_work_in_more_time() {
        let one = run_multicore(Workload::Canneal, Scale::Tiny, 1, &cfg()).expect("runs");
        let four = run_multicore(Workload::Canneal, Scale::Tiny, 4, &cfg()).expect("runs");
        assert_eq!(four.cores, 4);
        assert_eq!(four.instrs, 4 * one.instrs);
        // Contention on one channel: at least as slow as 1 core, but far
        // faster than 4x serial (the cores do overlap).
        assert!(four.elapsed_ps >= one.elapsed_ps);
        assert!(
            four.elapsed_ps < 4 * one.elapsed_ps,
            "no parallelism modeled: {} vs {}",
            four.elapsed_ps,
            one.elapsed_ps
        );
        assert!(four.llc_misses >= 2 * one.llc_misses);
        assert!(four.mean_miss_latency_ns >= 0.9 * one.mean_miss_latency_ns);
    }

    #[test]
    fn single_core_multicore_is_deterministic() {
        let a = run_multicore(Workload::Omnetpp, Scale::Tiny, 2, &cfg()).expect("runs");
        let b = run_multicore(Workload::Omnetpp, Scale::Tiny, 2, &cfg()).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn shared_metadata_stats_are_reported() {
        let r = run_multicore(Workload::Canneal, Scale::Tiny, 2, &cfg()).expect("runs");
        // Every LLC miss is a demand read at the shared metadata engine.
        assert_eq!(r.meta.data_reads, r.llc_misses);
    }
}
