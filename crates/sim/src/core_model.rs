//! The single-core detailed pipeline — the reproduction's stand-in for
//! gem5's out-of-order CPU.
//!
//! The timing logic itself (ROB, MSHR window, dependent-load serialization,
//! private L1/L2 filter) lives in the shared [`CoreEngine`]; this module
//! packages one engine with its own LLC, page map, and memory controller so
//! a workload can stream straight in via [`TraceSink`].

use rmcc_cache::set_assoc::SetAssocCache;
use rmcc_workloads::trace::{TraceEvent, TraceSink, TraceSource};

use crate::config::SystemConfig;
use crate::engine::CoreEngine;
use crate::mc::MemoryController;
use crate::page_map::PageMap;
use crate::runner::Runner;

pub use crate::engine::CoreStats;

/// One [`CoreEngine`] plus a private memory system (LLC, page map, memory
/// controller); implements [`TraceSink`] so workloads stream straight into
/// it, and [`Runner`] for the unified runner API.
pub struct CoreModel {
    cfg: SystemConfig,
    engine: CoreEngine,
    llc: SetAssocCache,
    page_map: PageMap,
    mc: MemoryController,
}

impl std::fmt::Debug for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreModel")
            .field("scheme", &self.cfg.scheme)
            .field("stats", &self.engine.stats())
            .finish_non_exhaustive()
    }
}

impl CoreModel {
    /// Builds a core + memory system for `cfg`, with physical placement
    /// derived from `placement_seed`.
    pub fn new(cfg: &SystemConfig, placement_seed: u64) -> Self {
        CoreModel {
            engine: CoreEngine::new(cfg),
            llc: CoreEngine::llc_for(cfg),
            page_map: PageMap::new(cfg.page_size, placement_seed, cfg.data_bytes),
            mc: MemoryController::new(cfg),
            cfg: cfg.clone(),
        }
    }

    /// The memory controller (metadata, DRAM, and latency statistics).
    pub fn mc(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Execution statistics; `elapsed_ps` is final once the trace ends.
    pub fn stats(&self) -> CoreStats {
        self.engine.stats()
    }

    /// The scheme this model simulates.
    pub fn scheme(&self) -> crate::config::Scheme {
        self.cfg.scheme
    }
}

impl TraceSink for CoreModel {
    fn emit(&mut self, ev: TraceEvent) {
        self.engine
            .step(ev, &self.page_map, &mut self.llc, &mut self.mc);
    }
}

impl CoreModel {
    /// The detailed report for everything streamed so far.
    pub fn report(&mut self) -> crate::detailed::DetailedReport {
        let stats = self.stats();
        crate::detailed::DetailedReport {
            scheme: self.cfg.scheme,
            elapsed_ps: stats.elapsed_ps,
            instrs: stats.instrs,
            llc_misses: stats.llc_misses,
            mean_miss_latency_ns: self.mc.latency_stats().mean_ns(),
            dram: self.mc.dram_stats(),
            meta: *self.mc.meta_stats(),
        }
    }
}

impl Runner for CoreModel {
    type Report = crate::detailed::DetailedReport;

    fn run(&mut self, source: &mut dyn TraceSource) -> Self::Report {
        source.stream(self);
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use rmcc_secmem::tree::InitPolicy;
    use rmcc_workloads::trace::TraceEvent;

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::table1(scheme);
        c.counter_init = InitPolicy::Zero;
        c.data_bytes = 1 << 30;
        c
    }

    fn ev(addr: u64, is_write: bool, dep: bool) -> TraceEvent {
        TraceEvent {
            addr,
            is_write,
            work: 2,
            dep_on_prev_load: dep,
        }
    }

    #[test]
    fn cache_hits_are_fast() {
        let mut core = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        core.emit(ev(0x1000, false, false)); // cold miss
        let t_miss = core.stats().elapsed_ps;
        for _ in 0..100 {
            core.emit(ev(0x1000, false, false)); // L1 hits
        }
        let t_total = core.stats().elapsed_ps;
        // Hit events advance time only at the front-end dispatch rate
        // ((1 + work×scale) / width cycles each), far below miss latency.
        let c = cfg(Scheme::NonSecure);
        let per_event = (1 + 2 * c.work_scale as u64) * c.cycle_ps() / c.retire_width as u64;
        assert!(
            t_total - t_miss <= 100 * per_event + c.l1_latency + 1_000,
            "hits cost {} over {} expected",
            t_total - t_miss,
            100 * per_event
        );
        assert_eq!(core.stats().llc_misses, 1);
    }

    #[test]
    fn dependent_chains_serialize() {
        // Pointer chasing over distinct lines: each load waits for the
        // previous one.
        let mut chained = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        let mut parallel = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        for i in 0..64u64 {
            let a = 0x10_0000 + i * 4096;
            chained.emit(ev(a, false, true));
            parallel.emit(ev(a, false, false));
        }
        let tc = chained.stats().elapsed_ps;
        let tp = parallel.stats().elapsed_ps;
        assert!(tc > tp * 3, "chained {tc} vs parallel {tp}");
    }

    #[test]
    fn secure_memory_slows_dependent_misses() {
        let mut non = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        let mut sec = CoreModel::new(&cfg(Scheme::Morphable), 1);
        for i in 0..128u64 {
            // Strided far apart: LLC misses with distinct counter blocks.
            let a = i * (1 << 20);
            non.emit(ev(a, false, true));
            sec.emit(ev(a, false, true));
        }
        let tn = non.stats().elapsed_ps;
        let ts = sec.stats().elapsed_ps;
        assert!(ts > tn, "secure {ts} must exceed non-secure {tn}");
    }

    #[test]
    fn writes_do_not_block_retire() {
        let mut core = CoreModel::new(&cfg(Scheme::Morphable), 1);
        for i in 0..64u64 {
            core.emit(ev(i * (1 << 20), true, false));
        }
        let t = core.stats().elapsed_ps;
        // 64 posted writes shouldn't cost 64 full memory latencies.
        assert!(t < 64 * 50_000, "writes stalled the core: {t}");
    }

    #[test]
    fn stats_count_instructions() {
        let mut core = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        core.emit(ev(0, false, false));
        core.emit(ev(64, false, false));
        let s = core.stats();
        assert_eq!(s.mem_instrs, 2);
        // (1 + work×work_scale) per event.
        let expected = 2 * (1 + 2 * cfg(Scheme::NonSecure).work_scale as u64);
        assert_eq!(s.instrs, expected);
        assert!(s.ipns() > 0.0);
    }
}
