//! The trace-driven core timing model — the reproduction's stand-in for
//! gem5's out-of-order CPU.
//!
//! A 4-wide, 192-entry-ROB core is approximated with the standard
//! interval-style model: instructions dispatch at the front-end rate, loads
//! issue as soon as their operands allow (dependent loads wait for the
//! previous load), a bounded miss window models MSHR-limited memory-level
//! parallelism, and a full ROB stalls dispatch until the oldest instruction
//! retires. What matters for RMCC is faithfully captured: how much of a
//! load's latency the dependence structure actually exposes.

use std::collections::VecDeque;

use rmcc_cache::hierarchy::{Hierarchy, Level};
use rmcc_dram::config::Ps;
use rmcc_workloads::trace::{TraceEvent, TraceSink};

use crate::config::SystemConfig;
use crate::mc::MemoryController;
use crate::page_map::PageMap;

/// Execution summary of one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Trace events (memory instructions) executed.
    pub mem_instrs: u64,
    /// Total instructions (memory + `work`).
    pub instrs: u64,
    /// Total execution time.
    pub elapsed_ps: Ps,
    /// LLC misses issued to the memory controller.
    pub llc_misses: u64,
}

impl CoreStats {
    /// Instructions per nanosecond (for sanity checks; figures use
    /// normalized runtime).
    pub fn ipns(&self) -> f64 {
        if self.elapsed_ps == 0 {
            0.0
        } else {
            self.instrs as f64 * 1e3 / self.elapsed_ps as f64
        }
    }
}

/// The core + cache + MC pipeline; implement [`TraceSink`] so workloads
/// stream straight into it.
pub struct CoreModel {
    cfg: SystemConfig,
    hierarchy: Hierarchy,
    page_map: PageMap,
    mc: MemoryController,
    /// In-flight instructions in program order: `(instruction count,
    /// completion time)`. Occupancy is counted in *instructions* so the
    /// 192-entry ROB limit matches Table I.
    rob: VecDeque<(u64, Ps)>,
    /// Instructions currently occupying the ROB.
    rob_occupancy: u64,
    /// Completion times of outstanding LLC misses (MSHR window).
    outstanding: VecDeque<Ps>,
    /// Front-end dispatch cursor.
    dispatch: Ps,
    /// Completion time of the most recent load.
    last_load_done: Ps,
    /// Latest completion seen (simulation end candidate).
    horizon: Ps,
    stats: CoreStats,
}

impl std::fmt::Debug for CoreModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreModel")
            .field("scheme", &self.cfg.scheme)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl CoreModel {
    /// Builds a core + memory system for `cfg`, with physical placement
    /// derived from `placement_seed`.
    pub fn new(cfg: &SystemConfig, placement_seed: u64) -> Self {
        CoreModel {
            hierarchy: Hierarchy::new(cfg.hierarchy),
            page_map: PageMap::new(cfg.page_size, placement_seed, cfg.data_bytes),
            mc: MemoryController::new(cfg),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            rob_occupancy: 0,
            outstanding: VecDeque::new(),
            dispatch: 0,
            last_load_done: 0,
            horizon: 0,
            stats: CoreStats::default(),
            cfg: cfg.clone(),
        }
    }

    /// The memory controller (metadata, DRAM, and latency statistics).
    pub fn mc(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Execution statistics; `elapsed_ps` is final once the trace ends.
    pub fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.elapsed_ps = self.horizon.max(self.dispatch);
        s
    }

    fn hit_latency(&self, level: Level) -> Ps {
        match level {
            Level::L1 => self.cfg.l1_latency,
            Level::L2 => self.cfg.l2_latency,
            Level::L3 => self.cfg.l3_latency,
        }
    }
}

impl TraceSink for CoreModel {
    fn emit(&mut self, ev: TraceEvent) {
        let cycle = self.cfg.cycle_ps() as f64;
        let width = self.cfg.retire_width as f64;
        let instrs = 1 + ev.work as u64 * self.cfg.work_scale as u64;
        self.stats.mem_instrs += 1;
        self.stats.instrs += instrs;

        // Front end: dispatch advances at `width` instructions per cycle.
        self.dispatch += (instrs as f64 * cycle / width) as Ps;

        // ROB pressure: with a full window, dispatch waits for the oldest
        // instructions to complete (in-order retire).
        while self.rob_occupancy + instrs > self.cfg.rob_entries as u64 {
            let Some((n, oldest)) = self.rob.pop_front() else { break };
            self.rob_occupancy -= n;
            self.dispatch = self.dispatch.max(oldest);
        }

        let paddr = self.page_map.translate(ev.addr);
        let line = paddr >> 6;
        let outcome = self.hierarchy.access(line, ev.is_write);

        // Issue time: dependent loads wait for the feeding load's data.
        let mut issue = if ev.dep_on_prev_load {
            self.dispatch.max(self.last_load_done)
        } else {
            self.dispatch
        };

        let done = match outcome.hit_level {
            Some(level) => issue + self.hit_latency(level),
            None => {
                self.stats.llc_misses += 1;
                // MSHR window: a full window delays the new miss.
                while let Some(&front) = self.outstanding.front() {
                    if front <= issue {
                        self.outstanding.pop_front();
                    } else if self.outstanding.len() >= self.cfg.max_outstanding_misses {
                        issue = front;
                        self.outstanding.pop_front();
                    } else {
                        break;
                    }
                }
                let done = self.mc.read(issue + self.cfg.l3_latency, line << 6);
                self.outstanding.push_back(done);
                done
            }
        };

        // Dirty LLC victims go to memory as writebacks (posted).
        for wb in &outcome.writebacks {
            self.mc.write(issue, wb << 6);
        }

        if ev.is_write {
            // Stores complete at dispatch via the store buffer.
            self.rob.push_back((instrs, self.dispatch));
        } else {
            self.rob.push_back((instrs, done));
            self.last_load_done = done;
        }
        self.rob_occupancy += instrs;
        self.horizon = self.horizon.max(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use rmcc_secmem::tree::InitPolicy;
    use rmcc_workloads::trace::TraceEvent;

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::table1(scheme);
        c.counter_init = InitPolicy::Zero;
        c.data_bytes = 1 << 30;
        c
    }

    fn ev(addr: u64, is_write: bool, dep: bool) -> TraceEvent {
        TraceEvent { addr, is_write, work: 2, dep_on_prev_load: dep }
    }

    #[test]
    fn cache_hits_are_fast() {
        let mut core = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        core.emit(ev(0x1000, false, false)); // cold miss
        let t_miss = core.stats().elapsed_ps;
        for _ in 0..100 {
            core.emit(ev(0x1000, false, false)); // L1 hits
        }
        let t_total = core.stats().elapsed_ps;
        // Hit events advance time only at the front-end dispatch rate
        // ((1 + work×scale) / width cycles each), far below miss latency.
        let c = cfg(Scheme::NonSecure);
        let per_event = (1 + 2 * c.work_scale as u64) * c.cycle_ps() / c.retire_width as u64;
        assert!(
            t_total - t_miss <= 100 * per_event + c.l1_latency + 1_000,
            "hits cost {} over {} expected",
            t_total - t_miss,
            100 * per_event
        );
        assert_eq!(core.stats().llc_misses, 1);
    }

    #[test]
    fn dependent_chains_serialize() {
        // Pointer chasing over distinct lines: each load waits for the
        // previous one.
        let mut chained = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        let mut parallel = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        for i in 0..64u64 {
            let a = 0x10_0000 + i * 4096;
            chained.emit(ev(a, false, true));
            parallel.emit(ev(a, false, false));
        }
        let tc = chained.stats().elapsed_ps;
        let tp = parallel.stats().elapsed_ps;
        assert!(tc > tp * 3, "chained {tc} vs parallel {tp}");
    }

    #[test]
    fn secure_memory_slows_dependent_misses() {
        let mut non = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        let mut sec = CoreModel::new(&cfg(Scheme::Morphable), 1);
        for i in 0..128u64 {
            // Strided far apart: LLC misses with distinct counter blocks.
            let a = i * (1 << 20);
            non.emit(ev(a, false, true));
            sec.emit(ev(a, false, true));
        }
        let tn = non.stats().elapsed_ps;
        let ts = sec.stats().elapsed_ps;
        assert!(ts > tn, "secure {ts} must exceed non-secure {tn}");
    }

    #[test]
    fn writes_do_not_block_retire() {
        let mut core = CoreModel::new(&cfg(Scheme::Morphable), 1);
        for i in 0..64u64 {
            core.emit(ev(i * (1 << 20), true, false));
        }
        let t = core.stats().elapsed_ps;
        // 64 posted writes shouldn't cost 64 full memory latencies.
        assert!(t < 64 * 50_000, "writes stalled the core: {t}");
    }

    #[test]
    fn stats_count_instructions() {
        let mut core = CoreModel::new(&cfg(Scheme::NonSecure), 1);
        core.emit(ev(0, false, false));
        core.emit(ev(64, false, false));
        let s = core.stats();
        assert_eq!(s.mem_instrs, 2);
        // (1 + work×work_scale) per event.
        let expected = 2 * (1 + 2 * cfg(Scheme::NonSecure).work_scale as u64);
        assert_eq!(s.instrs, expected);
        assert!(s.ipns() > 0.0);
    }
}
