//! The timing memory controller: drives the metadata engine's decisions
//! through the DDR4 channel model and computes when secure reads actually
//! complete.
//!
//! The read-path latency model follows Figure 5: the data access, the
//! counter-chain fetches, and the address-only AES all start immediately;
//! the counter-dependent AES serializes after the counter arrives unless
//! RMCC's memoization table short-circuits it into a table lookup plus a
//! carry-less multiply.

use std::collections::VecDeque;

use rmcc_dram::channel::{Channel, ReqKind, TrafficClass};
use rmcc_dram::config::{ns, Ps};

use crate::config::{Scheme, SystemConfig};
use crate::meta_engine::{MetaEngine, MetaStats, SideKind, SideRequest};

/// Counter-cache access latency (a small SRAM in the MC).
const COUNTER_CACHE_LAT: Ps = 2_000;

/// GF dot-product / XOR latency at the end of verification ("highly
/// parallel", §II-C).
const COMBINE_LAT: Ps = 1_000;

/// Read-latency accounting (Figure 14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Completed demand reads.
    pub reads: u64,
    /// Sum of end-to-end read latencies.
    pub total_ps: Ps,
}

impl LatencyStats {
    /// Mean LLC-miss latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_ps as f64 / self.reads as f64 / 1e3
        }
    }
}

/// The timing memory controller.
pub struct MemoryController {
    cfg: SystemConfig,
    engine: MetaEngine,
    dram: Channel,
    /// Completion times of in-flight relevel batches (§V: at most two
    /// outstanding overflows; later ones stall the triggering request).
    overflow_slots: VecDeque<Ps>,
    latency: LatencyStats,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("scheme", &self.cfg.scheme)
            .field("latency", &self.latency)
            .finish_non_exhaustive()
    }
}

impl MemoryController {
    /// Builds the MC for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        MemoryController {
            engine: MetaEngine::new(cfg),
            dram: Channel::new(cfg.dram.clone()),
            overflow_slots: VecDeque::new(),
            latency: LatencyStats::default(),
            cfg: cfg.clone(),
        }
    }

    /// Functional metadata statistics.
    pub fn meta_stats(&self) -> &MetaStats {
        self.engine.stats()
    }

    /// DRAM channel statistics (bandwidth breakdown, Figure 12).
    pub fn dram_stats(&self) -> rmcc_dram::channel::DramStats {
        self.dram.stats()
    }

    /// Read-latency statistics (Figure 14).
    pub fn latency_stats(&self) -> LatencyStats {
        self.latency
    }

    /// The metadata engine (for end-of-run table inspection).
    pub fn engine(&mut self) -> &mut MetaEngine {
        &mut self.engine
    }

    fn side_class(kind: SideKind) -> TrafficClass {
        match kind {
            SideKind::CounterWriteback => TrafficClass::Counter,
            SideKind::OverflowL0 => TrafficClass::OverflowL0,
            SideKind::OverflowHigher => TrafficClass::OverflowHigher,
            SideKind::ReadTriggeredReencrypt => TrafficClass::Data,
        }
    }

    /// Issues non-overflow side traffic at `at`; overflow bursts go through
    /// the paced overflow engine. Returns a stall time the *triggering*
    /// request must respect when the overflow engine was saturated.
    fn issue_side(&mut self, at: Ps, side: &[SideRequest]) -> Ps {
        let mut stall_until = at;
        let mut overflow_batch: Vec<&SideRequest> = Vec::new();
        for s in side {
            match s.kind {
                SideKind::OverflowL0 | SideKind::OverflowHigher => overflow_batch.push(s),
                _ => {
                    let kind = if s.is_write {
                        ReqKind::Write
                    } else {
                        ReqKind::Read
                    };
                    self.dram.access(at, s.addr, kind, Self::side_class(s.kind));
                }
            }
        }
        if !overflow_batch.is_empty() {
            // Admission control: at most `max_outstanding_overflows` batches.
            while let Some(&front) = self.overflow_slots.front() {
                if front <= at {
                    self.overflow_slots.pop_front();
                } else if self.overflow_slots.len() >= self.cfg.max_outstanding_overflows {
                    stall_until = front;
                    self.overflow_slots.pop_front();
                } else {
                    break;
                }
            }
            // The batch trickles out a few requests at a time (§V: at most
            // eight queue slots), which the bus serializes anyway; space
            // requests by one burst each.
            let mut t = stall_until;
            let mut last_done = stall_until;
            for s in &overflow_batch {
                let kind = if s.is_write {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let done = self
                    .dram
                    .access(t, s.addr, kind, Self::side_class(s.kind))
                    .done;
                last_done = done;
                t += self.cfg.dram.t_burst;
            }
            self.overflow_slots.push_back(last_done);
        }
        stall_until
    }

    /// Services a demand read (LLC miss) issued at `at`; returns when the
    /// decrypted, verified data is ready for the core.
    pub fn read(&mut self, at: Ps, paddr: u64) -> Ps {
        let outcome = self.engine.on_read(paddr);
        let at = self.issue_side(at, &outcome.side).max(at);
        let data_done = self
            .dram
            .access(at, paddr, ReqKind::Read, TrafficClass::Data)
            .done;

        if self.cfg.scheme == Scheme::NonSecure {
            let done = data_done;
            self.latency.reads += 1;
            self.latency.total_ps += done - at;
            return done;
        }

        let org = self.cfg.scheme.counter_org().expect("secure scheme");
        let decode = org.decode_latency_ps();
        let aes = self.cfg.aes_latency;
        let memo_fast = self.cfg.table_lookup_latency + self.cfg.clmul_latency;

        // Fetch every missed chain level in parallel (indices derive from
        // the address alone), innermost first in `outcome.fetches`.
        let fetch_done: Vec<Ps> = outcome
            .fetches
            .iter()
            .map(|f| {
                self.dram
                    .access(at, f.addr, ReqKind::Read, TrafficClass::Counter)
                    .done
            })
            .collect();

        // Resolve verification top-down. `value_ready` starts at the point
        // the deepest *known* counter value is usable: the cache-hit level
        // (or the on-chip root).
        let mut value_ready = at + COUNTER_CACHE_LAT + decode;
        for (f, &fd) in outcome.fetches.iter().zip(fetch_done.iter()).rev() {
            if self.cfg.speculative_verify {
                // PoisonIvy-style speculation: consume fetched counters
                // before their MACs check out; verification runs off the
                // critical path (squash on the vanishingly rare failure).
                value_ready = value_ready.max(fd) + decode;
                continue;
            }
            // The OTP to verify this node: starts once the protecting value
            // is ready; memoized values skip the AES.
            let otp_lat = if f.verify_memo_hit { memo_fast } else { aes };
            let otp_ready = value_ready + otp_lat;
            // Node verified (MAC compare) and decoded once both the data
            // and the OTP are there.
            value_ready = otp_ready.max(fd) + COMBINE_LAT + decode;
        }

        // Data OTP (Figure 5): the address-only AES has been running since
        // `at`; with a memoized counter value only the lookup + clmul
        // remain after the counter is ready.
        let otp_ready = if outcome.l0_memo_hit {
            (value_ready + memo_fast).max(at + aes + self.cfg.clmul_latency)
        } else {
            value_ready + aes
        };
        let done = data_done.max(otp_ready) + COMBINE_LAT;
        self.latency.reads += 1;
        self.latency.total_ps += done - at;
        done
    }

    /// Services a dirty-data writeback at `at`. Writebacks are posted, so
    /// no completion time is returned; all traffic is accounted.
    pub fn write(&mut self, at: Ps, paddr: u64) {
        let outcome = self.engine.on_writeback(paddr);
        let at = self.issue_side(at, &outcome.side).max(at);
        for f in &outcome.fetches {
            self.dram
                .access(at, f.addr, ReqKind::Read, TrafficClass::Counter);
        }
        self.dram
            .access(at + ns(1.0), paddr, ReqKind::Write, TrafficClass::Data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_secmem::tree::InitPolicy;

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::table1(scheme);
        c.counter_init = InitPolicy::Zero;
        c.data_bytes = 1 << 30;
        c
    }

    #[test]
    fn non_secure_read_is_just_dram() {
        let mut mc = MemoryController::new(&cfg(Scheme::NonSecure));
        // Issue past the t=0 refresh window.
        let t0 = ns(1_000.0);
        let done = mc.read(t0, 0x4000);
        // Closed-row DRAM: ~30 ns.
        assert!(
            done - t0 >= ns(25.0) && done - t0 < ns(120.0),
            "lat = {}",
            done - t0
        );
    }

    #[test]
    fn secure_counter_miss_costs_more_than_counter_hit() {
        let mut mc = MemoryController::new(&cfg(Scheme::Morphable));
        let t0 = 0;
        let cold = mc.read(t0, 0x4000); // chain all misses
                                        // Re-read nearby after the chain is cached.
        let t1 = cold + ns(1000.0);
        let warm_done = mc.read(t1, 0x4000 + 64);
        let cold_lat = cold - t0;
        let warm_lat = warm_done - t1;
        assert!(
            cold_lat > warm_lat + ns(10.0),
            "cold {cold_lat} vs warm {warm_lat}"
        );
    }

    #[test]
    fn secure_adds_latency_over_non_secure() {
        let mut sec = MemoryController::new(&cfg(Scheme::Morphable));
        let mut non = MemoryController::new(&cfg(Scheme::NonSecure));
        let s = sec.read(0, 0x8000);
        let n = non.read(0, 0x8000);
        assert!(s > n, "secure {s} vs non-secure {n}");
    }

    #[test]
    fn rmcc_memo_hit_shaves_aes_from_counter_miss() {
        let mut rm = MemoryController::new(&cfg(Scheme::Rmcc));
        let mut base = MemoryController::new(&cfg(Scheme::Morphable));
        // Conform a block's counter to a memoized value, then evict nothing:
        // read a *different* counter block (cold) with the same value.
        rm.engine().seed_rmcc_group(0, 5);
        rm.engine().seed_rmcc_group(1, 1);
        // Write to block in cb 0 so its value becomes 5.
        rm.write(0, 0);
        base.write(0, 0);
        let t = ns(100_000.0);
        let r = rm.read(t, 0);
        let b = base.read(t, 0);
        // Same cache state (L0 resident after write): both fast; now force
        // a counter miss by reading far away after conforming its counter
        // via a write.
        rm.write(r, 300 * 128 * 64);
        base.write(b, 300 * 128 * 64);
        // Thrash the counter cache so the L0 block for that address evicts.
        let mut t_rm = r + ns(1000.0);
        let mut t_base = b + ns(1000.0);
        for i in 0..3000u64 {
            let a = (1000 + i) * 64 * 128; // distinct counter blocks, all sets
            t_rm = rm.read(t_rm, a) + ns(10.0);
            t_base = base.read(t_base, a) + ns(10.0);
        }
        let lat_rm = {
            let t = t_rm + ns(5000.0);
            rm.read(t, 300 * 128 * 64) - t
        };
        let lat_base = {
            let t = t_base + ns(5000.0);
            base.read(t, 300 * 128 * 64) - t
        };
        assert!(
            lat_rm + ns(5.0) < lat_base,
            "rmcc {lat_rm} should beat baseline {lat_base} by ~AES"
        );
    }

    #[test]
    fn latency_stats_accumulate() {
        let mut mc = MemoryController::new(&cfg(Scheme::Morphable));
        mc.read(0, 0);
        mc.read(ns(10_000.0), 64);
        let l = mc.latency_stats();
        assert_eq!(l.reads, 2);
        assert!(l.mean_ns() > 10.0);
        assert_eq!(LatencyStats::default().mean_ns(), 0.0);
    }

    #[test]
    fn overflow_bursts_are_paced() {
        let mut mc = MemoryController::new(&cfg(Scheme::Sc64));
        // Force relevels by hammering one block 128+ times.
        for i in 0..130u64 {
            mc.write(i * ns(100.0), 0x5000);
        }
        let s = mc.meta_stats();
        assert!(s.relevels_l0 >= 1);
        assert!(s.overflow_l0_requests >= 128);
        // DRAM saw the overflow class.
        let d = mc.dram_stats();
        assert!(d.classes[2].requests >= 128);
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use crate::config::{Scheme, SystemConfig};
    use rmcc_secmem::tree::InitPolicy;

    /// Speculative verification must cut cold-chain latency but cannot beat
    /// hiding the decryption AES itself.
    #[test]
    fn speculation_helps_cold_chains_only() {
        let mut base_cfg = SystemConfig::table1(Scheme::Morphable);
        base_cfg.counter_init = InitPolicy::Zero;
        base_cfg.data_bytes = 1 << 30;
        let mut spec_cfg = base_cfg.clone();
        spec_cfg.speculative_verify = true;

        let mut base = MemoryController::new(&base_cfg);
        let mut spec = MemoryController::new(&spec_cfg);
        let t0 = ns(1_000.0);
        // Cold read: full chain fetch; speculation skips the per-level
        // verify AES serialization.
        let b = base.read(t0, 0x4000) - t0;
        let s = spec.read(t0, 0x4000) - t0;
        assert!(
            s < b,
            "speculation {s} must beat baseline {b} on cold chains"
        );
        // But the final data OTP still pays the AES after the counter
        // arrives: speculation keeps at least one AES on the path.
        let cfg = &base_cfg;
        assert!(
            s >= cfg.aes_latency,
            "decryption AES cannot be speculated away"
        );
    }
}
