//! Deterministic virtual→physical page placement.
//!
//! Workload kernels emit virtual addresses; the OS decides physical
//! placement. We model allocation with a keyed affine-and-rotate
//! permutation over the virtual page number, restricted to the machine's
//! physical frame count — bijective (no two virtual pages collide on a
//! frame), deterministic, and seed-dependent, like a hash-based physical
//! allocator. Under the paper's 2 MB huge pages an entire Morphable counter
//! block's 8 KB span stays physically contiguous; under 4 KB pages adjacent
//! virtual pages scatter, which is exactly the effect §III describes for
//! Morphable under small pages.

use rmcc_cache::tlb::PageSize;

/// A bijective virtual→physical page mapper over a bounded physical space.
///
/// # Examples
///
/// ```
/// use rmcc_cache::tlb::PageSize;
/// use rmcc_sim::page_map::PageMap;
///
/// let map = PageMap::new(PageSize::Huge2M, 1, 128 << 30);
/// // Same-page bytes stay together…
/// assert_eq!(map.translate(0x10) >> 21, map.translate(0x1fffff) >> 21);
/// // …and the mapping is deterministic.
/// assert_eq!(
///     map.translate(12345),
///     PageMap::new(PageSize::Huge2M, 1, 128 << 30).translate(12345)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct PageMap {
    page: PageSize,
    /// log2 of the physical frame count.
    frame_bits: u32,
    mul1: u64,
    mul2: u64,
    add1: u64,
    add2: u64,
    rot: u32,
}

impl PageMap {
    /// Creates a mapper for `page`-sized frames within `phys_bytes` of
    /// physical memory, with placement `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `phys_bytes` holds less than two frames.
    pub fn new(page: PageSize, seed: u64, phys_bytes: u64) -> Self {
        let frames = phys_bytes >> page.shift();
        assert!(frames >= 2, "physical memory must hold at least two pages");
        let frame_bits = 63 - frames.leading_zeros(); // floor(log2)
        let mut z = seed.wrapping_add(0x243f_6a88_85a3_08d3);
        let mut next = || {
            z = z.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
            z
        };
        PageMap {
            page,
            frame_bits,
            mul1: next() | 1, // odd → bijective mod 2^k
            mul2: next() | 1,
            add1: next(),
            add2: next(),
            rot: (next() as u32 % frame_bits.max(1)).max(1),
        }
    }

    /// The page size being mapped.
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    /// Physical frames addressable (a power of two).
    pub fn frames(&self) -> u64 {
        1u64 << self.frame_bits
    }

    /// Permutes a VPN within `[0, frames)`: affine → rotate → affine, each
    /// step bijective mod 2^frame_bits.
    fn permute(&self, vpn: u64) -> u64 {
        let k = self.frame_bits;
        let mask = (1u64 << k) - 1;
        let mut p = (vpn.wrapping_mul(self.mul1).wrapping_add(self.add1)) & mask;
        p = ((p << self.rot) | (p >> (k - self.rot))) & mask;
        (p.wrapping_mul(self.mul2).wrapping_add(self.add2)) & mask
    }

    /// Translates a virtual byte address to its physical byte address.
    /// Virtual pages beyond the physical frame count alias (wrap), like an
    /// over-committed machine would swap; workload footprints are sized to
    /// stay below physical capacity. High VPN bits (e.g. per-thread
    /// partition offsets) are folded into the permutation input so distinct
    /// regions land on distinct pseudo-random frames rather than aliasing
    /// trivially.
    pub fn translate(&self, vaddr: u64) -> u64 {
        let shift = self.page.shift();
        let vpn = vaddr >> shift;
        let folded = vpn ^ (vpn >> self.frame_bits).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let offset = vaddr & ((1u64 << shift) - 1);
        (self.permute(folded & ((1u64 << self.frame_bits) - 1)) << shift) | offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijective_over_all_frames() {
        let map = PageMap::new(PageSize::Huge2M, 42, 1 << 30); // 512 frames
        let mut seen = std::collections::HashSet::new();
        for vpn in 0..map.frames() {
            let p = map.translate(vpn << 21) >> 21;
            assert!(p < map.frames(), "frame {p} out of bounds");
            assert!(seen.insert(p), "frame collision at vpn {vpn}");
        }
        assert_eq!(seen.len() as u64, map.frames());
    }

    #[test]
    fn physical_addresses_stay_in_bounds() {
        let phys = 128u64 << 30;
        let map = PageMap::new(PageSize::Huge2M, 7, phys);
        for v in [0u64, 1 << 21, 1 << 30, (1 << 36) + 12345] {
            assert!(map.translate(v) < phys, "vaddr {v:#x} escaped");
        }
    }

    #[test]
    fn offsets_preserved() {
        let map = PageMap::new(PageSize::Small4K, 7, 1 << 30);
        for v in [0u64, 5, 4095, 4096 + 17, 1 << 29] {
            assert_eq!(map.translate(v) & 4095, v & 4095);
        }
    }

    #[test]
    fn distant_regions_do_not_alias_trivially() {
        // Two regions 1 TB apart (per-thread partitions) must not collapse
        // onto identical frame sequences.
        let map = PageMap::new(PageSize::Huge2M, 5, 1 << 33);
        let collisions = (0..256u64)
            .filter(|&i| map.translate(i << 21) == map.translate((i << 21) + (1 << 40)))
            .count();
        assert!(
            collisions < 16,
            "{collisions}/256 pages alias across regions"
        );
    }

    #[test]
    fn seeds_change_placement() {
        let a = PageMap::new(PageSize::Huge2M, 1, 128 << 30);
        let b = PageMap::new(PageSize::Huge2M, 2, 128 << 30);
        let diff = (0..100u64)
            .filter(|&i| a.translate(i << 21) != b.translate(i << 21))
            .count();
        assert!(diff > 90);
    }

    #[test]
    fn small_pages_scatter_counter_block_spans() {
        // Two adjacent 4 KB virtual pages rarely land in adjacent frames —
        // the §III effect that hurts Morphable under 4 KB pages.
        let map = PageMap::new(PageSize::Small4K, 3, 128 << 30);
        let adjacent = (0..1000u64)
            .filter(|&i| {
                let a = map.translate(i * 8192) >> 12;
                let b = map.translate(i * 8192 + 4096) >> 12;
                b == a + 1
            })
            .count();
        assert!(adjacent < 10, "{adjacent} of 1000 stayed adjacent");
    }
}
