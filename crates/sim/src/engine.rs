//! The shared per-core execution engine.
//!
//! One implementation of the interval-style core model — 4-wide dispatch,
//! 192-entry ROB, MSHR-bounded memory-level parallelism, dependent-load
//! serialization — plus the private L1/L2 filter in front of a last-level
//! cache. Both the single-core detailed runner ([`crate::core_model`]) and
//! the lockstep multicore runner ([`crate::multicore`]) drive this engine,
//! so their functional behaviour provably cannot diverge: the single-core
//! runners own their LLC, the multicore runner shares one LLC and memory
//! controller across engines.
//!
//! The cache filter replicates [`rmcc_cache::hierarchy::Hierarchy`]
//! operation-for-operation (same lookup/fill order, same dirty-victim
//! cascade), which is what keeps the detailed runner's `MetaStats`
//! byte-identical to the lifetime runner's (`tests/sim_consistency.rs`).

use std::collections::VecDeque;

use rmcc_cache::hierarchy::Level;
use rmcc_cache::set_assoc::SetAssocCache;
use rmcc_dram::config::Ps;
use rmcc_workloads::trace::TraceEvent;

use crate::config::SystemConfig;
use crate::mc::MemoryController;
use crate::page_map::PageMap;

/// Execution summary of one trace on one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Trace events (memory instructions) executed.
    pub mem_instrs: u64,
    /// Total instructions (memory + `work`).
    pub instrs: u64,
    /// Total execution time.
    pub elapsed_ps: Ps,
    /// LLC misses issued to the memory controller.
    pub llc_misses: u64,
}

impl CoreStats {
    /// Instructions per nanosecond (for sanity checks; figures use
    /// normalized runtime).
    pub fn ipns(&self) -> f64 {
        if self.elapsed_ps == 0 {
            0.0
        } else {
            self.instrs as f64 * 1e3 / self.elapsed_ps as f64
        }
    }
}

/// What one access did at the LLC boundary (the engine-internal analogue of
/// [`rmcc_cache::hierarchy::HierarchyOutcome`]).
struct FilterOutcome {
    /// The highest level that hit, or `None` for a full miss.
    hit_level: Option<Level>,
    /// Dirty LLC victims that must be written back to memory.
    writebacks: Vec<u64>,
}

/// One core's timing state: private L1/L2, ROB, MSHR window, and dispatch
/// cursor. The LLC, page map, and memory controller are passed into
/// [`CoreEngine::step`] so they can be owned (single-core) or shared
/// (multicore).
pub struct CoreEngine {
    cfg: SystemConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    /// In-flight instructions in program order: `(instruction count,
    /// completion time)`. Occupancy is counted in *instructions* so the
    /// 192-entry ROB limit matches Table I.
    rob: VecDeque<(u64, Ps)>,
    /// Instructions currently occupying the ROB.
    rob_occupancy: u64,
    /// Completion times of outstanding LLC misses (MSHR window).
    outstanding: VecDeque<Ps>,
    /// Front-end dispatch cursor.
    dispatch: Ps,
    /// Completion time of the most recent load.
    last_load_done: Ps,
    /// Latest completion seen (simulation end candidate).
    horizon: Ps,
    stats: CoreStats,
}

impl std::fmt::Debug for CoreEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreEngine")
            .field("scheme", &self.cfg.scheme)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl CoreEngine {
    /// Builds one core's private state for `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        let line = cfg.hierarchy.line_bytes;
        CoreEngine {
            l1: SetAssocCache::with_capacity(cfg.hierarchy.l1.bytes, line, cfg.hierarchy.l1.ways),
            l2: SetAssocCache::with_capacity(cfg.hierarchy.l2.bytes, line, cfg.hierarchy.l2.ways),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            rob_occupancy: 0,
            outstanding: VecDeque::new(),
            dispatch: 0,
            last_load_done: 0,
            horizon: 0,
            stats: CoreStats::default(),
            cfg: cfg.clone(),
        }
    }

    /// Builds the LLC this engine expects to run against (a convenience for
    /// runners; multicore builds one and shares it across engines).
    pub fn llc_for(cfg: &SystemConfig) -> SetAssocCache {
        SetAssocCache::with_capacity(
            cfg.hierarchy.l3.bytes,
            cfg.hierarchy.line_bytes,
            cfg.hierarchy.l3.ways,
        )
    }

    /// The front-end dispatch cursor — the lockstep scheduling key: the
    /// multicore runner always advances the engine that is furthest behind.
    pub fn dispatch(&self) -> Ps {
        self.dispatch
    }

    /// Execution statistics; `elapsed_ps` is final once the trace ends.
    pub fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.elapsed_ps = self.horizon.max(self.dispatch);
        s
    }

    fn hit_latency(&self, level: Level) -> Ps {
        match level {
            Level::L1 => self.cfg.l1_latency,
            Level::L2 => self.cfg.l2_latency,
            Level::L3 => self.cfg.l3_latency,
        }
    }

    /// Filters one line access through private L1/L2 and the given LLC,
    /// replicating `Hierarchy::access` exactly: lookups top-down, fills
    /// bottom-up, dirty victims cascading one level at a time, and only
    /// dirty LLC evictions surfacing as memory writebacks.
    fn filter(&mut self, line: u64, is_write: bool, llc: &mut SetAssocCache) -> FilterOutcome {
        let mut out = FilterOutcome {
            hit_level: None,
            writebacks: Vec::new(),
        };

        if self.l1.lookup(line, is_write) {
            out.hit_level = Some(Level::L1);
            return out;
        }
        if self.l2.lookup(line, false) {
            out.hit_level = Some(Level::L2);
        } else if llc.lookup(line, false) {
            out.hit_level = Some(Level::L3);
        } else {
            // Full miss: fetch from memory and install in the LLC.
            if let Some(v) = llc.fill(line, false) {
                if v.dirty {
                    out.writebacks.push(v.addr);
                }
            }
        }

        // Fill into L2 unless it already hit there.
        if out.hit_level != Some(Level::L2) {
            if let Some(v) = self.l2.fill(line, false) {
                if v.dirty {
                    spill_into_llc(llc, v.addr, &mut out.writebacks);
                }
            }
        }
        // Fill into L1, carrying the write's dirty bit.
        if let Some(v) = self.l1.fill(line, is_write) {
            if v.dirty {
                // Dirty L1 victim into L2, cascading further victims.
                if let Some(v2) = self.l2.fill(v.addr, true) {
                    if v2.dirty {
                        spill_into_llc(llc, v2.addr, &mut out.writebacks);
                    }
                }
            }
        }
        out
    }

    /// Executes one trace event against the shared memory system: advances
    /// dispatch, applies ROB and MSHR limits, filters the access through
    /// the caches, and issues any LLC miss and dirty writebacks to `mc`.
    pub fn step(
        &mut self,
        ev: TraceEvent,
        page_map: &PageMap,
        llc: &mut SetAssocCache,
        mc: &mut MemoryController,
    ) {
        let cycle = self.cfg.cycle_ps() as f64;
        let width = self.cfg.retire_width as f64;
        let instrs = 1 + ev.work as u64 * self.cfg.work_scale as u64;
        self.stats.mem_instrs += 1;
        self.stats.instrs += instrs;

        // Front end: dispatch advances at `width` instructions per cycle.
        self.dispatch += (instrs as f64 * cycle / width) as Ps;

        // ROB pressure: with a full window, dispatch waits for the oldest
        // instructions to complete (in-order retire).
        while self.rob_occupancy + instrs > self.cfg.rob_entries as u64 {
            let Some((n, oldest)) = self.rob.pop_front() else {
                break;
            };
            self.rob_occupancy -= n;
            self.dispatch = self.dispatch.max(oldest);
        }

        let paddr = page_map.translate(ev.addr);
        let line = paddr >> 6;
        let outcome = self.filter(line, ev.is_write, llc);

        // Issue time: dependent loads wait for the feeding load's data.
        let mut issue = if ev.dep_on_prev_load {
            self.dispatch.max(self.last_load_done)
        } else {
            self.dispatch
        };

        let done = match outcome.hit_level {
            Some(level) => issue + self.hit_latency(level),
            None => {
                self.stats.llc_misses += 1;
                // MSHR window: a full window delays the new miss.
                while let Some(&front) = self.outstanding.front() {
                    if front <= issue {
                        self.outstanding.pop_front();
                    } else if self.outstanding.len() >= self.cfg.max_outstanding_misses {
                        issue = front;
                        self.outstanding.pop_front();
                    } else {
                        break;
                    }
                }
                let done = mc.read(issue + self.cfg.l3_latency, line << 6);
                self.outstanding.push_back(done);
                done
            }
        };

        // Dirty LLC victims go to memory as writebacks (posted).
        for wb in &outcome.writebacks {
            mc.write(issue, wb << 6);
        }

        if ev.is_write {
            // Stores complete at dispatch via the store buffer.
            self.rob.push_back((instrs, self.dispatch));
        } else {
            self.rob.push_back((instrs, done));
            self.last_load_done = done;
        }
        self.rob_occupancy += instrs;
        self.horizon = self.horizon.max(done);
    }
}

/// Installs a dirty L2 victim into the LLC, emitting a memory writeback if
/// the LLC in turn evicts a dirty line (mirror of `Hierarchy::spill_into_l3`).
fn spill_into_llc(llc: &mut SetAssocCache, addr: u64, writebacks: &mut Vec<u64>) {
    if let Some(v) = llc.fill(addr, true) {
        if v.dirty {
            writebacks.push(v.addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use rmcc_cache::hierarchy::Hierarchy;
    use rmcc_secmem::tree::InitPolicy;

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::table1(scheme);
        c.counter_init = InitPolicy::Zero;
        c.data_bytes = 1 << 30;
        c
    }

    /// The engine's private-cache + LLC filter must be operation-for-
    /// operation identical to the three-level `Hierarchy` — this is the
    /// invariant that keeps detailed-mode MetaStats equal to lifetime-mode.
    #[test]
    fn filter_matches_hierarchy_exactly() {
        let c = cfg(Scheme::NonSecure);
        let mut engine = CoreEngine::new(&c);
        let mut llc = CoreEngine::llc_for(&c);
        let mut hierarchy = Hierarchy::new(c.hierarchy);

        // A mixed read/write stream with reuse, conflict, and eviction.
        let mut lines: Vec<(u64, bool)> = Vec::new();
        for i in 0..40_000u64 {
            let line = (i * 2_654_435_761) % 150_000;
            lines.push((line, i % 3 == 0));
        }
        for &(line, is_write) in &lines {
            let h = hierarchy.access(line, is_write);
            let e = engine.filter(line, is_write, &mut llc);
            assert_eq!(
                h.hit_level, e.hit_level,
                "hit level diverged at line {line}"
            );
            assert_eq!(
                h.writebacks, e.writebacks,
                "writebacks diverged at line {line}"
            );
        }
    }

    #[test]
    fn dispatch_advances_and_stats_accumulate() {
        let c = cfg(Scheme::NonSecure);
        let mut engine = CoreEngine::new(&c);
        let mut llc = CoreEngine::llc_for(&c);
        let mut mc = MemoryController::new(&c);
        let pm = PageMap::new(c.page_size, 1, c.data_bytes);
        for i in 0..10u64 {
            let ev = TraceEvent {
                addr: i * 64,
                is_write: false,
                work: 2,
                dep_on_prev_load: false,
            };
            engine.step(ev, &pm, &mut llc, &mut mc);
        }
        let s = engine.stats();
        assert_eq!(s.mem_instrs, 10);
        assert_eq!(s.instrs, 10 * (1 + 2 * c.work_scale as u64));
        assert!(engine.dispatch() > 0);
        assert!(s.elapsed_ps >= engine.dispatch());
    }
}
