//! Full-system secure-memory simulator for the RMCC reproduction — the
//! stand-in for the paper's gem5 + Ramulator + Pin methodology.
//!
//! * [`config`] — Table I as a printable [`config::SystemConfig`].
//! * [`page_map`] — bijective virtual→physical page placement.
//! * [`meta_engine`] — the shared functional metadata engine: counter
//!   cache walks, counter updates (baseline or RMCC), overflows, dirty
//!   evictions, memoization lookups, and (when enabled) epoch-resolved
//!   telemetry snapshots.
//! * [`dynamics`] — the seeded hot/cold write-heavy stream that reproduces
//!   the Figure 6–8 self-reinforcement trajectory as a telemetry series.
//! * [`multicore`] — n cores with private L1/L2 sharing one LLC, counter
//!   cache, and DDR4 channel (§V's 4-thread GraphBig methodology).
//! * [`mc`] — the timing memory controller over the DDR4 channel.
//! * [`engine`] — the shared ROB/MLP/private-cache core engine used by
//!   every timing mode.
//! * [`runner`] — the common [`runner::Runner`] interface: stream a
//!   [`rmcc_workloads::trace::TraceSource`] in, get a report out.
//! * [`core_model`] — one [`engine::CoreEngine`] packaged with its own
//!   LLC and memory controller.
//! * [`lifetime`] — the Pin-style whole-lifetime functional runner.
//! * [`detailed`] — the gem5-style timing runner.
//! * [`experiments`] — one harness per table/figure of the evaluation,
//!   fanning (workload, scheme) cells across a scoped-thread worker pool
//!   (`RMCC_JOBS` overrides the width).
//!
//! # Example
//!
//! ```
//! use rmcc_sim::config::{Scheme, SystemConfig};
//! use rmcc_sim::lifetime::run_lifetime;
//! use rmcc_workloads::workload::{Scale, Workload};
//!
//! let report = run_lifetime(
//!     Workload::Canneal,
//!     Scale::Tiny,
//!     None,
//!     &SystemConfig::lifetime(Scheme::Rmcc),
//! )
//! .expect("canneal needs no graph");
//! assert!(report.llc_misses > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod core_model;
pub mod detailed;
pub mod dynamics;
pub mod engine;
pub mod experiments;
pub mod lifetime;
pub mod mc;
pub mod meta_engine;
pub mod multicore;
pub mod page_map;
pub mod runner;
pub mod service_run;

pub use config::{Scheme, SystemConfig};
pub use core_model::{CoreModel, CoreStats};
pub use detailed::{run_detailed, DetailedReport};
pub use dynamics::{run_dynamics, DynamicsConfig, DynamicsResult};
pub use engine::CoreEngine;
pub use experiments::{
    serving_scenarios, table1, CellFailure, Experiments, Series, TelemetrySweep,
};
pub use lifetime::{run_lifetime, LifetimeReport, LifetimeRunner};
pub use mc::{LatencyStats, MemoryController};
pub use meta_engine::{
    ChainFetch, MemoTally, MetaEngine, MetaStats, ReadOutcome, SideKind, SideRequest, WriteOutcome,
};
pub use multicore::{run_multicore, MultiCoreReport, MultiCoreRunner};
pub use page_map::PageMap;
pub use runner::Runner;
