//! Per-figure experiment harnesses.
//!
//! One function per table/figure of the paper's evaluation; each returns a
//! [`Series`] whose rows are the paper's x-axis (the eleven workloads) and
//! whose columns are the figure's bars/lines. The `rmcc-bench` crate turns
//! these into runnable targets; EXPERIMENTS.md records paper-vs-measured.
//!
//! Every per-workload figure fans its independent (workload, scheme) cells
//! across a scoped-thread worker pool ([`Experiments::per_workload`]'s
//! internals): simulations for different workloads share nothing, so they
//! run concurrently, while rows are committed in `Workload::ALL` order —
//! output is byte-identical to a serial run. The pool width defaults to the
//! host's available parallelism and can be pinned with the `RMCC_JOBS`
//! environment variable (or [`Experiments::with_jobs`]).
//!
//! Each cell runs under `catch_unwind`, so a panicking workload poisons only
//! its own row: the [`Series`] records it as a [`CellFailure`] (the row
//! prints as `FAILED` and is excluded from the mean) and every other cell
//! still completes and commits in order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rmcc_cache::tlb::PageSize;
use rmcc_dram::channel::TrafficClass;
use rmcc_dram::config::ns;
use rmcc_telemetry::PhaseProfiler;
use rmcc_workloads::graph::Csr;
use rmcc_workloads::workload::{graph_for, Scale, Workload};

use crate::config::{Scheme, SystemConfig};
use crate::detailed::{run_detailed, DetailedReport};
use crate::lifetime::{run_lifetime, LifetimeReport, LifetimeRunner};
use crate::runner::Runner;

/// One experiment cell whose workload panicked. The harness isolates the
/// panic: the cell is reported failed, every other cell completes normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The workload whose cell panicked.
    pub workload: String,
    /// The panic message.
    pub message: String,
}

/// A labeled table of results: one row per workload, one column per series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Figure/table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// `(row label, one value per column)`. Failed rows hold NaN.
    pub rows: Vec<(String, Vec<f64>)>,
    /// `(row label, panic message)` for every failed cell.
    pub failures: Vec<(String, String)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Series {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Appends a failed row (all NaN) and records the panic message.
    pub fn push_failed(&mut self, label: impl Into<String>, message: impl Into<String>) {
        let label = label.into();
        self.rows
            .push((label.clone(), vec![f64::NAN; self.columns.len()]));
        self.failures.push((label, message.into()));
    }

    /// Appends an arithmetic-mean row labeled `mean` (the paper's final
    /// bar in every per-workload figure). Failed (NaN) rows are excluded
    /// from the mean; with no finite rows at all, no mean row is added.
    pub fn with_mean(mut self) -> Self {
        let finite: Vec<&Vec<f64>> = self
            .rows
            .iter()
            .filter(|(_, v)| v.iter().all(|x| x.is_finite()))
            .map(|(_, v)| v)
            .collect();
        if finite.is_empty() {
            return self;
        }
        let n = finite.len() as f64;
        let means: Vec<f64> = (0..self.columns.len())
            .map(|c| finite.iter().map(|v| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("mean".to_string(), means));
        self
    }

    /// The values of the row labeled `label`, if present.
    pub fn row(&self, label: &str) -> Option<&[f64]> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.as_slice())
    }
}

impl std::fmt::Display for Series {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        write!(f, "{:label_w$}", "")?;
        for c in &self.columns {
            write!(f, "  {c:>14}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for v in values {
                if v.is_nan() {
                    write!(f, "  {:>14}", "FAILED")?;
                } else {
                    write!(f, "  {v:>14.4}")?;
                }
            }
            writeln!(f)?;
        }
        for (label, message) in &self.failures {
            writeln!(f, "!! {label}: cell panicked: {message}")?;
        }
        Ok(())
    }
}

/// Result of [`Experiments::telemetry_sweep`]: one epoch-resolved JSONL
/// series per workload, plus a wall-time profile of the sweep.
///
/// The `cells` are deterministic — byte-identical whether the sweep ran
/// serially or through the worker pool, and across same-seed reruns. The
/// [`PhaseProfiler`] records real wall time and is explicitly *outside*
/// that contract.
#[derive(Debug)]
pub struct TelemetrySweep {
    /// `(workload name, JSONL series)` in `Workload::ALL` order; a
    /// panicking cell carries its [`CellFailure`] instead.
    pub cells: Vec<(String, Result<String, CellFailure>)>,
    /// Wall-time phases of the sweep (not part of the determinism
    /// contract).
    pub profile: PhaseProfiler,
}

impl TelemetrySweep {
    /// The JSONL series for `workload`, if that cell succeeded.
    pub fn jsonl(&self, workload: &str) -> Option<&str> {
        self.cells
            .iter()
            .find(|(name, _)| name == workload)
            .and_then(|(_, r)| r.as_deref().ok())
    }

    /// Writes each successful cell to `dir/telemetry_<workload>.jsonl`
    /// (creating `dir` if needed) and returns the paths written, in
    /// `Workload::ALL` order. Failed cells are skipped.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating the directory or writing a
    /// file.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for (name, cell) in &self.cells {
            if let Ok(jsonl) = cell {
                let path = dir.join(format!("telemetry_{name}.jsonl"));
                std::fs::write(&path, jsonl)?;
                paths.push(path);
            }
        }
        Ok(paths)
    }
}

/// Renders a caught panic payload as text (panics carry `&str` or `String`
/// payloads in practice).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker count for the harness: `RMCC_JOBS` if set (and ≥ 1), else the
/// host's available parallelism.
fn default_jobs() -> usize {
    match std::env::var("RMCC_JOBS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Shared context: the scale, the (expensive to build) input graph, and the
/// worker-pool width.
#[derive(Debug, Clone)]
pub struct Experiments {
    scale: Scale,
    graph: Csr,
    jobs: usize,
}

impl Experiments {
    /// Builds the context, generating the R-MAT graph once. The worker-pool
    /// width comes from `RMCC_JOBS`, defaulting to the host parallelism.
    pub fn new(scale: Scale) -> Self {
        Self::with_jobs(scale, default_jobs())
    }

    /// Like [`Experiments::new`] but with an explicit worker count
    /// (`jobs == 1` runs strictly serially on the calling thread).
    pub fn with_jobs(scale: Scale, jobs: usize) -> Self {
        Experiments {
            scale,
            graph: graph_for(scale),
            jobs: jobs.max(1),
        }
    }

    /// The scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The worker-pool width in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps every workload through `f`, fanning the calls across a
    /// scoped-thread pool of [`Self::jobs`] workers. Results come back in
    /// `Workload::ALL` order no matter which worker computed them, and
    /// each `f(w)` is deterministic, so output is identical to a serial
    /// map.
    ///
    /// Every cell runs under `catch_unwind`: a panic in `f(w)` becomes an
    /// `Err(CellFailure)` for that cell alone — it never poisons a slot
    /// lock, kills a worker, or aborts the rest of the sweep.
    fn per_workload<T, F>(&self, f: F) -> Vec<Result<T, CellFailure>>
    where
        T: Send,
        F: Fn(Workload) -> T + Sync,
    {
        let cell = |w: Workload| {
            catch_unwind(AssertUnwindSafe(|| f(w))).map_err(|payload| CellFailure {
                workload: w.name().to_string(),
                message: panic_message(payload),
            })
        };
        let jobs = self.jobs.min(Workload::ALL.len());
        if jobs <= 1 {
            return Workload::ALL.iter().map(|&w| cell(w)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, CellFailure>>>> =
            Workload::ALL.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&w) = Workload::ALL.get(i) else {
                        break;
                    };
                    let row = cell(w);
                    *slots[i].lock().expect("slot lock poisoned") = Some(row);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// Builds a per-workload series: runs `f` through the pool, then
    /// commits one row per workload in `Workload::ALL` order plus the
    /// mean row. Panicking cells become `FAILED` rows.
    fn series_of<F>(&self, title: &str, columns: &[&str], f: F) -> Series
    where
        F: Fn(Workload) -> Vec<f64> + Sync,
    {
        let mut s = Series::new(title, columns);
        for (w, row) in Workload::ALL.iter().zip(self.per_workload(f)) {
            match row {
                Ok(values) => s.push(w.name(), values),
                Err(e) => s.push_failed(w.name(), e.message),
            }
        }
        s.with_mean()
    }

    fn lifetime(&self, w: Workload, cfg: &SystemConfig) -> LifetimeReport {
        let graph = w.uses_graph().then_some(&self.graph);
        // The shared graph is always passed for graph kernels, so the typed
        // error is unreachable; if it ever fires, the panic is caught by
        // the cell isolation and reported as a FAILED row.
        run_lifetime(w, self.scale, graph, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    fn detailed(&self, w: Workload, cfg: &SystemConfig) -> DetailedReport {
        let graph = w.uses_graph().then_some(&self.graph);
        run_detailed(w, self.scale, graph, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Figure 3: counter-cache misses per LLC miss under Morphable
    /// Counters, lifetime methodology (32 KB counter cache).
    pub fn fig03_counter_miss(&self) -> Series {
        let cfg = SystemConfig::lifetime(Scheme::Morphable);
        self.series_of(
            "Figure 3: counter misses per LLC miss (Morphable, lifetime)",
            &["ctr miss rate"],
            |w| vec![self.lifetime(w, &cfg).counter_miss_rate()],
        )
    }

    /// Figure 4: TLB misses per LLC miss under 4 KB and 2 MB pages.
    pub fn fig04_tlb(&self) -> Series {
        let cfg = SystemConfig::lifetime(Scheme::NonSecure);
        self.series_of(
            "Figure 4: TLB misses per LLC miss",
            &["4KB pages", "2MB pages"],
            |w| {
                let r = self.lifetime(w, &cfg);
                vec![
                    r.tlb_per_llc_miss(PageSize::Small4K),
                    r.tlb_per_llc_miss(PageSize::Huge2M),
                ]
            },
        )
    }

    /// Figure 10: memoization hit rate for counter misses, split into hits
    /// from live groups and hits from MRU single values.
    pub fn fig10_hit_breakdown(&self) -> Series {
        let cfg = SystemConfig::lifetime(Scheme::Rmcc);
        self.series_of(
            "Figure 10: memoization hits on counter misses",
            &["group hits", "MRU hits", "total"],
            |w| {
                let r = self.lifetime(w, &cfg);
                let t = &r.meta.memo_l0;
                let n = (t.miss_group_hits + t.miss_mru_hits + t.miss_misses).max(1) as f64;
                let g = t.miss_group_hits as f64 / n;
                let m = t.miss_mru_hits as f64 / n;
                vec![g, m, g + m]
            },
        )
    }

    /// Figure 12: bandwidth utilization breakdown under Morphable Counters
    /// (detailed mode).
    pub fn fig12_bandwidth(&self) -> Series {
        let cfg = SystemConfig::detailed_scaled(Scheme::Morphable);
        self.series_of(
            "Figure 12: bandwidth utilization under Morphable",
            &["data", "counters", "L0 overflow", "L1+ overflow"],
            |w| {
                let r = self.detailed(w, &cfg);
                TrafficClass::ALL
                    .iter()
                    .map(|&c| r.utilization(c))
                    .collect()
            },
        )
    }

    /// Figures 13 and 14 share their runs: performance normalized to
    /// non-secure, and mean LLC-miss latency, for SC-64 / Morphable / RMCC
    /// (+ non-secure latency).
    pub fn fig13_fig14(&self) -> (Series, Series) {
        let mut perf = Series::new(
            "Figure 13: performance normalized to non-secure",
            &["SC-64", "Morphable", "RMCC"],
        );
        let mut lat = Series::new(
            "Figure 14: average LLC miss latency (ns)",
            &["SC-64", "Morphable", "RMCC", "Non-secure"],
        );
        let rows = self.per_workload(|w| {
            let non = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::NonSecure));
            let sc = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::Sc64));
            let mo = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::Morphable));
            let rm = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::Rmcc));
            (
                vec![
                    sc.normalized_perf(&non),
                    mo.normalized_perf(&non),
                    rm.normalized_perf(&non),
                ],
                vec![
                    sc.mean_miss_latency_ns,
                    mo.mean_miss_latency_ns,
                    rm.mean_miss_latency_ns,
                    non.mean_miss_latency_ns,
                ],
            )
        });
        for (w, cell) in Workload::ALL.iter().zip(rows) {
            match cell {
                Ok((prow, lrow)) => {
                    perf.push(w.name(), prow);
                    lat.push(w.name(), lrow);
                }
                Err(e) => {
                    perf.push_failed(w.name(), e.message.clone());
                    lat.push_failed(w.name(), e.message);
                }
            }
        }
        (perf.with_mean(), lat.with_mean())
    }

    /// Figure 15: average data blocks covered per memoized L0 counter
    /// value at the end of each workload.
    pub fn fig15_coverage(&self) -> Series {
        let cfg = SystemConfig::lifetime(Scheme::Rmcc);
        self.series_of(
            "Figure 15: avg blocks covered per memoized counter value",
            &["blocks"],
            |w| vec![self.lifetime(w, &cfg).avg_value_coverage],
        )
    }

    /// Figure 16: memory traffic overhead of RMCC over Morphable, split by
    /// the L0 and L1 budgets.
    pub fn fig16_traffic(&self) -> Series {
        let base_cfg = SystemConfig::lifetime(Scheme::Morphable);
        let rmcc_cfg = SystemConfig::lifetime(Scheme::Rmcc);
        self.series_of(
            "Figure 16: traffic overhead of RMCC vs Morphable",
            &["L0 share", "L1 share", "total overhead"],
            |w| {
                let base = self.lifetime(w, &base_cfg);
                let rmcc = self.lifetime(w, &rmcc_cfg);
                let bt = base.total_requests().max(1) as f64;
                let total = (rmcc.total_requests() as f64 - bt) / bt;
                let l0 = rmcc.rmcc_spent_l0 as f64 / bt;
                let l1 = rmcc.rmcc_spent_l1 as f64 / bt;
                vec![l0, l1, total.max(0.0)]
            },
        )
    }

    /// Figure 17: RMCC performance normalized to Morphable under 15 ns and
    /// 22 ns AES latencies.
    pub fn fig17_aes_latency(&self) -> Series {
        self.series_of(
            "Figure 17: RMCC vs Morphable under AES latency",
            &["15ns AES", "22ns AES"],
            |w| {
                let mut vals = Vec::new();
                for aes_ns in [15.0, 22.0] {
                    let mut base = SystemConfig::detailed_scaled(Scheme::Morphable);
                    base.aes_latency = ns(aes_ns);
                    let mut rmcc = SystemConfig::detailed_scaled(Scheme::Rmcc);
                    rmcc.aes_latency = ns(aes_ns);
                    let b = self.detailed(w, &base);
                    let r = self.detailed(w, &rmcc);
                    vals.push(r.normalized_perf(&b));
                }
                vals
            },
        )
    }

    /// Figure 18: RMCC performance normalized to Morphable under 128 KB,
    /// 256 KB, and 512 KB counter caches.
    pub fn fig18_counter_cache(&self) -> Series {
        self.series_of(
            "Figure 18: RMCC vs Morphable under counter cache size",
            &["128KB", "256KB", "512KB"],
            |w| {
                let mut vals = Vec::new();
                // The paper sweeps 128/256/512 KB; scaled 4x alongside the
                // footprints (see SystemConfig::detailed_scaled).
                for kb in [32usize, 64, 128] {
                    let mut base = SystemConfig::detailed_scaled(Scheme::Morphable);
                    base.counter_cache_bytes = kb << 10;
                    let mut rmcc = SystemConfig::detailed_scaled(Scheme::Rmcc);
                    rmcc.counter_cache_bytes = kb << 10;
                    let b = self.detailed(w, &base);
                    let r = self.detailed(w, &rmcc);
                    vals.push(r.normalized_perf(&b));
                }
                vals
            },
        )
    }

    /// Figures 19 and 20: memoization hit rate (all lookups) and traffic
    /// overhead under 1% / 2% / 8% per-level budgets.
    pub fn fig19_fig20(&self) -> (Series, Series) {
        let mut hits = Series::new(
            "Figure 19: memoization hit rate vs budget",
            &["1% budget", "2% budget", "8% budget"],
        );
        let mut traffic = Series::new(
            "Figure 20: traffic overhead vs budget",
            &["1% budget", "2% budget", "8% budget"],
        );
        let base_cfg = SystemConfig::lifetime(Scheme::Morphable);
        let rows = self.per_workload(|w| {
            let base = self.lifetime(w, &base_cfg);
            let bt = base.total_requests().max(1) as f64;
            let mut hrow = Vec::new();
            let mut trow = Vec::new();
            for frac in [0.01, 0.02, 0.08] {
                let mut cfg = SystemConfig::lifetime(Scheme::Rmcc);
                cfg.rmcc = rmcc_core::rmcc::RmccConfig::with_budget(frac);
                let r = self.lifetime(w, &cfg);
                hrow.push(r.meta.memo_l0.all_hit_rate());
                trow.push(((r.total_requests() as f64 - bt) / bt).max(0.0));
            }
            (hrow, trow)
        });
        for (w, cell) in Workload::ALL.iter().zip(rows) {
            match cell {
                Ok((hrow, trow)) => {
                    hits.push(w.name(), hrow);
                    traffic.push(w.name(), trow);
                }
                Err(e) => {
                    hits.push_failed(w.name(), e.message.clone());
                    traffic.push_failed(w.name(), e.message);
                }
            }
        }
        (hits.with_mean(), traffic.with_mean())
    }

    /// Figures 21 and 22: memoization hit rate and traffic overhead under
    /// Memoized Counter Value Group sizes 4 / 8 / 16 (total entries fixed
    /// at 128).
    pub fn fig21_fig22(&self) -> (Series, Series) {
        let mut hits = Series::new(
            "Figure 21: memoization hit rate vs group size",
            &["group 4", "group 8", "group 16"],
        );
        let mut traffic = Series::new(
            "Figure 22: traffic overhead vs group size",
            &["group 4", "group 8", "group 16"],
        );
        let base_cfg = SystemConfig::lifetime(Scheme::Morphable);
        let rows = self.per_workload(|w| {
            let base = self.lifetime(w, &base_cfg);
            let bt = base.total_requests().max(1) as f64;
            let mut hrow = Vec::new();
            let mut trow = Vec::new();
            for size in [4u64, 8, 16] {
                let mut cfg = SystemConfig::lifetime(Scheme::Rmcc);
                cfg.rmcc = rmcc_core::rmcc::RmccConfig::with_group_size(size);
                let r = self.lifetime(w, &cfg);
                hrow.push(r.meta.memo_l0.all_hit_rate());
                trow.push(((r.total_requests() as f64 - bt) / bt).max(0.0));
            }
            (hrow, trow)
        });
        for (w, cell) in Workload::ALL.iter().zip(rows) {
            match cell {
                Ok((hrow, trow)) => {
                    hits.push(w.name(), hrow);
                    traffic.push(w.name(), trow);
                }
                Err(e) => {
                    hits.push_failed(w.name(), e.message.clone());
                    traffic.push_failed(w.name(), e.message);
                }
            }
        }
        (hits.with_mean(), traffic.with_mean())
    }

    /// §IV-D2: growth of the maximum counter value, RMCC vs Morphable.
    pub fn max_counter_growth(&self) -> Series {
        let base_cfg = SystemConfig::lifetime(Scheme::Morphable);
        let rmcc_cfg = SystemConfig::lifetime(Scheme::Rmcc);
        self.series_of(
            "Max counter value: RMCC vs Morphable (§IV-D2)",
            &["Morphable", "RMCC", "ratio"],
            |w| {
                let b = self.lifetime(w, &base_cfg);
                let r = self.lifetime(w, &rmcc_cfg);
                let ratio = if b.max_counter == 0 {
                    0.0
                } else {
                    r.max_counter as f64 / b.max_counter as f64
                };
                vec![b.max_counter as f64, r.max_counter as f64, ratio]
            },
        )
    }

    /// Extension (§III discussion): Morphable's counter-miss rate under
    /// 4 KB pages vs 2 MB huge pages. A Morphable counter block covers two
    /// *physically adjacent* 4 KB pages; small-page placement scatters
    /// virtually adjacent pages, so coverage halves and misses rise.
    pub fn page_size_sensitivity(&self) -> Series {
        self.series_of(
            "Extension: counter miss rate, 2MB vs 4KB pages (Morphable)",
            &["2MB pages", "4KB pages"],
            |w| {
                let mut huge = SystemConfig::lifetime(Scheme::Morphable);
                huge.page_size = PageSize::Huge2M;
                let mut small = SystemConfig::lifetime(Scheme::Morphable);
                small.page_size = PageSize::Small4K;
                let rh = self.lifetime(w, &huge);
                let rs = self.lifetime(w, &small);
                vec![rh.counter_miss_rate(), rs.counter_miss_rate()]
            },
        )
    }

    /// Ablation (§IV-C1): memoization hit rate with and without
    /// read-triggered counter updates for read-mostly blocks.
    pub fn ablation_read_triggered(&self) -> Series {
        self.series_of(
            "Ablation: memoization hit rate with/without read-triggered updates",
            &["with", "without"],
            |w| {
                let on = SystemConfig::lifetime(Scheme::Rmcc);
                let mut off = SystemConfig::lifetime(Scheme::Rmcc);
                off.rmcc.read_triggered = false;
                let r_on = self.lifetime(w, &on);
                let r_off = self.lifetime(w, &off);
                vec![
                    r_on.meta.memo_l0.all_hit_rate(),
                    r_off.meta.memo_l0.all_hit_rate(),
                ]
            },
        )
    }

    /// Related-work comparison (§VII): PoisonIvy-style speculative
    /// verification vs RMCC, both over Morphable, normalized to non-secure.
    /// Speculation hides tree-verification latency only; RMCC also hides
    /// the decryption AES, which dominates after counter misses.
    pub fn related_work_speculation(&self) -> Series {
        self.series_of(
            "Related work: speculative verification vs RMCC (norm. to non-secure)",
            &["Morphable", "Morphable+spec", "RMCC"],
            |w| {
                let non = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::NonSecure));
                let mo = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::Morphable));
                let mut spec_cfg = SystemConfig::detailed_scaled(Scheme::Morphable);
                spec_cfg.speculative_verify = true;
                let spec = self.detailed(w, &spec_cfg);
                let rm = self.detailed(w, &SystemConfig::detailed_scaled(Scheme::Rmcc));
                vec![
                    mo.normalized_perf(&non),
                    spec.normalized_perf(&non),
                    rm.normalized_perf(&non),
                ]
            },
        )
    }

    /// Epoch-resolved telemetry sweep: runs every workload under `scheme`
    /// (lifetime methodology) with telemetry recording on and the epoch
    /// shortened to `epoch_accesses` memory requests, and returns each
    /// cell's JSONL series. Any trailing partial epoch is flushed, so a
    /// cell that issued at least one memory request produces at least one
    /// row.
    ///
    /// Cells fan across the same worker pool as every other harness; the
    /// JSONL is byte-identical to a serial sweep. The returned
    /// [`PhaseProfiler`] reports where the wall time went and is excluded
    /// from that determinism contract.
    pub fn telemetry_sweep(&self, scheme: Scheme, epoch_accesses: u64) -> TelemetrySweep {
        let mut profile = PhaseProfiler::new();
        profile.start("configure");
        let mut cfg = SystemConfig::lifetime(scheme);
        cfg.telemetry = true;
        cfg.rmcc.epoch_accesses = epoch_accesses.max(1);
        profile.start("simulate");
        let rows = self.per_workload(|w| {
            let graph = w.uses_graph().then_some(&self.graph);
            let mut runner = LifetimeRunner::new(&cfg);
            let _report = match graph {
                Some(_) => runner.run(&mut w.source_on(graph, self.scale)),
                None => runner.run(&mut w.source(self.scale)),
            };
            runner.engine().finish_telemetry().unwrap_or_default()
        });
        profile.finish();
        let cells = Workload::ALL
            .iter()
            .zip(rows)
            .map(|(w, r)| (w.name().to_string(), r))
            .collect();
        TelemetrySweep { cells, profile }
    }

    /// The paper's 92% headline: fraction of counter misses whose
    /// decryption/verification is accelerated.
    pub fn accelerated_misses(&self) -> Series {
        let cfg = SystemConfig::lifetime(Scheme::Rmcc);
        self.series_of(
            "Accelerated counter misses (paper: 92% mean)",
            &["accelerated"],
            |w| vec![self.lifetime(w, &cfg).meta.accelerated_rate()],
        )
    }
}

/// Renders Table I (the full system configuration).
pub fn table1() -> String {
    SystemConfig::table1(Scheme::Rmcc).to_string()
}

/// The serving-corpus sweep: one small service run per corpus scenario,
/// reporting how self-reinforcement fares under each traffic shape — write
/// conformance, memoization hit rate on lookups, the fallback share, and
/// the per-shard budget actually spent.
pub fn serving_scenarios() -> Series {
    use crate::service_run::{run_service, ServiceRunConfig};
    let mut s = Series::new(
        "Serving scenarios (small 4-shard service runs)",
        &[
            "conformance",
            "memo hit rate",
            "fallback share",
            "budget spent",
        ],
    );
    for cfg in [
        ServiceRunConfig::small(),
        ServiceRunConfig::phase_small(),
        ServiceRunConfig::adversarial_small(),
    ] {
        let name = cfg.corpus_scenario().name();
        let r = run_service(&cfg);
        let a = &r.aggregate;
        let writes = (a.conformed_writes + a.baseline_writes).max(1) as f64;
        let hits = a.table.group_hits + a.table.mru_hits;
        let lookups = (hits + a.table.fallbacks).max(1) as f64;
        s.push(
            name,
            vec![
                a.conformed_writes as f64 / writes,
                hits as f64 / lookups,
                a.table.fallbacks as f64 / lookups,
                a.budget_spent as f64,
            ],
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_push_mean_and_display() {
        let mut s = Series::new("t", &["a", "b"]);
        s.push("x", vec![1.0, 3.0]);
        s.push("y", vec![3.0, 5.0]);
        let s = s.with_mean();
        assert_eq!(s.row("mean"), Some(&[2.0, 4.0][..]));
        let text = s.to_string();
        assert!(text.contains("== t =="));
        assert!(text.contains("mean"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn series_width_checked() {
        let mut s = Series::new("t", &["a"]);
        s.push("x", vec![1.0, 2.0]);
    }

    #[test]
    fn table1_text() {
        let t = table1();
        assert!(t.contains("RMCC"));
        assert!(t.contains("128 GB"));
    }

    #[test]
    fn serving_scenarios_covers_every_corpus_stream() {
        let s = serving_scenarios();
        assert!(s.failures.is_empty(), "{:?}", s.failures);
        let labels: Vec<&str> = s.rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            ["kv_serving", "phase_change", "adversarial_locality"]
        );
        for (label, values) in &s.rows {
            assert!(
                values.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{label}: {values:?}"
            );
            // The first three columns are rates.
            assert!(values[..3].iter().all(|v| *v <= 1.0), "{label}: {values:?}");
        }
        // Every scenario steers a real share of writes, spends budget doing
        // it, and the phase-change stream — which keeps re-learning a moved
        // hot set — conforms less than steady key-value serving.
        for (label, values) in &s.rows {
            assert!(
                values[0] > 0.2,
                "{label}: conformance collapsed: {values:?}"
            );
            assert!(values[3] > 0.0, "{label}: no budget spent: {values:?}");
        }
        let kv = s.row("kv_serving").expect("kv row")[0];
        let phase = s.row("phase_change").expect("phase row")[0];
        assert!(
            phase < kv,
            "phase-change conformance {phase} not below kv serving {kv}"
        );
    }

    #[test]
    fn tiny_fig03_has_all_workloads_plus_mean() {
        let ex = Experiments::new(Scale::Tiny);
        let s = ex.fig03_counter_miss();
        assert_eq!(s.rows.len(), 12);
        for (_, v) in &s.rows {
            assert!((0.0..=1.0).contains(&v[0]));
        }
    }

    #[test]
    fn tiny_fig13_14_shapes() {
        // One workload's worth of runs at tiny scale to keep tests quick:
        // use the full harness but verify only structure.
        let ex = Experiments::new(Scale::Tiny);
        let (perf, lat) = ex.fig13_fig14();
        assert_eq!(perf.columns.len(), 3);
        assert_eq!(lat.columns.len(), 4);
        assert_eq!(perf.rows.len(), 12);
        // Normalized perf is at most ~1.
        for (_, v) in &perf.rows {
            for &x in v {
                assert!(x > 0.1 && x <= 1.05, "normalized perf {x}");
            }
        }
    }

    #[test]
    fn jobs_default_respects_env_override() {
        // `with_jobs` clamps to ≥ 1 and reports what it was given.
        assert_eq!(Experiments::with_jobs(Scale::Tiny, 0).jobs(), 1);
        assert_eq!(Experiments::with_jobs(Scale::Tiny, 3).jobs(), 3);
    }

    #[test]
    fn parallel_rows_match_serial_rows() {
        let serial = Experiments::with_jobs(Scale::Tiny, 1);
        let pooled = Experiments::with_jobs(Scale::Tiny, 4);
        assert_eq!(serial.fig03_counter_miss(), pooled.fig03_counter_miss());
    }

    #[test]
    fn series_mean_skips_failed_rows_and_display_marks_them() {
        let mut s = Series::new("t", &["a"]);
        s.push("x", vec![1.0]);
        s.push_failed("y", "boom");
        s.push("z", vec![3.0]);
        let s = s.with_mean();
        assert_eq!(s.row("mean"), Some(&[2.0][..]));
        assert!(s.row("y").unwrap()[0].is_nan());
        let text = s.to_string();
        assert!(text.contains("FAILED"));
        assert!(text.contains("!! y: cell panicked: boom"));
    }

    #[test]
    fn telemetry_sweep_is_deterministic_and_parses() {
        let serial = Experiments::with_jobs(Scale::Tiny, 1).telemetry_sweep(Scheme::Rmcc, 2_000);
        let pooled = Experiments::with_jobs(Scale::Tiny, 4).telemetry_sweep(Scheme::Rmcc, 2_000);
        assert_eq!(serial.cells, pooled.cells, "pool order must not leak");
        assert_eq!(serial.cells.len(), Workload::ALL.len());
        for (name, cell) in &serial.cells {
            let jsonl = cell.as_ref().unwrap_or_else(|e| panic!("{name}: {e:?}"));
            let rows = rmcc_telemetry::parse_jsonl(jsonl).expect("valid JSONL");
            assert!(!rows.is_empty(), "{name}: no epochs resolved");
            let first = &rows[0];
            for key in ["table_hit_rate", "aes_saved", "conformance_ratio"] {
                assert!(first.get(key).is_some(), "{name}: missing column {key}");
            }
        }
        // The profiler saw real phases (wall times themselves are not
        // part of the contract).
        assert!(serial.profile.phases().len() >= 2);
    }

    #[test]
    fn telemetry_sweep_writes_files() {
        let sweep =
            Experiments::with_jobs(Scale::Tiny, 2).telemetry_sweep(Scheme::Morphable, 5_000);
        let dir = std::env::temp_dir().join(format!("rmcc-telemetry-sweep-{}", std::process::id()));
        let paths = sweep.write_to_dir(&dir).expect("write telemetry files");
        assert_eq!(paths.len(), Workload::ALL.len());
        for (path, (name, cell)) in paths.iter().zip(&sweep.cells) {
            let on_disk = std::fs::read_to_string(path).expect("readable file");
            assert_eq!(&on_disk, cell.as_ref().expect("cell succeeded"), "{name}");
            assert_eq!(sweep.jsonl(name), Some(on_disk.as_str()));
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn panicking_cell_is_isolated_and_other_rows_match_serial() {
        // Fault-free serial reference: exactly what fig03 computes.
        let clean = Experiments::with_jobs(Scale::Tiny, 1).fig03_counter_miss();

        // Same sweep through the pool, with one cell rigged to panic.
        let pooled = Experiments::with_jobs(Scale::Tiny, 4);
        let cfg = SystemConfig::lifetime(Scheme::Morphable);
        let faulty = pooled.series_of("fig03 with a poisoned cell", &["ctr miss rate"], |w| {
            if w == Workload::Mcf {
                panic!("injected workload panic");
            }
            vec![pooled.lifetime(w, &cfg).counter_miss_rate()]
        });

        // Every surviving row is byte-identical to the serial fault-free
        // run; the panicking cell neither aborted the sweep nor perturbed
        // its neighbours.
        for (label, values) in &clean.rows {
            if label == "mcf" || label == "mean" {
                continue;
            }
            assert_eq!(faulty.row(label), Some(values.as_slice()), "row {label}");
        }
        assert!(faulty.row("mcf").unwrap().iter().all(|v| v.is_nan()));
        assert_eq!(
            faulty.failures,
            vec![("mcf".to_string(), "injected workload panic".to_string())]
        );
        // The mean is computed over the surviving rows only.
        assert!(faulty.row("mean").unwrap().iter().all(|v| v.is_finite()));
    }
}
