//! The detailed (gem5-style) timing runner: core model, memory controller,
//! and DDR4, producing the paper's performance, latency, and bandwidth
//! numbers (Figures 12, 13, 14, 17, 18).

use rmcc_dram::channel::DramStats;
use rmcc_dram::config::Ps;

use crate::config::{Scheme, SystemConfig};
use crate::core_model::CoreModel;
use crate::meta_engine::MetaStats;

/// End-of-run report for one detailed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedReport {
    /// Scheme that ran.
    pub scheme: Scheme,
    /// Total execution time.
    pub elapsed_ps: Ps,
    /// Instructions executed (memory + compute).
    pub instrs: u64,
    /// LLC misses serviced.
    pub llc_misses: u64,
    /// Mean LLC-miss latency in nanoseconds (Figure 14).
    pub mean_miss_latency_ns: f64,
    /// DRAM channel statistics (Figure 12 bandwidth breakdown).
    pub dram: DramStats,
    /// Functional metadata statistics.
    pub meta: MetaStats,
}

impl DetailedReport {
    /// Performance normalized against `baseline` (same trace):
    /// `baseline_time / self_time`, so 1.0 = parity, <1 = slower.
    pub fn normalized_perf(&self, baseline: &DetailedReport) -> f64 {
        if self.elapsed_ps == 0 {
            return 0.0;
        }
        baseline.elapsed_ps as f64 / self.elapsed_ps as f64
    }

    /// Bus utilization of one traffic class over the run (Figure 12).
    pub fn utilization(&self, class: rmcc_dram::channel::TrafficClass) -> f64 {
        self.dram.utilization(class, self.elapsed_ps)
    }
}

/// Runs `workload` at `scale` under `cfg`, reusing `graph` when provided.
///
/// # Errors
///
/// Returns [`rmcc_workloads::workload::WorkloadError::MissingGraph`] if a
/// graph workload is handed `graph: None` by a caller that built the
/// source itself; the `None` path here builds the graph on demand and
/// cannot fail.
pub fn run_detailed(
    workload: rmcc_workloads::workload::Workload,
    scale: rmcc_workloads::workload::Scale,
    graph: Option<&rmcc_workloads::graph::Csr>,
    cfg: &SystemConfig,
) -> Result<DetailedReport, rmcc_workloads::workload::WorkloadError> {
    let mut core = CoreModel::new(cfg, 0x9a9e);
    match graph {
        Some(_) => workload.source_on(graph, scale).try_stream(&mut core)?,
        None => workload.source(scale).try_stream(&mut core)?,
    }
    Ok(core.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_workloads::workload::{Scale, Workload};

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::table1(scheme);
        c.data_bytes = 1 << 32;
        c
    }

    #[test]
    fn non_secure_beats_secure() {
        let non = run_detailed(
            Workload::Canneal,
            Scale::Tiny,
            None,
            &cfg(Scheme::NonSecure),
        )
        .expect("self-built graph");
        let sec = run_detailed(
            Workload::Canneal,
            Scale::Tiny,
            None,
            &cfg(Scheme::Morphable),
        )
        .expect("self-built graph");
        assert!(sec.elapsed_ps > non.elapsed_ps);
        assert!(sec.normalized_perf(&non) < 1.0);
        assert!(non.normalized_perf(&non) == 1.0);
    }

    #[test]
    fn miss_latency_reported() {
        let r = run_detailed(
            Workload::Omnetpp,
            Scale::Tiny,
            None,
            &cfg(Scheme::Morphable),
        )
        .expect("self-built graph");
        assert!(
            r.mean_miss_latency_ns > 20.0,
            "latency {}",
            r.mean_miss_latency_ns
        );
        assert!(r.llc_misses > 0);
        assert!(r.instrs > 0);
    }

    #[test]
    fn bandwidth_utilization_bounded() {
        let r = run_detailed(
            Workload::Canneal,
            Scale::Tiny,
            None,
            &cfg(Scheme::Morphable),
        )
        .expect("self-built graph");
        let total: f64 = rmcc_dram::channel::TrafficClass::ALL
            .iter()
            .map(|&c| r.utilization(c))
            .sum();
        assert!(total > 0.0 && total <= 1.0, "total utilization {total}");
    }

    #[test]
    fn deterministic() {
        let a = run_detailed(Workload::Mcf, Scale::Tiny, None, &cfg(Scheme::Rmcc))
            .expect("self-built graph");
        let b = run_detailed(Workload::Mcf, Scale::Tiny, None, &cfg(Scheme::Rmcc))
            .expect("self-built graph");
        assert_eq!(a, b);
    }
}
