//! The lifetime (Pin-style) functional runner.
//!
//! The paper's hit-rate, traffic, and coverage numbers (Figures 3, 4, 10,
//! 15, 16, 19–22) come from whole-lifetime Pin runs with no timing model:
//! caches, counters, and the memoization machinery are simulated
//! functionally over the full access stream. This runner reproduces that
//! methodology: it consumes a workload trace, filters it through the cache
//! hierarchy and TLBs, and drives the shared [`MetaEngine`].

use rmcc_cache::hierarchy::Hierarchy;
use rmcc_cache::tlb::{PageSize, Tlb};
use rmcc_workloads::trace::{TraceEvent, TraceSink, TraceSource};

use crate::config::{Scheme, SystemConfig};
use crate::meta_engine::{MetaEngine, MetaStats};
use crate::page_map::PageMap;
use crate::runner::Runner;

/// End-of-run report for one (workload, configuration) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Scheme that ran.
    pub scheme: Scheme,
    /// Total traced accesses.
    pub accesses: u64,
    /// LLC misses (demand reads to memory).
    pub llc_misses: u64,
    /// LLC writebacks.
    pub llc_writebacks: u64,
    /// Functional metadata statistics.
    pub meta: MetaStats,
    /// TLB misses under 4 KB pages.
    pub tlb_misses_4k: u64,
    /// TLB misses under 2 MB pages.
    pub tlb_misses_2m: u64,
    /// Average data blocks covered per live memoized L0 value (Figure 15),
    /// measured over the touched footprint at the end of the run.
    pub avg_value_coverage: f64,
    /// Largest data-counter value observed (§IV-D2 growth analysis).
    pub max_counter: u64,
    /// Overhead requests charged to the L0 budget (Figure 16 split).
    pub rmcc_spent_l0: u64,
    /// Overhead requests charged to the L1 budget (Figure 16 split).
    pub rmcc_spent_l1: u64,
}

impl LifetimeReport {
    /// Counter-cache miss rate per LLC miss (Figure 3).
    pub fn counter_miss_rate(&self) -> f64 {
        self.meta.counter_miss_rate()
    }

    /// TLB misses per LLC miss (Figure 4's normalization).
    pub fn tlb_per_llc_miss(&self, page: PageSize) -> f64 {
        if self.llc_misses == 0 {
            return 0.0;
        }
        let misses = match page {
            PageSize::Small4K => self.tlb_misses_4k,
            PageSize::Huge2M => self.tlb_misses_2m,
        };
        misses as f64 / self.llc_misses as f64
    }

    /// Total memory requests (the Figure 16/20 traffic numerator).
    pub fn total_requests(&self) -> u64 {
        self.meta.total_requests
    }
}

/// The functional lifetime simulator; a [`TraceSink`], so workloads stream
/// straight in.
pub struct LifetimeRunner {
    engine: MetaEngine,
    hierarchy: Hierarchy,
    tlb_4k: Tlb,
    tlb_2m: Tlb,
    page_map: PageMap,
    scheme: Scheme,
    accesses: u64,
    llc_misses: u64,
    llc_writebacks: u64,
    /// Statistics reset once this many accesses have streamed (0 = none):
    /// the §V warm-up window, after which caches/counters/tables keep their
    /// state but the measured counters restart.
    warmup_accesses: u64,
    warmup_done: bool,
}

impl std::fmt::Debug for LifetimeRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifetimeRunner")
            .field("scheme", &self.scheme)
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

impl LifetimeRunner {
    /// Builds the runner for `cfg` (typically [`SystemConfig::lifetime`]).
    pub fn new(cfg: &SystemConfig) -> Self {
        LifetimeRunner {
            engine: MetaEngine::new(cfg),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            // Table I: 1536-entry TLBs (12-way → power-of-two sets).
            tlb_4k: Tlb::new(1536, 12, PageSize::Small4K),
            tlb_2m: Tlb::new(1536, 12, PageSize::Huge2M),
            page_map: PageMap::new(cfg.page_size, 0x9a9e, cfg.data_bytes),
            scheme: cfg.scheme,
            accesses: 0,
            llc_misses: 0,
            llc_writebacks: 0,
            warmup_accesses: 0,
            warmup_done: false,
        }
    }

    /// Configures a warm-up window (§V: the paper warms the tree, caches,
    /// and predictors before its 20 ms observation window): after
    /// `accesses` trace events, all statistics reset while architectural
    /// state (caches, counters, memoization tables) is preserved.
    pub fn with_warmup(mut self, accesses: u64) -> Self {
        self.warmup_accesses = accesses;
        self
    }

    /// The underlying metadata engine (for seeding or inspection).
    pub fn engine(&mut self) -> &mut MetaEngine {
        &mut self.engine
    }

    /// Produces the end-of-run report.
    pub fn report(&mut self) -> LifetimeReport {
        let meta = *self.engine.stats();
        let (coverage, max_counter) = match self.engine.rmcc() {
            Some(r) => {
                let table = r.table(0);
                let size = table.config().group_size;
                let starts: Vec<u64> = table.groups().iter().map(|g| g.start).collect();
                let hist = self
                    .engine
                    .metadata()
                    .map(|m| m.value_histogram())
                    .unwrap_or_default();
                let mut total = 0u64;
                let mut n = 0u64;
                for s in starts {
                    for v in s..s + size {
                        total += hist.get(&v).copied().unwrap_or(0);
                        n += 1;
                    }
                }
                let max = self
                    .engine
                    .metadata()
                    .map(|m| m.max_observed())
                    .unwrap_or(0);
                (if n == 0 { 0.0 } else { total as f64 / n as f64 }, max)
            }
            None => {
                let max = self
                    .engine
                    .metadata()
                    .map(|m| m.max_observed())
                    .unwrap_or(0);
                (0.0, max)
            }
        };
        let (spent_l0, spent_l1) = match self.engine.rmcc() {
            Some(r) => (
                r.budget(0).total_spent(),
                if r.config().levels > 1 {
                    r.budget(1).total_spent()
                } else {
                    0
                },
            ),
            None => (0, 0),
        };
        LifetimeReport {
            scheme: self.scheme,
            accesses: self.accesses,
            llc_misses: self.llc_misses,
            llc_writebacks: self.llc_writebacks,
            meta,
            tlb_misses_4k: self.tlb_4k.misses(),
            tlb_misses_2m: self.tlb_2m.misses(),
            avg_value_coverage: coverage,
            max_counter,
            rmcc_spent_l0: spent_l0,
            rmcc_spent_l1: spent_l1,
        }
    }
}

impl TraceSink for LifetimeRunner {
    fn emit(&mut self, ev: TraceEvent) {
        self.accesses += 1;
        if !self.warmup_done && self.warmup_accesses > 0 && self.accesses >= self.warmup_accesses {
            self.warmup_done = true;
            self.accesses = 0;
            self.llc_misses = 0;
            self.llc_writebacks = 0;
            self.hierarchy.reset_stats();
            self.engine.reset_stats();
        }
        self.tlb_4k.access(ev.addr);
        self.tlb_2m.access(ev.addr);
        let paddr = self.page_map.translate(ev.addr);
        let line = paddr >> 6;
        let outcome = self.hierarchy.access(line, ev.is_write);
        if outcome.is_llc_miss() {
            self.llc_misses += 1;
            self.engine.on_read(line << 6);
        }
        for wb in outcome.writebacks {
            self.llc_writebacks += 1;
            self.engine.on_writeback(wb << 6);
        }
    }
}

impl Runner for LifetimeRunner {
    type Report = LifetimeReport;

    fn run(&mut self, source: &mut dyn TraceSource) -> LifetimeReport {
        source.stream(self);
        self.report()
    }
}

/// Runs `workload` at `scale` under `cfg`, reusing `graph` when provided.
///
/// # Errors
///
/// Returns [`rmcc_workloads::workload::WorkloadError::MissingGraph`] if a
/// graph workload is handed `graph: None` by a caller that built the
/// source itself; the `None` path here builds the graph on demand and
/// cannot fail.
pub fn run_lifetime(
    workload: rmcc_workloads::workload::Workload,
    scale: rmcc_workloads::workload::Scale,
    graph: Option<&rmcc_workloads::graph::Csr>,
    cfg: &SystemConfig,
) -> Result<LifetimeReport, rmcc_workloads::workload::WorkloadError> {
    let mut runner = LifetimeRunner::new(cfg);
    match graph {
        Some(_) => workload.source_on(graph, scale).try_stream(&mut runner)?,
        None => workload.source(scale).try_stream(&mut runner)?,
    }
    Ok(runner.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_workloads::workload::{Scale, Workload};

    fn cfg(scheme: Scheme) -> SystemConfig {
        let mut c = SystemConfig::lifetime(scheme);
        c.data_bytes = 1 << 32;
        c
    }

    #[test]
    fn canneal_tiny_runs_and_reports() {
        let r = run_lifetime(
            Workload::Canneal,
            Scale::Tiny,
            None,
            &cfg(Scheme::Morphable),
        )
        .expect("self-built graph");
        assert!(r.accesses > 10_000);
        assert!(r.llc_misses > 0);
        assert!(r.meta.data_reads == r.llc_misses);
        let rate = r.counter_miss_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn rmcc_reports_memo_stats() {
        let r = run_lifetime(Workload::Canneal, Scale::Tiny, None, &cfg(Scheme::Rmcc))
            .expect("self-built graph");
        let lookups =
            r.meta.memo_l0.all_group_hits + r.meta.memo_l0.all_mru_hits + r.meta.memo_l0.all_misses;
        assert!(lookups > 0, "RMCC must perform lookups");
        assert!(r.max_counter > 0);
    }

    #[test]
    fn non_secure_has_no_counter_misses() {
        let r = run_lifetime(Workload::Mcf, Scale::Tiny, None, &cfg(Scheme::NonSecure))
            .expect("self-built graph");
        assert_eq!(r.meta.counter_misses, 0);
        assert_eq!(r.counter_miss_rate(), 0.0);
    }

    #[test]
    fn tlb_misses_fewer_under_huge_pages() {
        let r = run_lifetime(
            Workload::Canneal,
            Scale::Tiny,
            None,
            &cfg(Scheme::NonSecure),
        )
        .expect("self-built graph");
        assert!(r.tlb_misses_2m <= r.tlb_misses_4k);
        assert!(r.tlb_per_llc_miss(PageSize::Huge2M) <= r.tlb_per_llc_miss(PageSize::Small4K));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_lifetime(Workload::Omnetpp, Scale::Tiny, None, &cfg(Scheme::Rmcc))
            .expect("self-built graph");
        let b = run_lifetime(Workload::Omnetpp, Scale::Tiny, None, &cfg(Scheme::Rmcc))
            .expect("self-built graph");
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod warmup_tests {
    use super::*;
    use rmcc_workloads::workload::{Scale, Workload};

    #[test]
    fn warmup_resets_stats_but_keeps_state() {
        let mut cfg = SystemConfig::lifetime(Scheme::Rmcc);
        cfg.data_bytes = 1 << 32;
        // Run the same tiny workload with and without warm-up.
        let mut cold = LifetimeRunner::new(&cfg);
        Workload::Canneal
            .run(Scale::Tiny, &mut cold)
            .expect("no graph needed");
        let cold_report = cold.report();

        let mut warmed = LifetimeRunner::new(&cfg).with_warmup(10_000);
        Workload::Canneal
            .run(Scale::Tiny, &mut warmed)
            .expect("no graph needed");
        let warm_report = warmed.report();

        // The observation window saw fewer accesses…
        assert!(warm_report.accesses < cold_report.accesses);
        assert_eq!(warm_report.accesses, cold_report.accesses - 10_000);
        // …and fewer compulsory misses, because the caches stayed warm.
        assert!(warm_report.llc_misses < cold_report.llc_misses);
    }
}
