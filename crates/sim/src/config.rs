//! Full-system configuration — the programmatic form of the paper's
//! Table I, printable for the `table1_config` harness.

use rmcc_cache::hierarchy::HierarchyConfig;
use rmcc_cache::tlb::PageSize;
use rmcc_core::rmcc::RmccConfig;
use rmcc_dram::config::{ns, DramConfig, Ps};
use rmcc_secmem::counters::CounterOrg;
use rmcc_secmem::tree::InitPolicy;

/// The secure-memory schemes the evaluation compares (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No confidentiality or integrity — the normalization baseline.
    NonSecure,
    /// Split counters SC-64 (Yan et al., ISCA'06).
    Sc64,
    /// Morphable Counters (Saileshwar et al., MICRO'18) — the paper's
    /// primary baseline.
    Morphable,
    /// RMCC applied on top of Morphable Counters.
    Rmcc,
}

impl Scheme {
    /// All schemes in Figure 13's legend order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Sc64,
        Scheme::Morphable,
        Scheme::Rmcc,
        Scheme::NonSecure,
    ];

    /// The counter organization the scheme uses (`None` for non-secure).
    pub fn counter_org(self) -> Option<CounterOrg> {
        match self {
            Scheme::NonSecure => None,
            Scheme::Sc64 => Some(CounterOrg::Sc64),
            Scheme::Morphable | Scheme::Rmcc => Some(CounterOrg::Morphable128),
        }
    }

    /// Whether the RMCC machinery is active.
    pub fn uses_rmcc(self) -> bool {
        matches!(self, Scheme::Rmcc)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::NonSecure => write!(f, "Non-secure"),
            Scheme::Sc64 => write!(f, "SC-64"),
            Scheme::Morphable => write!(f, "Morphable"),
            Scheme::Rmcc => write!(f, "RMCC"),
        }
    }
}

/// Everything the simulators need to know about the machine under test.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which secure-memory scheme to model.
    pub scheme: Scheme,
    /// AES latency (Table I: 15 ns for AES-128; §VI sensitivity: 22 ns for
    /// AES-256).
    pub aes_latency: Ps,
    /// Carry-less multiplication latency (Table I: 1 ns).
    pub clmul_latency: Ps,
    /// Memoization-table lookup latency.
    pub table_lookup_latency: Ps,
    /// Counter cache capacity in bytes (Table I: 128 KB; Figure 18: 256 KB
    /// and 512 KB; lifetime runs: 32 KB per thread).
    pub counter_cache_bytes: usize,
    /// Counter cache associativity (Table I: 32).
    pub counter_cache_ways: usize,
    /// Data cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// DRAM channel timing.
    pub dram: DramConfig,
    /// RMCC engine parameters (tables, budget).
    pub rmcc: RmccConfig,
    /// Counter initialization (experiments use the randomized policy, §V).
    pub counter_init: InitPolicy,
    /// Protected data capacity (Table I: 128 GB).
    pub data_bytes: u64,
    /// Page size for virtual→physical placement (§V: 2 MB huge pages).
    pub page_size: PageSize,
    /// Core clock in GHz (Table I: 3.2).
    pub core_ghz: f64,
    /// Retire width (Table I: 4-wide OoO).
    pub retire_width: u32,
    /// Reorder-buffer capacity (Table I: 192).
    pub rob_entries: usize,
    /// Maximum outstanding LLC misses (MSHRs).
    pub max_outstanding_misses: usize,
    /// Latency of an L1 / L2 / L3 hit in picoseconds (Table I additive:
    /// 2 / 6 / 23 ns end-to-end).
    pub l1_latency: Ps,
    /// End-to-end L2 hit latency.
    pub l2_latency: Ps,
    /// End-to-end L3 hit latency.
    pub l3_latency: Ps,
    /// Maximum concurrent counter-overflow relevels (§V: "at most two
    /// outstanding overflows at a time").
    pub max_outstanding_overflows: usize,
    /// Model PoisonIvy-style speculative verification (§VII related work):
    /// the core consumes decrypted data before the integrity-tree MAC
    /// checks complete, so chain-verification latency is hidden — but the
    /// counter-dependent AES for *decryption* is not ("CPU cannot execute
    /// on ciphertext"). For comparison against RMCC.
    pub speculative_verify: bool,
    /// Instruction-expansion factor applied to each trace event's `work`
    /// field. Kernels trace only their big-array accesses; the surrounding
    /// L1-resident accesses and arithmetic (address math, cost evaluation,
    /// branches) are summarized by `work × work_scale` instructions, which
    /// calibrates LLC misses-per-kilo-instruction into the range the
    /// paper's native workloads exhibit.
    pub work_scale: u32,
    /// Record epoch-resolved telemetry (metrics registry + JSONL series) in
    /// the metadata engine. Off by default: when off, hot paths pay one
    /// branch and the engine carries an inert [`rmcc_telemetry::NullSink`]
    /// equivalent. The snapshot cadence is `rmcc.epoch_accesses` memory
    /// requests, for every scheme (secure or not).
    pub telemetry: bool,
}

impl SystemConfig {
    /// Table I configuration for the given scheme (detailed / gem5 mode).
    pub fn table1(scheme: Scheme) -> Self {
        SystemConfig {
            scheme,
            aes_latency: ns(15.0),
            clmul_latency: ns(1.0),
            table_lookup_latency: ns(1.0),
            counter_cache_bytes: 128 << 10,
            counter_cache_ways: 32,
            hierarchy: HierarchyConfig::gem5_table1(),
            dram: DramConfig::table1(),
            rmcc: RmccConfig::paper(),
            counter_init: InitPolicy::Randomized {
                seed: 0x52_4d_43_43,
            },
            data_bytes: 128 << 30,
            page_size: PageSize::Huge2M,
            core_ghz: 3.2,
            retire_width: 4,
            rob_entries: 192,
            max_outstanding_misses: 16,
            l1_latency: ns(2.0),
            l2_latency: ns(6.0),
            l3_latency: ns(23.0),
            max_outstanding_overflows: 2,
            speculative_verify: false,
            work_scale: 16,
            telemetry: false,
        }
    }

    /// The detailed-mode configuration used by this reproduction's
    /// experiments: Table I, with the LLC and counter cache scaled down 4×
    /// (8 MB → 2 MB, 128 KB → 32 KB) to match the scaled workload
    /// footprints (tens of MB instead of the paper's hundreds of GB). The
    /// cache-to-footprint ratios stay in the paper's regime, which is what
    /// the counter-miss behaviour depends on; see DESIGN.md.
    pub fn detailed_scaled(scheme: Scheme) -> Self {
        let mut c = Self::table1(scheme);
        c.counter_cache_bytes = 32 << 10;
        c.counter_cache_ways = 8;
        c.hierarchy.l3 = rmcc_cache::hierarchy::LevelConfig {
            bytes: 2 << 20,
            ways: 16,
        };
        c
    }

    /// §V lifetime (Pin) configuration: 32 KB counter cache and the smaller
    /// cache hierarchy, everything else as Table I.
    pub fn lifetime(scheme: Scheme) -> Self {
        SystemConfig {
            counter_cache_bytes: 32 << 10,
            counter_cache_ways: 8,
            hierarchy: HierarchyConfig::pintool_lifetime(),
            ..Self::table1(scheme)
        }
    }

    /// One core cycle in picoseconds.
    pub fn cycle_ps(&self) -> Ps {
        (1_000.0 / self.core_ghz).round() as Ps
    }

    /// Counter cache capacity in 64 B lines.
    pub fn counter_cache_lines(&self) -> usize {
        self.counter_cache_bytes / 64
    }
}

impl std::fmt::Display for SystemConfig {
    /// Renders the configuration in the style of the paper's Table I.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "System Configuration ({})", self.scheme)?;
        writeln!(
            f,
            "  CPU: x86, {:.1} GHz, {}-wide OoO, {}-entry ROB",
            self.core_ghz, self.retire_width, self.rob_entries
        )?;
        writeln!(
            f,
            "  L1/L2/L3 hit: {:.0}/{:.0}/{:.0} ns (end-to-end)",
            self.l1_latency as f64 / 1e3,
            self.l2_latency as f64 / 1e3,
            self.l3_latency as f64 / 1e3
        )?;
        writeln!(
            f,
            "  Counter cache in MC: {} KB {}-way",
            self.counter_cache_bytes >> 10,
            self.counter_cache_ways
        )?;
        if let Some(org) = self.scheme.counter_org() {
            writeln!(
                f,
                "  Counter org: {org} (decode {:.0} ns)",
                org.decode_latency_ps() as f64 / 1e3
            )?;
        }
        writeln!(f, "  AES latency: {:.0} ns", self.aes_latency as f64 / 1e3)?;
        if self.scheme.uses_rmcc() {
            writeln!(
                f,
                "  Memoization: {} groups x {} values per level, {} levels, {:.0}% budget/epoch",
                self.rmcc.table.n_groups,
                self.rmcc.table.group_size,
                self.rmcc.levels,
                self.rmcc.budget_fraction * 100.0
            )?;
            writeln!(
                f,
                "  Carry-less multiply: {:.0} ns",
                self.clmul_latency as f64 / 1e3
            )?;
        }
        writeln!(
            f,
            "  Memory: {} GB DDR4, page size {}",
            self.data_bytes >> 30,
            self.page_size
        )?;
        write!(f, "{}", self.dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties() {
        assert_eq!(Scheme::NonSecure.counter_org(), None);
        assert_eq!(Scheme::Sc64.counter_org(), Some(CounterOrg::Sc64));
        assert_eq!(Scheme::Rmcc.counter_org(), Some(CounterOrg::Morphable128));
        assert!(Scheme::Rmcc.uses_rmcc());
        assert!(!Scheme::Morphable.uses_rmcc());
    }

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1(Scheme::Rmcc);
        assert_eq!(c.aes_latency, 15_000);
        assert_eq!(c.counter_cache_bytes, 128 << 10);
        assert_eq!(c.counter_cache_lines(), 2048);
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.cycle_ps(), 313); // 3.2 GHz
        assert_eq!(c.data_bytes, 128 << 30);
    }

    #[test]
    fn lifetime_uses_small_counter_cache() {
        let c = SystemConfig::lifetime(Scheme::Morphable);
        assert_eq!(c.counter_cache_bytes, 32 << 10);
        assert_eq!(c.hierarchy, HierarchyConfig::pintool_lifetime());
    }

    #[test]
    fn display_prints_table1_facts() {
        let s = SystemConfig::table1(Scheme::Rmcc).to_string();
        assert!(s.contains("3.2 GHz"));
        assert!(s.contains("192-entry ROB"));
        assert!(s.contains("128 KB 32-way"));
        assert!(s.contains("AES latency: 15 ns"));
        assert!(s.contains("16 groups x 8 values"));
        assert!(s.contains("13.75"));
    }
}
