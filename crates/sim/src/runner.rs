//! The common runner interface over the three simulation modes.
//!
//! A [`Runner`] consumes a streaming [`TraceSource`] and produces its
//! mode-specific report. All three modes implement it:
//!
//! | Runner | Report | Methodology |
//! |---|---|---|
//! | [`crate::lifetime::LifetimeRunner`] | `LifetimeReport` | Pin-style functional, whole lifetime |
//! | [`crate::core_model::CoreModel`] | `DetailedReport` | gem5-style timing, one core |
//! | [`crate::multicore::MultiCoreRunner`] | `MultiCoreReport` | lockstep timing, n cores |
//!
//! Because every mode accepts any `TraceSource`, the same live
//! [`rmcc_workloads::workload::WorkloadSource`] (or a recorded
//! [`rmcc_workloads::trace::VecSink`]) drives all of them, and the
//! single-core paths never buffer the trace.

use rmcc_workloads::trace::TraceSource;

/// A simulation mode: stream a trace through, get a report back.
pub trait Runner {
    /// The mode-specific end-of-run report.
    type Report;

    /// Consumes one complete trace from `source` and reports on it.
    fn run(&mut self, source: &mut dyn TraceSource) -> Self::Report;
}
