//! Service-backed sustained-load dynamics: a serving-corpus traffic stream
//! driven through the sharded [`SecureMemoryService`] in batches, with
//! shard-labeled telemetry folded into one deterministic registry.
//!
//! This is [`crate::dynamics`]'s sibling for the concurrent stack: where
//! `run_dynamics` drives a single-owner [`crate::meta_engine::MetaEngine`],
//! `run_service` builds an N-shard service whose shards each own a memo
//! table and budget ledger (`rmcc_core::shard`), routes a
//! [`rmcc_workloads::corpus`] scenario stream through the batched `submit`
//! API, and snapshots both global and per-shard counters into one
//! `MetricsRegistry` — shard order = registration order = export column
//! order, so the JSONL schema is stable.
//!
//! The traffic itself comes from the workload corpus: the run's
//! [`ServingScenario`] selects key-value serving (the default), a
//! phase-change stream, or the adversarial-locality sweep, and
//! [`ServiceRunConfig::corpus_scenario`] maps the run config onto the
//! corpus generator. Because the generator is a plain
//! [`TraceSource`], the same run can be driven from a *recorded* trace
//! instead via [`run_service_from`] — replaying a file recorded with
//! [`rmcc_workloads::codec::TraceWriter`] produces byte-identical
//! telemetry and checksums to the live stream.
//!
//! Everything is a pure function of [`ServiceRunConfig`]. In particular the
//! worker-pool width is **not** part of the function: the service's
//! determinism contract makes the results — and therefore the telemetry and
//! checksum — byte-identical at any `jobs`, which the tests pin down.

use rmcc_core::shard::{aggregate_stats, memo_policy, MemoHandle, ShardMemoConfig, ShardMemoStats};
use rmcc_secmem::service::{
    digest_results, Access, AccessResult, HealthConfig, SecureMemoryService, ServiceConfig,
    ServiceSnapshot,
};
use rmcc_telemetry::{CounterId, MetricsRegistry, Telemetry};
use rmcc_workloads::corpus::{
    splitmix64, AdversarialLocalityConfig, KvServingConfig, PhaseChangeConfig, Scenario,
    BLOCK_BYTES,
};
use rmcc_workloads::trace::{TraceEvent, TraceSink, TraceSource};

/// Which corpus generator drives a service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingScenario {
    /// Multi-tenant key-value serving: zipfian tenant/key popularity with
    /// optional tenant churn. The sustained-load default.
    KvServing,
    /// A hot working set that relocates to a disjoint window every phase —
    /// the re-learning case for memoization.
    PhaseChange,
    /// A locality-hostile round-robin sweep sized to defeat the memo table.
    AdversarialLocality,
}

/// Parameters of a service run. Two equal configs yield byte-identical
/// output at any worker width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRunConfig {
    /// Which corpus scenario generates the traffic.
    pub scenario: ServingScenario,
    /// Shard count for the service.
    pub shards: usize,
    /// Worker-pool width for `submit` (affects wall clock only, never
    /// results).
    pub jobs: usize,
    /// Seed for the scenario's deterministic access-stream generator.
    pub seed: u64,
    /// Distinct tenants; tenant/key popularity is zipfian (octave-sampled),
    /// so a handful of tenants carry most of the traffic.
    pub tenants: u64,
    /// Keyed regions per tenant; each region is one counter-coverage group.
    pub regions_per_tenant: u64,
    /// Batches to submit.
    pub batches: u64,
    /// Accesses per batch.
    pub batch_size: usize,
    /// Probability, in per-mille, that an access is a write.
    pub write_permille: u32,
    /// Events per tenant-churn epoch for the key-value scenario (`0`
    /// disables churn; ignored by the other scenarios).
    pub churn_period: u64,
    /// Protected-region capacity in bytes (must cover every tenant region).
    pub data_bytes: u64,
    /// Telemetry epoch length, in batches.
    pub epoch_batches: u64,
    /// Per-shard memo/budget epoch length, in that shard's accesses.
    pub memo_epoch_accesses: u64,
    /// Per-shard overhead-traffic budget fraction.
    pub budget_fraction: f64,
    /// Ladder seed: each shard's table starts with one group at this value
    /// (0 = cold start, no seeding).
    pub ladder_seed: u64,
    /// Per-shard health lifecycle thresholds. `None` (the default) leaves
    /// the lifecycle off and the telemetry schema exactly as before; `Some`
    /// adds `shard{i}_health` gauges plus global lifecycle counters.
    pub health: Option<HealthConfig>,
}

impl ServiceRunConfig {
    /// A small key-value serving run — a few thousand accesses over a
    /// 4-shard service — sized for tests and CI smoke.
    pub fn small() -> Self {
        ServiceRunConfig {
            scenario: ServingScenario::KvServing,
            shards: 4,
            jobs: 1,
            seed: 0x00D1_5EA5_ED00_0006,
            tenants: 64,
            regions_per_tenant: 16,
            batches: 24,
            batch_size: 512,
            write_permille: 600,
            churn_period: 4_096,
            data_bytes: 1 << 28,
            epoch_batches: 6,
            memo_epoch_accesses: 512,
            budget_fraction: 0.25,
            ladder_seed: 4,
            health: None,
        }
    }

    /// The small run driven by the phase-change stream.
    pub fn phase_small() -> Self {
        ServiceRunConfig {
            scenario: ServingScenario::PhaseChange,
            ..Self::small()
        }
    }

    /// The small run driven by the adversarial-locality sweep.
    pub fn adversarial_small() -> Self {
        ServiceRunConfig {
            scenario: ServingScenario::AdversarialLocality,
            ..Self::small()
        }
    }

    /// Total events one run submits.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.batches.saturating_mul(self.batch_size as u64)
    }

    /// The corpus generator this config selects, sized so each keyed region
    /// is exactly one counter-coverage group of the service the run builds.
    ///
    /// This is the run's live traffic: recording this scenario with
    /// [`rmcc_workloads::codec::TraceWriter`] and replaying the file through
    /// [`run_service_from`] reproduces [`run_service`] byte for byte.
    #[must_use]
    pub fn corpus_scenario(&self) -> Scenario {
        // The service always uses the paper's Morphable counter org, so the
        // coverage (blocks per L0 region) is a pure function of the config.
        let svc = ServiceConfig::new(self.shards, self.data_bytes);
        let blocks_per_region = svc.org.coverage() as u64;
        let regions = self.tenants.max(1) * self.regions_per_tenant.max(1);
        let events = self.events();
        match self.scenario {
            ServingScenario::KvServing => Scenario::KvServing(KvServingConfig {
                tenants: self.tenants,
                regions_per_tenant: self.regions_per_tenant,
                blocks_per_region,
                hot_blocks_per_region: 8,
                events,
                write_permille: self.write_permille,
                churn_period: self.churn_period,
                seed: self.seed,
            }),
            ServingScenario::PhaseChange => Scenario::PhaseChange(PhaseChangeConfig {
                regions,
                blocks_per_region,
                hot_regions: (regions / 32).max(1),
                phase_len: (events / 6).max(1),
                events,
                write_permille: self.write_permille,
                seed: self.seed,
            }),
            ServingScenario::AdversarialLocality => {
                Scenario::AdversarialLocality(AdversarialLocalityConfig {
                    // Size the cycle past the per-shard memo tables so
                    // entries age out between revisits, but keep it inside
                    // the configured keyspace.
                    regions: regions.min(self.shards.max(1) as u64 * 192),
                    blocks_per_region,
                    burst: 2,
                    events,
                    write_permille: self.write_permille,
                    seed: self.seed,
                })
            }
        }
    }
}

/// What a service run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRunResult {
    /// Epoch-resolved telemetry (global + `shard{i}_*` columns), as JSONL.
    pub jsonl: String,
    /// Order-sensitive checksum over every batch's results.
    pub checksum: u64,
    /// Total accesses submitted.
    pub accesses: u64,
    /// Accesses routed to each shard, in shard order.
    pub shard_accesses: Vec<u64>,
    /// Service-wide memoization tallies, folded in shard order.
    pub aggregate: ShardMemoStats,
}

/// Maps one trace event onto a service access. The write fill byte is a
/// pure function of `(addr, seq)`, so a replayed trace produces exactly the
/// payloads the live stream produced without the fill having to be encoded.
#[must_use]
pub fn access_for_event(ev: &TraceEvent, seq: u64) -> Access {
    let block = ev.addr / BLOCK_BYTES;
    if ev.is_write {
        let fill = (splitmix64(ev.addr ^ seq) & 0xFF) as u8;
        Access::Write {
            block,
            data: [fill; 64],
        }
    } else {
        Access::Read { block }
    }
}

/// Per-shard telemetry handles, registered in shard order.
struct ShardIds {
    accesses: Vec<CounterId>,
    conformed: Vec<CounterId>,
    budget_spent: Vec<CounterId>,
    table_hits: Vec<CounterId>,
    fallbacks: Vec<CounterId>,
}

/// Lifecycle telemetry handles, registered only for health-enabled runs.
struct HealthIds {
    degraded_accesses: CounterId,
    rejected_writes: CounterId,
    quarantines: CounterId,
    rebuilds: CounterId,
    per_shard: Vec<CounterId>,
}

/// Global telemetry handles shared by every run.
struct GlobalIds {
    reads: CounterId,
    writes: CounterId,
    read_errors: CounterId,
    write_errors: CounterId,
    shard_faults: CounterId,
    conformed: CounterId,
    baseline: CounterId,
    budget: CounterId,
}

/// The push-based run driver: a [`TraceSink`] that folds events into
/// batches, submits each full batch, and mirrors the results into the
/// telemetry registry — so live generators and recorded traces drive the
/// identical accounting path.
struct ServiceDriver<'a> {
    service: &'a SecureMemoryService,
    snap: &'a ServiceSnapshot,
    handles: &'a [MemoHandle],
    tele: &'a mut Telemetry,
    ids: &'a ShardIds,
    health_ids: Option<&'a HealthIds>,
    global: GlobalIds,
    batch_size: usize,
    epoch_batches: u64,
    batch: Vec<Access>,
    seq: u64,
    batches_done: u64,
    epoch: u64,
    checksum: u64,
    accesses: u64,
    shard_accesses: Vec<u64>,
}

impl ServiceDriver<'_> {
    /// Submits the pending batch (if any) and folds its results into the
    /// checksum and telemetry. Epoch boundaries are counted in batches, so
    /// a trailing partial batch still resolves into the run's last epoch.
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let results = self.service.submit(&self.batch);
        self.checksum = self.checksum.rotate_left(9) ^ digest_results(&results);
        self.accesses += results.len() as u64;
        self.batches_done += 1;
        if let Some(active) = self.tele.active_mut() {
            let reg = &mut active.registry;
            for (access, result) in self.batch.iter().zip(results.iter()) {
                let shard = self.snap.shard_of(access.block());
                if let Some(n) = self.shard_accesses.get_mut(shard) {
                    *n += 1;
                }
                if let Some(&id) = self.ids.accesses.get(shard) {
                    reg.incr(id, 1);
                }
                match result {
                    AccessResult::Data(_) => reg.incr(self.global.reads, 1),
                    AccessResult::Written { .. } => reg.incr(self.global.writes, 1),
                    AccessResult::ReadFailed(_) => {
                        reg.incr(self.global.reads, 1);
                        reg.incr(self.global.read_errors, 1);
                    }
                    AccessResult::WriteFailed(_) => {
                        reg.incr(self.global.writes, 1);
                        reg.incr(self.global.write_errors, 1);
                    }
                    AccessResult::ShardFault { .. } => reg.incr(self.global.shard_faults, 1),
                }
            }
            // Mirror per-shard policy tallies absolutely (cumulative
            // counters, like MetaEngine's epoch snapshot).
            for (shard, handle) in self.handles.iter().enumerate() {
                let s = handle.stats();
                if let Some(&id) = self.ids.conformed.get(shard) {
                    reg.set_counter(id, s.conformed_writes);
                }
                if let Some(&id) = self.ids.budget_spent.get(shard) {
                    reg.set_counter(id, s.budget_spent);
                }
                if let Some(&id) = self.ids.table_hits.get(shard) {
                    reg.set_counter(id, s.table.group_hits + s.table.mru_hits);
                }
                if let Some(&id) = self.ids.fallbacks.get(shard) {
                    reg.set_counter(id, s.table.fallbacks);
                }
            }
            let agg = aggregate_stats(self.handles);
            reg.set_counter(self.global.conformed, agg.conformed_writes);
            reg.set_counter(self.global.baseline, agg.baseline_writes);
            reg.set_counter(self.global.budget, agg.budget_spent);
            if let Some(hids) = self.health_ids {
                let mut degraded = 0u64;
                let mut rejected = 0u64;
                let mut quarantines = 0u64;
                let mut rebuilds = 0u64;
                for shard in 0..self.snap.shards() {
                    let Some(hs) = self.service.health_stats(shard) else {
                        continue;
                    };
                    degraded = degraded.saturating_add(hs.degraded_accesses);
                    rejected = rejected.saturating_add(hs.rejected_writes);
                    quarantines = quarantines.saturating_add(hs.quarantines);
                    rebuilds = rebuilds.saturating_add(hs.rebuilds);
                    if let Some(&id) = hids.per_shard.get(shard) {
                        reg.set_counter(id, hs.health.code());
                    }
                }
                reg.set_counter(hids.degraded_accesses, degraded);
                reg.set_counter(hids.rejected_writes, rejected);
                reg.set_counter(hids.quarantines, quarantines);
                reg.set_counter(hids.rebuilds, rebuilds);
            }
            if self.batches_done.is_multiple_of(self.epoch_batches) {
                active.snapshot(self.epoch, self.accesses);
                self.epoch += 1;
            }
        }
        self.batch.clear();
    }
}

impl TraceSink for ServiceDriver<'_> {
    fn emit(&mut self, event: TraceEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.batch.push(access_for_event(&event, seq));
        if self.batch.len() >= self.batch_size {
            self.flush();
        }
    }
}

/// Runs the configured corpus scenario through the service and returns
/// telemetry plus tallies.
pub fn run_service(cfg: &ServiceRunConfig) -> ServiceRunResult {
    let mut scenario = cfg.corpus_scenario();
    run_service_from(cfg, &mut scenario)
}

/// Runs the sustained-load stream from an arbitrary [`TraceSource`] —
/// the live generator or a recorded trace file — and returns telemetry
/// plus tallies. Replaying a trace recorded from
/// [`ServiceRunConfig::corpus_scenario`] reproduces [`run_service`]'s
/// result byte for byte.
pub fn run_service_from(cfg: &ServiceRunConfig, source: &mut dyn TraceSource) -> ServiceRunResult {
    let memo_cfg = {
        let mut m = ShardMemoConfig::paper().with_epoch(cfg.memo_epoch_accesses);
        m.budget_fraction = cfg.budget_fraction;
        m
    };
    let mut handles: Vec<MemoHandle> = Vec::with_capacity(cfg.shards.max(1));
    let mut svc_cfg = ServiceConfig::new(cfg.shards, cfg.data_bytes).with_jobs(cfg.jobs.max(1));
    if let Some(h) = cfg.health {
        svc_cfg = svc_cfg.with_health(h);
    }
    let service = SecureMemoryService::with_policies(&svc_cfg, |_| {
        let (policy, handle) = memo_policy(&memo_cfg);
        if cfg.ladder_seed > 0 {
            handle.seed_groups([cfg.ladder_seed]);
        }
        handles.push(handle);
        policy
    });
    let snap = service.snapshot();
    let shards = snap.shards();

    // The exporter renders `epoch` and `accesses` as built-in leading
    // columns of every snapshot, so the registry holds only the columns
    // beyond those two.
    let mut registry = MetricsRegistry::new();
    let global = GlobalIds {
        reads: registry.counter("reads"),
        writes: registry.counter("writes"),
        read_errors: registry.counter("read_errors"),
        write_errors: registry.counter("write_errors"),
        shard_faults: registry.counter("shard_faults"),
        conformed: registry.counter("conformed_writes"),
        baseline: registry.counter("baseline_writes"),
        budget: registry.counter("budget_spent"),
    };
    let ids = ShardIds {
        accesses: registry.shard_counters("accesses", shards),
        conformed: registry.shard_counters("conformed", shards),
        budget_spent: registry.shard_counters("budget_spent", shards),
        table_hits: registry.shard_counters("table_hits", shards),
        fallbacks: registry.shard_counters("fallbacks", shards),
    };
    // Lifecycle columns exist only when the lifecycle itself does, so a
    // health-disabled run exports the exact pre-lifecycle schema.
    let health_ids = cfg.health.map(|_| HealthIds {
        degraded_accesses: registry.counter("degraded_accesses"),
        rejected_writes: registry.counter("rejected_writes"),
        quarantines: registry.counter("quarantines"),
        rebuilds: registry.counter("rebuilds"),
        per_shard: registry.shard_counters("health", shards),
    });
    let mut tele = Telemetry::on(registry);

    let mut driver = ServiceDriver {
        service: &service,
        snap: snap.as_ref(),
        handles: &handles,
        tele: &mut tele,
        ids: &ids,
        health_ids: health_ids.as_ref(),
        global,
        batch_size: cfg.batch_size.max(1),
        epoch_batches: cfg.epoch_batches.max(1),
        batch: Vec::with_capacity(cfg.batch_size.max(1)),
        seq: 0,
        batches_done: 0,
        epoch: 0,
        checksum: 0,
        accesses: 0,
        shard_accesses: vec![0u64; shards],
    };
    source.stream(&mut driver);
    driver.flush();
    let checksum = driver.checksum;
    let accesses = driver.accesses;
    let shard_accesses = std::mem::take(&mut driver.shard_accesses);
    drop(driver);

    ServiceRunResult {
        jsonl: tele.to_jsonl().unwrap_or_default(),
        checksum,
        accesses,
        shard_accesses,
        aggregate: aggregate_stats(&handles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcc_workloads::codec::{TraceReader, TraceWriter};
    use std::io::Cursor;

    #[test]
    fn pure_function_of_config() {
        let cfg = ServiceRunConfig::small();
        let a = run_service(&cfg);
        let b = run_service(&cfg);
        assert_eq!(a, b);
        assert!(!a.jsonl.is_empty());
    }

    #[test]
    fn worker_width_never_changes_results() {
        let mut cfg = ServiceRunConfig::small();
        let serial = run_service(&cfg);
        cfg.jobs = 4;
        let pooled = run_service(&cfg);
        assert_eq!(serial.checksum, pooled.checksum);
        assert_eq!(serial.jsonl, pooled.jsonl, "telemetry is width-invariant");
        assert_eq!(serial.aggregate, pooled.aggregate);
    }

    #[test]
    fn every_scenario_runs_deterministically() {
        for cfg in [
            ServiceRunConfig::small(),
            ServiceRunConfig::phase_small(),
            ServiceRunConfig::adversarial_small(),
        ] {
            let a = run_service(&cfg);
            let b = run_service(&cfg);
            assert_eq!(a, b, "{} not deterministic", cfg.corpus_scenario().name());
            assert_eq!(a.accesses, cfg.events());
            assert!(!a.jsonl.is_empty());
        }
    }

    #[test]
    fn scenarios_produce_distinct_streams() {
        let kv = run_service(&ServiceRunConfig::small());
        let phase = run_service(&ServiceRunConfig::phase_small());
        let adv = run_service(&ServiceRunConfig::adversarial_small());
        assert_ne!(kv.checksum, phase.checksum);
        assert_ne!(kv.checksum, adv.checksum);
        assert_ne!(phase.checksum, adv.checksum);
    }

    #[test]
    fn recorded_trace_replays_byte_identically() {
        for cfg in [
            ServiceRunConfig::small(),
            ServiceRunConfig::phase_small(),
            ServiceRunConfig::adversarial_small(),
        ] {
            let live = run_service(&cfg);
            let mut writer = TraceWriter::new(Cursor::new(Vec::new())).expect("writer");
            cfg.corpus_scenario().stream(&mut writer);
            let (summary, cursor) = writer.finish_into_inner().expect("finish");
            assert_eq!(summary.events, cfg.events());
            let mut reader = TraceReader::new(Cursor::new(cursor.into_inner())).expect("reader");
            let replayed = run_service_from(&cfg, &mut reader);
            assert!(reader.error().is_none(), "replay hit a codec error");
            assert_eq!(
                live,
                replayed,
                "{}: replay diverged from live stream",
                cfg.corpus_scenario().name()
            );
        }
    }

    #[test]
    fn shard_columns_partition_the_traffic() {
        let r = run_service(&ServiceRunConfig::small());
        assert_eq!(r.shard_accesses.iter().sum::<u64>(), r.accesses);
        assert!(
            r.shard_accesses.iter().filter(|&&n| n > 0).count() > 1,
            "zipfian tenants still spread across shards: {:?}",
            r.shard_accesses
        );
        let rows = rmcc_telemetry::parse_jsonl(&r.jsonl).expect("valid JSONL");
        assert!(rows.len() >= 3, "several epochs resolved");
        let last = rows.last().expect("nonempty");
        let col = |k: &str| {
            last.get(k)
                .and_then(rmcc_telemetry::JsonValue::as_f64)
                .unwrap_or(-1.0)
        };
        // Shard-labeled columns exist and sum to the global access count.
        let shard_sum: f64 = (0..4).map(|i| col(&format!("shard{i}_accesses"))).sum();
        assert!((shard_sum - col("accesses")).abs() < 0.5);
        assert!(col("shard_faults") == 0.0);
    }

    #[test]
    fn health_columns_export_only_when_enabled() {
        let base = run_service(&ServiceRunConfig::small());
        assert!(
            !base.jsonl.contains("shard0_health") && !base.jsonl.contains("\"quarantines\""),
            "health-disabled schema must stay pre-lifecycle"
        );

        let mut cfg = ServiceRunConfig::small();
        cfg.health = Some(HealthConfig::new());
        let r = run_service(&cfg);
        assert_eq!(r, run_service(&cfg), "health telemetry is deterministic");
        let rows = rmcc_telemetry::parse_jsonl(&r.jsonl).expect("valid JSONL");
        let last = rows.last().expect("nonempty");
        let col = |k: &str| {
            last.get(k)
                .and_then(rmcc_telemetry::JsonValue::as_f64)
                .unwrap_or(-1.0)
        };
        for i in 0..4 {
            assert_eq!(
                col(&format!("shard{i}_health")),
                0.0,
                "clean load keeps shard {i} Healthy"
            );
        }
        assert_eq!(col("quarantines"), 0.0);
        assert_eq!(col("rebuilds"), 0.0);
        assert_eq!(col("degraded_accesses"), 0.0);
        assert_eq!(col("rejected_writes"), 0.0);
        assert_eq!(
            r.checksum, base.checksum,
            "enabling the lifecycle never changes clean-load results"
        );
    }

    #[test]
    fn memoization_conforms_under_sustained_load() {
        let r = run_service(&ServiceRunConfig::small());
        assert!(
            r.aggregate.conformed_writes > 0,
            "seeded ladders steer some writes: {:?}",
            r.aggregate
        );
        assert!(r.aggregate.budget_ok, "every shard ledger invariant holds");
        assert!(r.aggregate.budget_epochs > 0, "per-shard epochs ticked");
    }

    #[test]
    fn kv_addresses_fit_the_configured_keyspace() {
        let cfg = ServiceRunConfig::small();
        let scenario = cfg.corpus_scenario();
        let Scenario::KvServing(kv) = scenario else {
            panic!("small preset is key-value serving");
        };
        let span = kv.tenants * kv.regions_per_tenant * kv.blocks_per_region * BLOCK_BYTES;
        assert!(
            span <= cfg.data_bytes,
            "keyspace {span} exceeds data_bytes {}",
            cfg.data_bytes
        );
    }
}
