//! Service-backed sustained-load dynamics: a multi-tenant zipfian stream
//! driven through the sharded [`SecureMemoryService`] in batches, with
//! shard-labeled telemetry folded into one deterministic registry.
//!
//! This is [`crate::dynamics`]'s sibling for the concurrent stack: where
//! `run_dynamics` drives a single-owner [`crate::meta_engine::MetaEngine`],
//! `run_service` builds an N-shard service whose shards each own a memo
//! table and budget ledger (`rmcc_core::shard`), routes a tenant-skewed
//! access stream through the batched `submit` API, and snapshots both
//! global and per-shard counters into one `MetricsRegistry` — shard order =
//! registration order = export column order, so the JSONL schema is stable.
//!
//! Everything is a pure function of [`ServiceRunConfig`]. In particular the
//! worker-pool width is **not** part of the function: the service's
//! determinism contract makes the results — and therefore the telemetry and
//! checksum — byte-identical at any `jobs`, which the tests pin down.

use rmcc_core::shard::{aggregate_stats, memo_policy, MemoHandle, ShardMemoConfig, ShardMemoStats};
use rmcc_secmem::service::{
    digest_results, Access, AccessResult, HealthConfig, SecureMemoryService, ServiceConfig,
};
use rmcc_telemetry::{CounterId, MetricsRegistry, Telemetry};

/// Parameters of a service run. Two equal configs yield byte-identical
/// output at any worker width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceRunConfig {
    /// Shard count for the service.
    pub shards: usize,
    /// Worker-pool width for `submit` (affects wall clock only, never
    /// results).
    pub jobs: usize,
    /// Seed for the SplitMix64 access-stream generator.
    pub seed: u64,
    /// Distinct tenants; tenant popularity is zipfian (octave-sampled), so
    /// a handful of tenants carry most of the traffic.
    pub tenants: u64,
    /// Keyed regions per tenant; a tenant's traffic is uniform over its
    /// regions, and each region is one counter-coverage group.
    pub regions_per_tenant: u64,
    /// Batches to submit.
    pub batches: u64,
    /// Accesses per batch.
    pub batch_size: usize,
    /// Probability, in per-mille, that an access is a write.
    pub write_permille: u32,
    /// Protected-region capacity in bytes (must cover every tenant region).
    pub data_bytes: u64,
    /// Telemetry epoch length, in batches.
    pub epoch_batches: u64,
    /// Per-shard memo/budget epoch length, in that shard's accesses.
    pub memo_epoch_accesses: u64,
    /// Per-shard overhead-traffic budget fraction.
    pub budget_fraction: f64,
    /// Ladder seed: each shard's table starts with one group at this value
    /// (0 = cold start, no seeding).
    pub ladder_seed: u64,
    /// Per-shard health lifecycle thresholds. `None` (the default) leaves
    /// the lifecycle off and the telemetry schema exactly as before; `Some`
    /// adds `shard{i}_health` gauges plus global lifecycle counters.
    pub health: Option<HealthConfig>,
}

impl ServiceRunConfig {
    /// A small run — a few thousand accesses over a 4-shard service —
    /// sized for tests and CI smoke.
    pub fn small() -> Self {
        ServiceRunConfig {
            shards: 4,
            jobs: 1,
            seed: 0x00D1_5EA5_ED00_0006,
            tenants: 64,
            regions_per_tenant: 16,
            batches: 24,
            batch_size: 512,
            write_permille: 600,
            data_bytes: 1 << 28,
            epoch_batches: 6,
            memo_epoch_accesses: 512,
            budget_fraction: 0.25,
            ladder_seed: 4,
            health: None,
        }
    }
}

/// What a service run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRunResult {
    /// Epoch-resolved telemetry (global + `shard{i}_*` columns), as JSONL.
    pub jsonl: String,
    /// Order-sensitive checksum over every batch's results.
    pub checksum: u64,
    /// Total accesses submitted.
    pub accesses: u64,
    /// Accesses routed to each shard, in shard order.
    pub shard_accesses: Vec<u64>,
    /// Service-wide memoization tallies, folded in shard order.
    pub aggregate: ShardMemoStats,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ~1/x-distributed rank in `[0, n)`: picks a binary octave uniformly,
/// then a uniform element inside it, so each octave carries equal mass —
/// the integer-only analogue of a Zipf(s = 1) inverse CDF. All-integer on
/// purpose: no `exp`/`ln`, so the stream is bit-identical on every
/// platform.
fn zipf_rank(r1: u64, r2: u64, n: u64) -> u64 {
    let n = n.max(1);
    let octaves = u64::from(64 - n.leading_zeros());
    let base = 1u64 << (r1 % octaves);
    (base - 1 + (r2 % base)).min(n - 1)
}

/// Per-shard telemetry handles, registered in shard order.
struct ShardIds {
    accesses: Vec<CounterId>,
    conformed: Vec<CounterId>,
    budget_spent: Vec<CounterId>,
    table_hits: Vec<CounterId>,
    fallbacks: Vec<CounterId>,
}

/// Lifecycle telemetry handles, registered only for health-enabled runs.
struct HealthIds {
    degraded_accesses: CounterId,
    rejected_writes: CounterId,
    quarantines: CounterId,
    rebuilds: CounterId,
    per_shard: Vec<CounterId>,
}

/// Runs the sustained-load stream and returns telemetry plus tallies.
pub fn run_service(cfg: &ServiceRunConfig) -> ServiceRunResult {
    let memo_cfg = {
        let mut m = ShardMemoConfig::paper().with_epoch(cfg.memo_epoch_accesses);
        m.budget_fraction = cfg.budget_fraction;
        m
    };
    let mut handles: Vec<MemoHandle> = Vec::with_capacity(cfg.shards.max(1));
    let mut svc_cfg = ServiceConfig::new(cfg.shards, cfg.data_bytes).with_jobs(cfg.jobs.max(1));
    if let Some(h) = cfg.health {
        svc_cfg = svc_cfg.with_health(h);
    }
    let service = SecureMemoryService::with_policies(&svc_cfg, |_| {
        let (policy, handle) = memo_policy(&memo_cfg);
        if cfg.ladder_seed > 0 {
            handle.seed_groups([cfg.ladder_seed]);
        }
        handles.push(handle);
        policy
    });
    let snap = service.snapshot();
    let shards = snap.shards();
    let coverage = snap.coverage();

    // The exporter renders `epoch` and `accesses` as built-in leading
    // columns of every snapshot, so the registry holds only the columns
    // beyond those two.
    let mut registry = MetricsRegistry::new();
    let reads_id = registry.counter("reads");
    let writes_id = registry.counter("writes");
    let read_errors_id = registry.counter("read_errors");
    let write_errors_id = registry.counter("write_errors");
    let shard_faults_id = registry.counter("shard_faults");
    let conformed_id = registry.counter("conformed_writes");
    let baseline_id = registry.counter("baseline_writes");
    let budget_id = registry.counter("budget_spent");
    let ids = ShardIds {
        accesses: registry.shard_counters("accesses", shards),
        conformed: registry.shard_counters("conformed", shards),
        budget_spent: registry.shard_counters("budget_spent", shards),
        table_hits: registry.shard_counters("table_hits", shards),
        fallbacks: registry.shard_counters("fallbacks", shards),
    };
    // Lifecycle columns exist only when the lifecycle itself does, so a
    // health-disabled run exports the exact pre-lifecycle schema.
    let health_ids = cfg.health.map(|_| HealthIds {
        degraded_accesses: registry.counter("degraded_accesses"),
        rejected_writes: registry.counter("rejected_writes"),
        quarantines: registry.counter("quarantines"),
        rebuilds: registry.counter("rebuilds"),
        per_shard: registry.shard_counters("health", shards),
    });
    let mut tele = Telemetry::on(registry);

    let mut rng = cfg.seed | 1;
    let mut next = || {
        rng = splitmix64(rng);
        rng
    };
    let mut checksum = 0u64;
    let mut accesses = 0u64;
    let mut shard_accesses = vec![0u64; shards];
    let mut batch = Vec::with_capacity(cfg.batch_size);
    let mut epoch = 0u64;
    for b in 0..cfg.batches {
        batch.clear();
        for _ in 0..cfg.batch_size {
            let tenant = zipf_rank(next(), next(), cfg.tenants);
            let region = next() % cfg.regions_per_tenant.max(1);
            let offset = next() % coverage.max(1);
            let block = (tenant * cfg.regions_per_tenant.max(1) + region) * coverage + offset;
            if next() % 1_000 < u64::from(cfg.write_permille) {
                let fill = next();
                batch.push(Access::Write {
                    block,
                    data: [(fill & 0xFF) as u8; 64],
                });
            } else {
                batch.push(Access::Read { block });
            }
        }
        let results = service.submit(&batch);
        checksum = checksum.rotate_left(9) ^ digest_results(&results);
        accesses += results.len() as u64;
        if let Some(active) = tele.active_mut() {
            let reg = &mut active.registry;
            for (access, result) in batch.iter().zip(results.iter()) {
                let shard = snap.shard_of(access.block());
                if let Some(n) = shard_accesses.get_mut(shard) {
                    *n += 1;
                }
                if let Some(&id) = ids.accesses.get(shard) {
                    reg.incr(id, 1);
                }
                match result {
                    AccessResult::Data(_) => reg.incr(reads_id, 1),
                    AccessResult::Written { .. } => reg.incr(writes_id, 1),
                    AccessResult::ReadFailed(_) => {
                        reg.incr(reads_id, 1);
                        reg.incr(read_errors_id, 1);
                    }
                    AccessResult::WriteFailed(_) => {
                        reg.incr(writes_id, 1);
                        reg.incr(write_errors_id, 1);
                    }
                    AccessResult::ShardFault { .. } => reg.incr(shard_faults_id, 1),
                }
            }
            // Mirror per-shard policy tallies absolutely (cumulative
            // counters, like MetaEngine's epoch snapshot).
            for (shard, handle) in handles.iter().enumerate() {
                let s = handle.stats();
                if let Some(&id) = ids.conformed.get(shard) {
                    reg.set_counter(id, s.conformed_writes);
                }
                if let Some(&id) = ids.budget_spent.get(shard) {
                    reg.set_counter(id, s.budget_spent);
                }
                if let Some(&id) = ids.table_hits.get(shard) {
                    reg.set_counter(id, s.table.group_hits + s.table.mru_hits);
                }
                if let Some(&id) = ids.fallbacks.get(shard) {
                    reg.set_counter(id, s.table.fallbacks);
                }
            }
            let agg = aggregate_stats(&handles);
            reg.set_counter(conformed_id, agg.conformed_writes);
            reg.set_counter(baseline_id, agg.baseline_writes);
            reg.set_counter(budget_id, agg.budget_spent);
            if let Some(hids) = &health_ids {
                let mut degraded = 0u64;
                let mut rejected = 0u64;
                let mut quarantines = 0u64;
                let mut rebuilds = 0u64;
                for shard in 0..shards {
                    let Some(hs) = service.health_stats(shard) else {
                        continue;
                    };
                    degraded = degraded.saturating_add(hs.degraded_accesses);
                    rejected = rejected.saturating_add(hs.rejected_writes);
                    quarantines = quarantines.saturating_add(hs.quarantines);
                    rebuilds = rebuilds.saturating_add(hs.rebuilds);
                    if let Some(&id) = hids.per_shard.get(shard) {
                        reg.set_counter(id, hs.health.code());
                    }
                }
                reg.set_counter(hids.degraded_accesses, degraded);
                reg.set_counter(hids.rejected_writes, rejected);
                reg.set_counter(hids.quarantines, quarantines);
                reg.set_counter(hids.rebuilds, rebuilds);
            }
            if (b + 1) % cfg.epoch_batches.max(1) == 0 {
                active.snapshot(epoch, accesses);
                epoch += 1;
            }
        }
    }

    ServiceRunResult {
        jsonl: tele.to_jsonl().unwrap_or_default(),
        checksum,
        accesses,
        shard_accesses,
        aggregate: aggregate_stats(&handles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_config() {
        let cfg = ServiceRunConfig::small();
        let a = run_service(&cfg);
        let b = run_service(&cfg);
        assert_eq!(a, b);
        assert!(!a.jsonl.is_empty());
    }

    #[test]
    fn worker_width_never_changes_results() {
        let mut cfg = ServiceRunConfig::small();
        let serial = run_service(&cfg);
        cfg.jobs = 4;
        let pooled = run_service(&cfg);
        assert_eq!(serial.checksum, pooled.checksum);
        assert_eq!(serial.jsonl, pooled.jsonl, "telemetry is width-invariant");
        assert_eq!(serial.aggregate, pooled.aggregate);
    }

    #[test]
    fn shard_columns_partition_the_traffic() {
        let r = run_service(&ServiceRunConfig::small());
        assert_eq!(r.shard_accesses.iter().sum::<u64>(), r.accesses);
        assert!(
            r.shard_accesses.iter().filter(|&&n| n > 0).count() > 1,
            "zipfian tenants still spread across shards: {:?}",
            r.shard_accesses
        );
        let rows = rmcc_telemetry::parse_jsonl(&r.jsonl).expect("valid JSONL");
        assert!(rows.len() >= 3, "several epochs resolved");
        let last = rows.last().expect("nonempty");
        let col = |k: &str| {
            last.get(k)
                .and_then(rmcc_telemetry::JsonValue::as_f64)
                .unwrap_or(-1.0)
        };
        // Shard-labeled columns exist and sum to the global access count.
        let shard_sum: f64 = (0..4).map(|i| col(&format!("shard{i}_accesses"))).sum();
        assert!((shard_sum - col("accesses")).abs() < 0.5);
        assert!(col("shard_faults") == 0.0);
    }

    #[test]
    fn health_columns_export_only_when_enabled() {
        let base = run_service(&ServiceRunConfig::small());
        assert!(
            !base.jsonl.contains("shard0_health") && !base.jsonl.contains("\"quarantines\""),
            "health-disabled schema must stay pre-lifecycle"
        );

        let mut cfg = ServiceRunConfig::small();
        cfg.health = Some(HealthConfig::new());
        let r = run_service(&cfg);
        assert_eq!(r, run_service(&cfg), "health telemetry is deterministic");
        let rows = rmcc_telemetry::parse_jsonl(&r.jsonl).expect("valid JSONL");
        let last = rows.last().expect("nonempty");
        let col = |k: &str| {
            last.get(k)
                .and_then(rmcc_telemetry::JsonValue::as_f64)
                .unwrap_or(-1.0)
        };
        for i in 0..4 {
            assert_eq!(
                col(&format!("shard{i}_health")),
                0.0,
                "clean load keeps shard {i} Healthy"
            );
        }
        assert_eq!(col("quarantines"), 0.0);
        assert_eq!(col("rebuilds"), 0.0);
        assert_eq!(col("degraded_accesses"), 0.0);
        assert_eq!(col("rejected_writes"), 0.0);
        assert_eq!(
            r.checksum, base.checksum,
            "enabling the lifecycle never changes clean-load results"
        );
    }

    #[test]
    fn memoization_conforms_under_sustained_load() {
        let r = run_service(&ServiceRunConfig::small());
        assert!(
            r.aggregate.conformed_writes > 0,
            "seeded ladders steer some writes: {:?}",
            r.aggregate
        );
        assert!(r.aggregate.budget_ok, "every shard ledger invariant holds");
        assert!(r.aggregate.budget_epochs > 0, "per-shard epochs ticked");
    }

    #[test]
    fn zipf_rank_is_in_range_and_skewed() {
        let mut s = 1u64;
        let mut next = || {
            s = splitmix64(s);
            s
        };
        let n = 1_000u64;
        let mut low = 0u64;
        for _ in 0..10_000 {
            let r = zipf_rank(next(), next(), n);
            assert!(r < n);
            if r < 8 {
                low += 1;
            }
        }
        // Eight of a thousand keys carry far more than their uniform share
        // (0.8%) of the traffic.
        assert!(low > 2_000, "zipf head too light: {low}");
    }
}
