//! The fault harness: one secure memory under seeded adversarial fire.
//!
//! Every fault is *constructed to land* — the harness does not flip bits
//! into the void and hope. A ciphertext flip targets a written block, a
//! rollback captures a genuinely stale image, a memoization corruption hits
//! a value that is actually memoized. That way the classification is sharp:
//! an undetected fault is a real security bug, never a dud injection.

use std::collections::BTreeMap;

use rmcc_core::rmcc::{Rmcc, RmccConfig};
use rmcc_core::table::LookupResult;
use rmcc_crypto::otp::COUNTER_MAX;
use rmcc_secmem::counters::CounterOrg;
use rmcc_secmem::engine::{PipelineKind, ReadError, SecureMemory};

/// A tiny deterministic RNG (splitmix64) so campaigns are reproducible from
/// a single seed with no external dependency.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// Every fault class the paper's threat model names (§II, §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one ciphertext bit on the bus.
    CipherBitFlip,
    /// Corrupt ciphertext *and* forge the co-located MAC.
    MacForge,
    /// Roll the stored counter-block image back to a stale capture.
    CounterRollback,
    /// Replay a full stale (ciphertext, MAC, counter image) triple.
    BlockReplay,
    /// Suppress a data writeback (stale data survives, or the first write
    /// never lands at all).
    DroppedWriteback,
    /// Corrupt one memoized AES result inside the RMCC table (SRAM upset).
    MemoCorruption,
    /// Forge the counter image to the Observed-System-Max bound or the
    /// 56-bit [`COUNTER_MAX`] itself, probing saturation handling.
    CounterSaturation,
}

impl FaultKind {
    /// Every fault class, in a fixed order (campaign iteration).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::CipherBitFlip,
        FaultKind::MacForge,
        FaultKind::CounterRollback,
        FaultKind::BlockReplay,
        FaultKind::DroppedWriteback,
        FaultKind::MemoCorruption,
        FaultKind::CounterSaturation,
    ];

    /// Whether this fault attacks data/metadata *integrity* — i.e. a read
    /// after it must fail with a [`ReadError`]. Memoization-table
    /// corruption is the exception: the table caches recomputable AES
    /// results, so the correct response is a fail-safe fallback, not an
    /// error.
    pub fn integrity_affecting(self) -> bool {
        !matches!(self, FaultKind::MemoCorruption)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CipherBitFlip => "cipher-bit-flip",
            FaultKind::MacForge => "mac-forge",
            FaultKind::CounterRollback => "counter-rollback",
            FaultKind::BlockReplay => "block-replay",
            FaultKind::DroppedWriteback => "dropped-writeback",
            FaultKind::MemoCorruption => "memo-corruption",
            FaultKind::CounterSaturation => "counter-saturation",
        }
    }
}

/// What the stack did with one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The read after the fault failed with a typed error — the integrity
    /// machinery caught it.
    Detected(ReadError),
    /// The fault hit recomputable state (memoization table); the pipeline
    /// fell back to the full AES path and the plaintext stayed correct.
    FailSafe,
    /// The read succeeded with plaintext that does not match the last
    /// write — the one outcome that must never happen.
    SilentCorruption,
}

impl FaultOutcome {
    /// `true` unless the fault corrupted plaintext silently.
    pub fn is_safe(self) -> bool {
        !matches!(self, FaultOutcome::SilentCorruption)
    }
}

/// Seeded memoized group starts for the harness's RMCC engine; chosen to be
/// far apart so group membership is unambiguous.
const MEMO_GROUP_STARTS: [u64; 2] = [1_000, 50_000];

/// One secure memory + RMCC engine + plaintext shadow copy under seeded
/// adversarial fire.
///
/// After every injection the harness classifies the outcome, *heals* the
/// damage by rewriting the victim, and asserts the heal took — so a long
/// campaign keeps every fault independent and the final state checkable.
#[derive(Debug)]
pub struct FaultHarness {
    mem: SecureMemory,
    rmcc: Rmcc,
    /// The last plaintext written per block — ground truth for silent
    /// corruption checks.
    shadow: BTreeMap<u64, [u8; 64]>,
    /// Victim pool, sorted for deterministic choice.
    blocks: Vec<u64>,
    rng: FaultRng,
    write_round: u64,
}

impl FaultHarness {
    /// A harness over `working_set` warm blocks of a fresh secure memory.
    ///
    /// # Panics
    ///
    /// Panics if `working_set` is zero or exceeds the memory's capacity.
    pub fn new(
        org: CounterOrg,
        pipeline: PipelineKind,
        seed: u64,
        working_set: u64,
        data_bytes: u64,
    ) -> Self {
        let mem = SecureMemory::new(org, data_bytes, pipeline, seed);
        assert!(
            working_set > 0 && working_set <= mem.layout().data_blocks(),
            "working set must fit the protected capacity"
        );
        let mut rmcc = Rmcc::new(RmccConfig::paper());
        for start in MEMO_GROUP_STARTS {
            rmcc.seed_group(0, start);
        }
        let mut harness = FaultHarness {
            mem,
            rmcc,
            shadow: BTreeMap::new(),
            blocks: Vec::new(),
            rng: FaultRng::new(seed ^ (0xfa_u64 << 56)),
            write_round: 0,
        };
        // Warm-up: spread the working set across counter blocks so faults
        // exercise different tree paths.
        let stride = (harness.mem.layout().data_blocks() / working_set).max(1);
        for i in 0..working_set {
            let block = i * stride;
            harness.rewrite(block);
            harness.blocks.push(block);
        }
        harness
    }

    /// The victim pool.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// The underlying RMCC engine (fallback-counter inspection).
    pub fn rmcc(&self) -> &Rmcc {
        &self.rmcc
    }

    fn pattern(&self, block: u64, round: u64) -> [u8; 64] {
        let mut rng = FaultRng::new(block.wrapping_mul(0x1234_5678) ^ round);
        core::array::from_fn(|i| (rng.next_u64() >> (8 * (i % 8))) as u8)
    }

    /// Writes a fresh deterministic pattern to `block` and records it in
    /// the shadow copy.
    fn rewrite(&mut self, block: u64) {
        self.write_round += 1;
        let data = self.pattern(block, self.write_round);
        self.mem
            .write(block, data)
            .expect("victim blocks are within capacity");
        self.shadow.insert(block, data);
    }

    fn victim(&mut self) -> u64 {
        self.blocks[self.rng.below(self.blocks.len() as u64) as usize]
    }

    /// Reads `block` and classifies the result against the shadow copy:
    /// a typed error is a detection, matching plaintext is safe, anything
    /// else is silent corruption.
    fn classify_read(&mut self, block: u64, expect_detection: bool) -> FaultOutcome {
        match self.mem.read(block) {
            Err(e) => FaultOutcome::Detected(e),
            Ok(data) => {
                if !expect_detection && Some(&data) == self.shadow.get(&block) {
                    FaultOutcome::FailSafe
                } else {
                    FaultOutcome::SilentCorruption
                }
            }
        }
    }

    /// Injects one fault of a seeded-random kind.
    pub fn inject_random(&mut self) -> (FaultKind, FaultOutcome) {
        let kind = FaultKind::ALL[self.rng.below(FaultKind::ALL.len() as u64) as usize];
        (kind, self.inject(kind))
    }

    /// Injects one fault of `kind`, classifies the outcome, and heals the
    /// damage so the next fault starts from a clean, verified state.
    ///
    /// # Panics
    ///
    /// Panics if healing fails — the harness must always be able to recover
    /// by rewriting (that *is* the documented recovery path), so a failed
    /// heal is a bug worth dying loudly for.
    pub fn inject(&mut self, kind: FaultKind) -> FaultOutcome {
        let victim = self.victim();
        let outcome = match kind {
            FaultKind::CipherBitFlip => {
                let byte = self.rng.below(64) as usize;
                let mask = 1u8 << self.rng.below(8);
                self.mem
                    .tamper_data(victim, byte, mask)
                    .expect("victim is written");
                self.classify_read(victim, true)
            }
            FaultKind::MacForge => {
                let byte = self.rng.below(64) as usize;
                let mask = 1u8 << self.rng.below(8);
                let mac_mask = self.rng.next_u64() | 1;
                self.mem
                    .tamper_data(victim, byte, mask)
                    .expect("victim is written");
                self.mem
                    .tamper_mac(victim, mac_mask)
                    .expect("victim is written");
                self.classify_read(victim, true)
            }
            FaultKind::CounterRollback => {
                let l0 = self.mem.layout().l0_index(victim);
                let stale = self
                    .mem
                    .snapshot_node(0, l0)
                    .expect("warm node image exists");
                self.rewrite(victim); // counter moves on
                self.mem.replay_node(&stale);
                self.classify_read(victim, true)
            }
            FaultKind::BlockReplay => {
                let stale = self.mem.snapshot(victim).expect("victim is on the bus");
                self.rewrite(victim);
                self.mem.replay(&stale).expect("same layout");
                self.classify_read(victim, true)
            }
            FaultKind::DroppedWriteback => {
                if self.rng.below(2) == 0 {
                    // The update writeback never lands: stale data survives
                    // under an advanced counter.
                    let stale = self.mem.data_snapshot(victim).expect("victim is written");
                    self.rewrite(victim);
                    self.mem.restore_data(&stale);
                    self.classify_read(victim, true)
                } else {
                    // The initial writeback never lands at all.
                    self.rewrite(victim);
                    self.mem.drop_stored(victim).expect("victim is written");
                    self.classify_read(victim, true)
                }
            }
            FaultKind::MemoCorruption => {
                let start = MEMO_GROUP_STARTS[self.rng.below(2) as usize];
                let value = start + self.rng.below(8);
                if !self.rmcc.corrupt_entry(0, value) {
                    // The value must be memoized by construction; a dud
                    // injection is a harness bug, surfaced as the worst case.
                    return FaultOutcome::SilentCorruption;
                }
                let fallbacks_before = self.rmcc.table_stats(0).fallbacks;
                let lookup = self.rmcc.lookup(0, value);
                let counted = self.rmcc.table_stats(0).fallbacks == fallbacks_before + 1;
                if lookup != LookupResult::Miss || !counted {
                    // The corrupted result was served as a hit (or the
                    // fallback went uncounted): memoization is no longer
                    // fail-safe.
                    return FaultOutcome::SilentCorruption;
                }
                // The full-AES fallback leaves stored plaintext untouched.
                self.classify_read(victim, false)
            }
            FaultKind::CounterSaturation => {
                let l0 = self.mem.layout().l0_index(victim);
                let forged = if self.rng.below(2) == 0 {
                    self.mem.observed_max() + 1
                } else {
                    COUNTER_MAX
                };
                self.mem
                    .forge_node_counters(0, l0, forged)
                    .expect("node is in the layout");
                self.classify_read(victim, true)
            }
        };
        // Heal: rewriting republishes data + node images from trusted
        // state; the recovery path itself is part of what we verify.
        self.rewrite(victim);
        let healed = self.mem.read(victim).expect("rewrite must heal the victim");
        assert_eq!(
            &healed, &self.shadow[&victim],
            "healed block must match its last write"
        );
        outcome
    }

    /// Verifies every block in the victim pool reads back byte-identical to
    /// its last write. Returns `false` on any mismatch or error.
    pub fn verify_all(&mut self) -> bool {
        let blocks = self.blocks.clone();
        blocks
            .iter()
            .all(|&b| self.mem.read(b).ok().as_ref() == self.shadow.get(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(kind: PipelineKind) -> FaultHarness {
        FaultHarness::new(CounterOrg::Morphable128, kind, 7, 16, 1 << 22)
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(1);
        let mut b = FaultRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn every_kind_yields_a_safe_outcome() {
        let mut h = harness(PipelineKind::Rmcc);
        for kind in FaultKind::ALL {
            let outcome = h.inject(kind);
            assert!(outcome.is_safe(), "{kind:?} -> {outcome:?}");
            if kind.integrity_affecting() {
                assert!(
                    matches!(outcome, FaultOutcome::Detected(_)),
                    "{kind:?} must be detected, got {outcome:?}"
                );
            } else {
                assert_eq!(outcome, FaultOutcome::FailSafe, "{kind:?}");
            }
        }
        assert!(h.verify_all(), "healed memory must verify");
    }

    #[test]
    fn same_seed_same_outcomes() {
        let run = |seed| {
            let mut h = FaultHarness::new(CounterOrg::Sc64, PipelineKind::Sgx, seed, 8, 1 << 22);
            (0..40).map(|_| h.inject_random()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn memo_corruption_increments_fallbacks() {
        let mut h = harness(PipelineKind::Rmcc);
        let before = h.rmcc().table_stats(0).fallbacks;
        assert_eq!(h.inject(FaultKind::MemoCorruption), FaultOutcome::FailSafe);
        assert_eq!(h.rmcc().table_stats(0).fallbacks, before + 1);
    }
}
