//! Per-shard fault isolation for the sharded [`SecureMemoryService`].
//!
//! The single-engine harness in [`crate::inject`] shows that a corrupted
//! memoization entry fails *safe*: the lookup falls back to the full AES
//! path and the table heals itself. The service-level question is blast
//! radius: when one shard's table is poisoned, does anything leak across
//! the shard boundary?
//!
//! Nothing should, by construction — each shard owns its table and ledger
//! outright (`rmcc_core::shard`) — and this harness makes that checkable.
//! It builds a memoizing service plus a pristine control twin, drives both
//! with identical write+read rounds, and reports per-shard result digests
//! and policy tallies. Corrupting one shard's table must:
//!
//! * leave every plaintext read correct everywhere (fail-safe),
//! * leave every *other* shard's digest and tallies byte-identical to the
//!   control twin (isolation),
//! * show up on the victim shard as counted full-AES fallbacks, after
//!   which the shard conforms again (self-heal).

use rmcc_core::shard::{memo_policy, MemoHandle, ShardMemoConfig, ShardMemoStats};
use rmcc_secmem::service::{
    digest_results, Access, AccessResult, SecureMemoryService, ServiceConfig,
};

/// The value every shard's table is seeded with — the ladder writes conform
/// to, and the entry [`ServiceFaultHarness::corrupt_shard_memo`] poisons.
pub const LADDER_SEED: u64 = 64;

/// A memoizing service under test, with the host-side handles the fault
/// campaign needs to poison and observe each shard's table.
pub struct ServiceFaultHarness {
    service: SecureMemoryService,
    handles: Vec<MemoHandle>,
    /// For each shard, the data blocks the canonical round touches (two
    /// regions per shard, first block of each).
    shard_blocks: Vec<Vec<u64>>,
}

/// One write+read round's observable outcome, per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// Order-sensitive digest of each shard's results, in shard order.
    pub per_shard_digest: Vec<u64>,
    /// Each shard's cumulative policy tallies after the round.
    pub per_shard_stats: Vec<ShardMemoStats>,
    /// Whether every read in the round returned the plaintext the round's
    /// own write stored — the fail-safe invariant.
    pub plaintexts_ok: bool,
}

impl ServiceFaultHarness {
    /// Builds an N-shard memoizing service whose tables are all seeded at
    /// [`LADDER_SEED`], plus the block set the canonical round uses (two
    /// owned regions per shard).
    pub fn new(shards: usize) -> Self {
        let memo_cfg = {
            // Short epochs and a generous budget so a small round's jumps
            // are always affordable — the fault story, not the budget, is
            // under test here.
            let mut m = ShardMemoConfig::paper().with_epoch(256);
            m.budget_fraction = 0.5;
            m
        };
        let mut handles = Vec::with_capacity(shards.max(1));
        let service =
            SecureMemoryService::with_policies(&ServiceConfig::new(shards, 1 << 26), |_| {
                let (policy, handle) = memo_policy(&memo_cfg);
                handle.seed_groups([LADDER_SEED]);
                handles.push(handle);
                policy
            });
        let snap = service.snapshot();
        let coverage = snap.coverage();
        let mut shard_blocks: Vec<Vec<u64>> = vec![Vec::new(); snap.shards()];
        let mut region = 0u64;
        while shard_blocks.iter().any(|b| b.len() < 2) && region < 10_000 {
            let block = region * coverage;
            let owner = snap.shard_of(block);
            if let Some(list) = shard_blocks.get_mut(owner) {
                if list.len() < 2 {
                    list.push(block);
                }
            }
            region += 1;
        }
        ServiceFaultHarness {
            service,
            handles,
            shard_blocks,
        }
    }

    /// Number of shards under test.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Poisons the victim shard's memoized entry for `value` through its
    /// policy handle — the service analogue of
    /// [`crate::FaultKind::MemoCorruption`]. Returns whether an entry was
    /// actually corrupted (`false` for an out-of-range shard or a value
    /// that isn't memoized). After round N of [`Self::write_read_round`]
    /// the shard's counters sit at `LADDER_SEED + N - 1`, so the entry the
    /// *next* round consults is `LADDER_SEED + N`.
    pub fn corrupt_shard_memo(&self, shard: usize, value: u64) -> bool {
        self.handles
            .get(shard)
            .map(|h| h.corrupt_entry(value))
            .unwrap_or(false)
    }

    /// Whether the shard's entry for `value` is currently trusted (poison
    /// shows up as `false`; a healed table reports `true` again).
    pub fn shard_memo_trusted(&self, shard: usize, value: u64) -> bool {
        self.handles
            .get(shard)
            .map(|h| h.probe(value))
            .unwrap_or(false)
    }

    /// Drives one canonical round: for every shard, in shard order, write
    /// `[tag; 64]` to each of its blocks then read it back, all in one
    /// batch through `submit`. Returns per-shard digests and tallies.
    pub fn write_read_round(&self, tag: u8) -> RoundReport {
        let mut batch = Vec::new();
        let mut owners = Vec::new();
        for (shard, blocks) in self.shard_blocks.iter().enumerate() {
            for &block in blocks {
                batch.push(Access::Write {
                    block,
                    data: [tag; 64],
                });
                owners.push(shard);
                batch.push(Access::Read { block });
                owners.push(shard);
            }
        }
        let results = self.service.submit(&batch);
        let mut plaintexts_ok = true;
        let mut per_shard: Vec<Vec<AccessResult>> = vec![Vec::new(); self.shards()];
        for ((access, result), &owner) in batch.iter().zip(results.iter()).zip(owners.iter()) {
            if let Access::Read { .. } = access {
                plaintexts_ok &= *result == AccessResult::Data([tag; 64]);
            }
            if let Some(list) = per_shard.get_mut(owner) {
                list.push(*result);
            }
        }
        RoundReport {
            per_shard_digest: per_shard.iter().map(|r| digest_results(r)).collect(),
            per_shard_stats: self.handles.iter().map(MemoHandle::stats).collect(),
            plaintexts_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_assigns_blocks_to_owning_shards() {
        let h = ServiceFaultHarness::new(4);
        assert_eq!(h.shards(), 4);
        for blocks in &h.shard_blocks {
            assert_eq!(blocks.len(), 2, "two regions per shard");
        }
    }

    #[test]
    fn clean_round_conforms_on_every_shard() {
        let h = ServiceFaultHarness::new(3);
        let r = h.write_read_round(0xAB);
        assert!(r.plaintexts_ok);
        for s in &r.per_shard_stats {
            assert!(s.conformed_writes > 0, "ladder steering active: {s:?}");
            assert_eq!(s.table.fallbacks, 0);
        }
    }

    #[test]
    fn corruption_is_contained_and_heals() {
        let faulted = ServiceFaultHarness::new(4);
        let control = ServiceFaultHarness::new(4);
        let f1 = faulted.write_read_round(0x11);
        let c1 = control.write_read_round(0x11);
        assert_eq!(f1, c1, "twins agree before the fault");

        // Counters sit at LADDER_SEED after round 1; round 2 will consult
        // the next rung up.
        let rung = LADDER_SEED + 1;
        assert!(faulted.corrupt_shard_memo(2, rung));
        assert!(!faulted.shard_memo_trusted(2, rung));

        let f2 = faulted.write_read_round(0x22);
        let c2 = control.write_read_round(0x22);
        assert!(f2.plaintexts_ok, "poisoned shard still fails safe");
        for shard in 0..4 {
            if shard == 2 {
                assert_eq!(
                    f2.per_shard_stats[shard].table.fallbacks, 1,
                    "victim pays one counted full-AES fallback"
                );
            } else {
                assert_eq!(f2.per_shard_digest[shard], c2.per_shard_digest[shard]);
                assert_eq!(f2.per_shard_stats[shard], c2.per_shard_stats[shard]);
            }
        }

        // Healed: the fallback cleared the poison, the next round conforms
        // again and the fallback count stops growing.
        assert!(faulted.shard_memo_trusted(2, rung));
        let f3 = faulted.write_read_round(0x33);
        assert!(f3.plaintexts_ok);
        assert_eq!(f3.per_shard_stats[2].table.fallbacks, 1);
        assert!(f3.per_shard_stats[2].conformed_writes > f2.per_shard_stats[2].conformed_writes);
    }
}
