//! Seeded fault campaigns: fire thousands of faults, tally per-class
//! outcomes, and render a grep-able report.
//!
//! A campaign is fully determined by its [`CampaignConfig`] — same seed,
//! same faults, same outcomes — so a CI failure reproduces locally with a
//! one-line command.

use rmcc_secmem::counters::CounterOrg;
use rmcc_secmem::engine::PipelineKind;

use crate::inject::{FaultHarness, FaultKind, FaultOutcome};

/// Everything that determines a campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// RNG seed; also seeds the memory's keys.
    pub seed: u64,
    /// Number of faults to inject.
    pub faults: u64,
    /// Counter organization under attack.
    pub org: CounterOrg,
    /// OTP pipeline under attack.
    pub pipeline: PipelineKind,
    /// Warm victim blocks.
    pub working_set: u64,
    /// Protected capacity in bytes.
    pub data_bytes: u64,
}

impl CampaignConfig {
    /// A sensible default campaign over `org` × `pipeline`: 1000 faults on
    /// 64 warm blocks of a 4 MB memory, seed `0x52_4d_43_43` (`"RMCC"`).
    pub fn new(org: CounterOrg, pipeline: PipelineKind) -> Self {
        CampaignConfig {
            seed: 0x524d_4343,
            faults: 1_000,
            org,
            pipeline,
            working_set: 64,
            data_bytes: 1 << 22,
        }
    }
}

/// Outcome tally for one fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Faults injected.
    pub injected: u64,
    /// Detected as a typed `ReadError`.
    pub detected: u64,
    /// Absorbed by a fail-safe fallback with correct plaintext.
    pub fail_safe: u64,
    /// Yielded silently wrong plaintext (must stay zero).
    pub silent: u64,
}

/// What a campaign observed, per fault class and in total.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Tallies parallel to [`FaultKind::ALL`].
    pub tallies: [KindTally; FaultKind::ALL.len()],
    /// Whether every victim block read back byte-identical to its last
    /// write once the campaign finished.
    pub final_state_intact: bool,
    /// RMCC fail-safe fallbacks counted by the memoization table.
    pub table_fallbacks: u64,
}

impl CampaignReport {
    /// Tally for one fault class.
    pub fn tally(&self, kind: FaultKind) -> KindTally {
        let i = FaultKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is in ALL");
        self.tallies[i]
    }

    /// Total faults injected.
    pub fn total_injected(&self) -> u64 {
        self.tallies.iter().map(|t| t.injected).sum()
    }

    /// Total silent plaintext corruptions (the invariant: always zero).
    pub fn silent_corruptions(&self) -> u64 {
        self.tallies.iter().map(|t| t.silent).sum()
    }

    /// Whether every integrity-affecting fault was detected as an error.
    pub fn all_integrity_faults_detected(&self) -> bool {
        FaultKind::ALL
            .iter()
            .filter(|k| k.integrity_affecting())
            .all(|&k| {
                let t = self.tally(k);
                t.detected == t.injected
            })
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.config;
        writeln!(
            f,
            "fault campaign: org={} pipeline={:?} seed={:#x} faults={}",
            c.org, c.pipeline, c.seed, c.faults
        )?;
        for (kind, t) in FaultKind::ALL.iter().zip(self.tallies.iter()) {
            writeln!(
                f,
                "  {:<18} injected {:>6}  detected {:>6}  fail-safe {:>6}  silent {}",
                kind.label(),
                t.injected,
                t.detected,
                t.fail_safe,
                t.silent
            )?;
        }
        writeln!(f, "  table fallbacks: {}", self.table_fallbacks)?;
        writeln!(f, "  final state intact: {}", self.final_state_intact)?;
        write!(f, "  silent corruptions: {}", self.silent_corruptions())
    }
}

/// Runs one seeded campaign to completion.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut harness = FaultHarness::new(
        cfg.org,
        cfg.pipeline,
        cfg.seed,
        cfg.working_set,
        cfg.data_bytes,
    );
    let mut tallies = [KindTally::default(); FaultKind::ALL.len()];
    for _ in 0..cfg.faults {
        let (kind, outcome) = harness.inject_random();
        let i = FaultKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is in ALL");
        let t = &mut tallies[i];
        t.injected += 1;
        match outcome {
            FaultOutcome::Detected(_) => t.detected += 1,
            FaultOutcome::FailSafe => t.fail_safe += 1,
            FaultOutcome::SilentCorruption => t.silent += 1,
        }
    }
    let final_state_intact = harness.verify_all();
    CampaignReport {
        config: *cfg,
        tallies,
        final_state_intact,
        table_fallbacks: harness.rmcc().table_stats(0).fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let mut cfg = CampaignConfig::new(CounterOrg::Morphable128, PipelineKind::Rmcc);
        cfg.faults = 120;
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.tallies, b.tallies, "same seed, same outcomes");
        assert_eq!(a.silent_corruptions(), 0);
        assert!(a.all_integrity_faults_detected());
        assert!(a.final_state_intact);
        assert_eq!(a.total_injected(), 120);
    }

    #[test]
    fn report_prints_grepable_invariant_lines() {
        let mut cfg = CampaignConfig::new(CounterOrg::Sc64, PipelineKind::Sgx);
        cfg.faults = 60;
        let text = run_campaign(&cfg).to_string();
        assert!(text.contains("silent corruptions: 0"), "{text}");
        assert!(text.contains("final state intact: true"), "{text}");
    }
}
