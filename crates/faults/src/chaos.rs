//! Service-level chaos campaign: shard lifecycle recovery under fire.
//!
//! [`crate::service`] shows single-entry memo corruption failing safe; this
//! module escalates to the faults a lifecycle exists for — injected policy
//! panics mid-batch, counter saturation, whole-table memo upsets, node-image
//! replay, and forged counter images — under mixed zipfian load, and then
//! asserts the strong recovery contract:
//!
//! * the victim shard is **quarantined** by the deterministic circuit
//!   breaker (never served from known-bad state),
//! * every other shard's results stay **byte-identical** to a never-faulted
//!   control twin while the fault is live (containment),
//! * the shard **recovers to `Healthy`** through the epoch-counted
//!   quarantine → rebuild path, and
//! * after replaying the writes the quarantine refused, the rebuilt shard's
//!   architectural state digest is **byte-identical to the control twin's**
//!   (deterministic recovery).
//!
//! Everything — load, victims, injection order — derives from one seed, so
//! a CI failure reproduces with a single command
//! (`examples/chaos_campaign`).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rmcc_core::shard::{memo_policy, MemoHandle, ShardMemoConfig};
use rmcc_secmem::engine::CounterUpdatePolicy;
use rmcc_secmem::service::{
    Access, AccessResult, HealthConfig, SecureMemoryService, ServiceConfig, ShardHealth,
};

/// The memo-ladder seed every shard's table starts from (shared with
/// [`crate::service::LADDER_SEED`] so the two harnesses steer identically).
pub use crate::service::LADDER_SEED;

/// What an armed [`ChaosFuse`] does to the next policy consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseMode {
    /// Delegate to the wrapped policy (no fault).
    Disarmed,
    /// Panic inside `bump` — the mid-batch policy panic the service must
    /// contain per entry.
    Panic,
    /// Return an unsatisfiable counter target, forcing
    /// `WriteError::CounterSaturated` before any state is mutated.
    Saturate,
}

/// A shared switch arming one shard's [`ChaosPolicy`]. The fuse stays in
/// its mode until changed, so repeated writes keep faulting until the
/// circuit breaker trips; the campaign disarms it once the victim is
/// quarantined.
#[derive(Clone)]
pub struct ChaosFuse {
    mode: Arc<Mutex<FuseMode>>,
}

fn lock_mode(mode: &Arc<Mutex<FuseMode>>) -> MutexGuard<'_, FuseMode> {
    mode.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ChaosFuse {
    /// A disarmed fuse.
    pub fn new() -> Self {
        ChaosFuse {
            mode: Arc::new(Mutex::new(FuseMode::Disarmed)),
        }
    }

    /// Sets the fuse's mode.
    pub fn arm(&self, mode: FuseMode) {
        *lock_mode(&self.mode) = mode;
    }

    /// Returns the fuse to pass-through.
    pub fn disarm(&self) {
        self.arm(FuseMode::Disarmed);
    }

    /// The current mode.
    pub fn mode(&self) -> FuseMode {
        *lock_mode(&self.mode)
    }
}

impl Default for ChaosFuse {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`CounterUpdatePolicy`] wrapper that injects the armed fault on `bump`
/// and otherwise delegates to the wrapped policy. The inner policy is not
/// consulted while a fault fires, so its access accounting stays aligned
/// with the control twin's once refused writes are replayed.
pub struct ChaosPolicy {
    inner: Box<dyn CounterUpdatePolicy>,
    fuse: ChaosFuse,
}

impl ChaosPolicy {
    /// Wraps `inner` with `fuse`.
    pub fn new(inner: Box<dyn CounterUpdatePolicy>, fuse: ChaosFuse) -> Self {
        ChaosPolicy { inner, fuse }
    }
}

impl CounterUpdatePolicy for ChaosPolicy {
    fn bump(&mut self, current: u64) -> u64 {
        match self.fuse.mode() {
            // The faults crate sits outside the panic-freedom audit scope:
            // this panic is the *injected fault*, contained by the service.
            FuseMode::Panic => panic!("chaos: injected policy panic"),
            // Past every counter bound: the engine refuses the write with
            // CounterSaturated before mutating anything.
            FuseMode::Saturate => u64::MAX,
            FuseMode::Disarmed => self.inner.bump(current),
        }
    }

    fn relevel_target(&mut self, min_target: u64) -> u64 {
        self.inner.relevel_target(min_target)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn scrub(&mut self) -> u64 {
        self.inner.scrub()
    }
}

/// The fault classes the campaign rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFaultClass {
    /// Persistent policy panic mid-batch (contained per entry, then
    /// quarantined by the fault-rate breaker).
    PanicFuse,
    /// Persistent counter saturation (typed refusal, immediate quarantine).
    SaturationFuse,
    /// Whole-table memo upset: every memoized value poisoned at once;
    /// detected by the sub-batch scrub *before* anything is served.
    MemoPoison,
    /// Stale node-image replay on the victim's counter block: reads fail
    /// tree verification until the rebuild re-derives the image.
    NodeReplay,
    /// Forged counter-block image (old MAC kept): reads fail until rebuilt.
    ForgedCounters,
}

impl ChaosFaultClass {
    /// Every class, in campaign order.
    pub const ALL: [ChaosFaultClass; 5] = [
        ChaosFaultClass::PanicFuse,
        ChaosFaultClass::SaturationFuse,
        ChaosFaultClass::MemoPoison,
        ChaosFaultClass::NodeReplay,
        ChaosFaultClass::ForgedCounters,
    ];

    /// Diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFaultClass::PanicFuse => "panic-fuse",
            ChaosFaultClass::SaturationFuse => "saturation-fuse",
            ChaosFaultClass::MemoPoison => "memo-poison",
            ChaosFaultClass::NodeReplay => "node-replay",
            ChaosFaultClass::ForgedCounters => "forged-counters",
        }
    }
}

/// Campaign shape. Everything is counted (batches, accesses); nothing is
/// timed, so the whole run is a pure function of the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Shards in both the faulted service and its control twin.
    pub shards: usize,
    /// Master seed for load generation.
    pub seed: u64,
    /// Mixed warm-up batches before each injection.
    pub warm_batches: usize,
    /// Mixed batches driven while the fault is live (the campaign breaks
    /// out early once the victim is quarantined).
    pub pressure_batches: usize,
    /// Cap on read-only recovery batches while waiting for readmission.
    pub recovery_batches_cap: usize,
    /// Mixed verification batches after replay.
    pub verify_batches: usize,
    /// Accesses per mixed batch (before the victim-targeted head/tail).
    pub batch_len: usize,
}

impl ChaosConfig {
    /// Defaults sized so every class quarantines, rebuilds, and readmits
    /// well inside the caps.
    pub fn new(shards: usize, seed: u64) -> Self {
        ChaosConfig {
            shards: shards.max(1),
            seed,
            warm_batches: 2,
            pressure_batches: 4,
            recovery_batches_cap: 12,
            verify_batches: 2,
            batch_len: 48,
        }
    }

    /// The health thresholds the campaign runs under: short 64-access
    /// windows and a hair-trigger breaker (`quarantine_faults: 1`) so a
    /// faulted shard is quarantined before any degraded-mode write could
    /// make its counters diverge from the control twin's.
    pub fn health(&self) -> HealthConfig {
        HealthConfig {
            epoch_accesses: 64,
            degrade_faults: 1,
            quarantine_faults: 1,
            recover_epochs: 1,
            quarantine_epochs: 1,
        }
    }
}

/// One fault class's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassOutcome {
    /// The injected class.
    pub class: ChaosFaultClass,
    /// The victim shard.
    pub victim: usize,
    /// The breaker quarantined the victim while the fault was live.
    pub quarantined: bool,
    /// The victim returned to `Healthy` within the recovery cap.
    pub recovered: bool,
    /// Every non-victim entry matched the control twin during pressure.
    pub containment_ok: bool,
    /// After replaying refused writes, every shard's architectural state
    /// digest matched the control twin's and the verification batches were
    /// entry-for-entry identical.
    pub twin_identical: bool,
    /// Writes the quarantine refused (or the fault failed) and the
    /// campaign replayed in order.
    pub replayed_writes: u64,
}

impl ClassOutcome {
    /// The full recovery contract for this class.
    pub fn ok(&self) -> bool {
        self.quarantined && self.recovered && self.containment_ok && self.twin_identical
    }
}

/// The whole campaign's outcome.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-class outcomes, in injection order.
    pub outcomes: Vec<ClassOutcome>,
    /// Every shard reported `Healthy` after the final class.
    pub final_all_healthy: bool,
    /// Every shard's final state digest matched the control twin's.
    pub final_digests_equal: bool,
}

impl ChaosReport {
    /// Whether every class met the full recovery contract.
    pub fn recovery_ok(&self) -> bool {
        self.final_all_healthy
            && self.final_digests_equal
            && !self.outcomes.is_empty()
            && self.outcomes.iter().all(ClassOutcome::ok)
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:<16} victim={} quarantined={} recovered={} contained={} \
                 twin-identical={} replayed={}",
                o.class.name(),
                o.victim,
                o.quarantined,
                o.recovered,
                o.containment_ok,
                o.twin_identical,
                o.replayed_writes,
            )?;
        }
        write!(
            f,
            "  final: all-healthy={} digests-equal={}",
            self.final_all_healthy, self.final_digests_equal
        )
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A faulted service and its never-faulted control twin under identical
/// seeded load — the apparatus [`run_chaos_campaign`] drives.
pub struct ChaosServiceHarness {
    faulted: SecureMemoryService,
    control: SecureMemoryService,
    handles: Vec<MemoHandle>,
    fuses: Vec<ChaosFuse>,
    /// Per shard, the data blocks (one per owned region) the load targets.
    shard_blocks: Vec<Vec<u64>>,
    rng: u64,
}

impl ChaosServiceHarness {
    /// Builds the twin pair: both health-enabled, both memoizing with the
    /// same seeded ladder; only the faulted side's policies are wrapped in
    /// chaos fuses.
    pub fn new(cfg: &ChaosConfig) -> Self {
        let memo_cfg = {
            let mut m = ShardMemoConfig::paper().with_epoch(64);
            m.budget_fraction = 0.5;
            m
        };
        let svc_cfg = ServiceConfig::new(cfg.shards, 1 << 26).with_health(cfg.health());
        let fuses: Vec<ChaosFuse> = (0..cfg.shards).map(|_| ChaosFuse::new()).collect();
        let mut handles = Vec::with_capacity(cfg.shards);
        let faulted = {
            let fuses = &fuses;
            let handles = &mut handles;
            SecureMemoryService::with_policies(&svc_cfg, |shard| {
                let (policy, handle) = memo_policy(&memo_cfg);
                handle.seed_groups([LADDER_SEED]);
                handles.push(handle);
                let fuse = fuses.get(shard).cloned().unwrap_or_default();
                Box::new(ChaosPolicy::new(policy, fuse))
            })
        };
        let control = SecureMemoryService::with_policies(&svc_cfg, |_| {
            let (policy, handle) = memo_policy(&memo_cfg);
            handle.seed_groups([LADDER_SEED]);
            policy
        });
        // Four owned regions per shard, found by region scan.
        let snap = faulted.snapshot();
        let coverage = snap.coverage();
        let mut shard_blocks: Vec<Vec<u64>> = vec![Vec::new(); snap.shards()];
        let mut region = 0u64;
        while shard_blocks.iter().any(|b| b.len() < 4) && region < 100_000 {
            let block = region * coverage;
            if let Some(list) = shard_blocks.get_mut(snap.shard_of(block)) {
                if list.len() < 4 {
                    list.push(block);
                }
            }
            region = region.saturating_add(1);
        }
        ChaosServiceHarness {
            faulted,
            control,
            handles,
            fuses,
            shard_blocks,
            rng: splitmix(cfg.seed ^ 0xC4A0_5CA0),
        }
    }

    /// The faulted service (inspection seam for tests).
    pub fn faulted(&self) -> &SecureMemoryService {
        &self.faulted
    }

    /// The control twin.
    pub fn control(&self) -> &SecureMemoryService {
        &self.control
    }

    fn next(&mut self) -> u64 {
        self.rng = splitmix(self.rng);
        self.rng
    }

    /// The victim block a class targets on `shard`.
    fn victim_block(&self, shard: usize) -> u64 {
        self.shard_blocks
            .get(shard)
            .and_then(|b| b.first())
            .copied()
            .unwrap_or(0)
    }

    /// All load-universe blocks, flattened.
    fn universe(&self) -> Vec<u64> {
        self.shard_blocks.iter().flatten().copied().collect()
    }

    /// One mixed zipfian-ish batch: block popularity decays by octave, and
    /// roughly half the accesses are writes.
    fn mixed_batch(&mut self, len: usize) -> Vec<Access> {
        let universe = self.universe();
        let mut batch = Vec::with_capacity(len);
        for _ in 0..len {
            let r = self.next();
            // Octave-decayed rank: higher octaves confine the pick to the
            // front of the universe, skewing popularity zipf-style.
            let octave = (r >> 8) % 4;
            let span = (universe.len() >> octave).max(1);
            let idx = (r % span as u64) as usize;
            let block = universe.get(idx).copied().unwrap_or(0);
            if r & 1 == 0 {
                batch.push(Access::Write {
                    block,
                    data: [(r >> 16) as u8; 64],
                });
            } else {
                batch.push(Access::Read { block });
            }
        }
        batch
    }

    /// Submits one batch to both twins and returns (faulted, control)
    /// results.
    fn drive(&mut self, batch: &[Access]) -> (Vec<AccessResult>, Vec<AccessResult>) {
        (self.faulted.submit(batch), self.control.submit(batch))
    }
}

/// Runs the full rotating-victim campaign described in the module docs.
pub fn run_chaos_campaign(cfg: &ChaosConfig) -> ChaosReport {
    let mut h = ChaosServiceHarness::new(cfg);

    // Populate every universe block once on both twins so node snapshots
    // and read-backs have state to work with.
    let setup: Vec<Access> = h
        .universe()
        .iter()
        .map(|&block| Access::Write {
            block,
            data: [0xA5; 64],
        })
        .collect();
    h.drive(&setup);

    let mut outcomes = Vec::new();
    for (i, class) in ChaosFaultClass::ALL.iter().copied().enumerate() {
        let victim = i % cfg.shards.max(1);
        outcomes.push(run_class(&mut h, cfg, class, victim));
    }

    let shards = cfg.shards.max(1);
    let final_all_healthy = (0..shards).all(|s| h.faulted.health(s) == Some(ShardHealth::Healthy));
    let final_digests_equal =
        (0..shards).all(|s| h.faulted.shard_state_digest(s) == h.control.shard_state_digest(s));
    ChaosReport {
        outcomes,
        final_all_healthy,
        final_digests_equal,
    }
}

/// Injects one class on `victim` and drives it through pressure, recovery,
/// replay, and verification.
fn run_class(
    h: &mut ChaosServiceHarness,
    cfg: &ChaosConfig,
    class: ChaosFaultClass,
    victim: usize,
) -> ClassOutcome {
    let victim_block = h.victim_block(victim);

    // Warm: twins must agree entry for entry before the fault.
    let mut containment_ok = true;
    for _ in 0..cfg.warm_batches {
        let batch = h.mixed_batch(cfg.batch_len);
        let (f, c) = h.drive(&batch);
        containment_ok &= f == c;
    }

    // Inject.
    match class {
        ChaosFaultClass::PanicFuse => {
            if let Some(fuse) = h.fuses.get(victim) {
                fuse.arm(FuseMode::Panic);
            }
        }
        ChaosFaultClass::SaturationFuse => {
            if let Some(fuse) = h.fuses.get(victim) {
                fuse.arm(FuseMode::Saturate);
            }
        }
        ChaosFaultClass::MemoPoison => {
            if let Some(handle) = h.handles.get(victim) {
                handle.corrupt_all();
            }
        }
        ChaosFaultClass::NodeReplay => {
            // Capture a stale image, let both twins advance past it, then
            // restore it on the faulted side only.
            let stale = h.faulted.with_shard(victim, |mem| {
                let l0 = mem.layout().l0_index(victim_block);
                mem.snapshot_node(0, l0).ok()
            });
            let advance = [Access::Write {
                block: victim_block,
                data: [0x5C; 64],
            }];
            h.drive(&advance);
            if let Some(Some(snap)) = stale {
                h.faulted.with_shard(victim, |mem| mem.replay_node(&snap));
            }
        }
        ChaosFaultClass::ForgedCounters => {
            h.faulted.with_shard(victim, |mem| {
                let l0 = mem.layout().l0_index(victim_block);
                let _ = mem.forge_node_counters(0, l0, 1 << 40);
            });
        }
    }

    // Pressure: mixed load with a victim-targeted head (a read, so image
    // corruption is *detected* before any write republishes the node) and
    // tail (a write, so fuse classes always trip). Break out as soon as the
    // breaker fires; the victim-shard writes that failed are queued for
    // replay in submission order.
    let mut replay_queue: Vec<Access> = Vec::new();
    let mut quarantined = false;
    let snap = h.faulted.snapshot();
    for round in 0..cfg.pressure_batches {
        let mut batch = vec![Access::Read {
            block: victim_block,
        }];
        batch.extend(h.mixed_batch(cfg.batch_len));
        batch.push(Access::Write {
            block: victim_block,
            data: [0xB0 ^ round as u8; 64],
        });
        batch.push(Access::Read {
            block: victim_block,
        });
        let (f, c) = h.drive(&batch);
        for ((access, fr), cr) in batch.iter().zip(f.iter()).zip(c.iter()) {
            let owner = snap.shard_of(access.block());
            if owner != victim {
                containment_ok &= fr == cr;
            } else if matches!(access, Access::Write { .. }) && !fr.is_ok() {
                replay_queue.push(*access);
            }
        }
        if h.faulted
            .health(victim)
            .is_some_and(|s| s != ShardHealth::Healthy)
        {
            quarantined = true;
            if let Some(fuse) = h.fuses.get(victim) {
                fuse.disarm();
            }
            break;
        }
    }

    // Recovery: read-only pressure on the victim shard until the
    // epoch-counted quarantine → rebuild path readmits it.
    let victim_reads: Vec<Access> = {
        let blocks = h.shard_blocks.get(victim).cloned().unwrap_or_default();
        (0..64)
            .map(|i| Access::Read {
                block: blocks.get(i % blocks.len().max(1)).copied().unwrap_or(0),
            })
            .collect()
    };
    let mut recovered = h.faulted.health(victim) == Some(ShardHealth::Healthy);
    for _ in 0..cfg.recovery_batches_cap {
        if recovered {
            break;
        }
        h.faulted.submit(&victim_reads);
        recovered = h.faulted.health(victim) == Some(ShardHealth::Healthy);
    }

    // Replay the refused writes, in order, on the faulted twin only (the
    // control twin already executed them).
    let replayed_writes = replay_queue.len() as u64;
    let mut replay_ok = true;
    if !replay_queue.is_empty() {
        for r in h.faulted.submit(&replay_queue) {
            replay_ok &= r.is_ok();
        }
    }

    // Verify: twins must agree entry for entry and state digest for state
    // digest again.
    let mut twin_identical = replay_ok;
    for _ in 0..cfg.verify_batches {
        let batch = h.mixed_batch(cfg.batch_len);
        let (f, c) = h.drive(&batch);
        twin_identical &= f == c;
    }
    for s in 0..h.shard_blocks.len() {
        twin_identical &= h.faulted.shard_state_digest(s) == h.control.shard_state_digest(s);
    }

    ClassOutcome {
        class,
        victim,
        quarantined,
        recovered,
        containment_ok,
        twin_identical,
        replayed_writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuse_modes_round_trip() {
        let fuse = ChaosFuse::new();
        assert_eq!(fuse.mode(), FuseMode::Disarmed);
        fuse.arm(FuseMode::Saturate);
        assert_eq!(fuse.mode(), FuseMode::Saturate);
        fuse.disarm();
        assert_eq!(fuse.mode(), FuseMode::Disarmed);
    }

    #[test]
    fn chaos_policy_delegates_when_disarmed() {
        use rmcc_secmem::engine::IncrementPolicy;
        let fuse = ChaosFuse::new();
        let mut p = ChaosPolicy::new(Box::new(IncrementPolicy), fuse.clone());
        assert_eq!(p.bump(7), 8);
        assert_eq!(p.relevel_target(100), 100);
        assert_eq!(p.scrub(), 0);
        fuse.arm(FuseMode::Saturate);
        assert_eq!(p.bump(7), u64::MAX);
    }

    #[test]
    fn campaign_recovers_every_class() {
        let cfg = ChaosConfig::new(3, 0xC4A0_5EED);
        let report = run_chaos_campaign(&cfg);
        assert_eq!(report.outcomes.len(), ChaosFaultClass::ALL.len());
        for o in &report.outcomes {
            assert!(o.quarantined, "{}: breaker must fire", o.class.name());
            assert!(o.recovered, "{}: must readmit", o.class.name());
            assert!(o.containment_ok, "{}: blast radius", o.class.name());
            assert!(o.twin_identical, "{}: twin identity", o.class.name());
        }
        assert!(report.final_all_healthy);
        assert!(report.final_digests_equal);
        assert!(report.recovery_ok());
    }

    #[test]
    fn campaign_is_seed_deterministic() {
        let cfg = ChaosConfig::new(2, 42);
        let a = run_chaos_campaign(&cfg);
        let b = run_chaos_campaign(&cfg);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.recovery_ok(), b.recovery_ok());
    }
}
