//! Deterministic fault injection for the RMCC reproduction.
//!
//! The paper's whole claim is that the memoized OTP path is *exactly* as
//! safe as the full counter-mode AES + MAC + integrity-tree path (§II,
//! §IV-D). This crate turns that claim into a machine-checked invariant by
//! injecting seeded, reproducible faults at every boundary the threat model
//! names and classifying what the stack does with each one:
//!
//! * [`inject`] — the [`inject::FaultHarness`]: one secure memory + RMCC
//!   engine + plaintext shadow copy, with a constructor for every
//!   [`inject::FaultKind`] the threat model covers (ciphertext bit flips,
//!   MAC forgery, counter rollback, full-block replay, dropped writebacks,
//!   memoization-table corruption, counter saturation).
//! * [`campaign`] — a seeded campaign driver that fires thousands of
//!   faults across counter organizations and pipelines and tallies the
//!   outcome per fault class.
//! * [`service`] — blast-radius checks for the sharded service: poisoning
//!   one shard's memoization table must stay invisible to every other
//!   shard while the victim degrades to counted full-AES fallbacks and
//!   heals.
//! * [`chaos`] — the shard-lifecycle chaos campaign: policy panics,
//!   counter saturation, whole-table memo upsets, and node-image attacks
//!   injected under mixed zipfian load against a health-enabled service,
//!   asserting quarantine, containment, epoch-counted recovery, and
//!   byte-identical state versus a never-faulted control twin.
//!
//! The invariant that matters, asserted by the campaign tests: **every
//! integrity-affecting fault is detected as a `ReadError`, and no fault
//! ever yields silently wrong plaintext.**
//!
//! # Example
//!
//! ```
//! use rmcc_faults::campaign::{run_campaign, CampaignConfig};
//! use rmcc_secmem::counters::CounterOrg;
//! use rmcc_secmem::engine::PipelineKind;
//!
//! let mut cfg = CampaignConfig::new(CounterOrg::Morphable128, PipelineKind::Rmcc);
//! cfg.faults = 50;
//! let report = run_campaign(&cfg);
//! assert_eq!(report.silent_corruptions(), 0);
//! assert!(report.all_integrity_faults_detected());
//! assert!(report.final_state_intact);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod chaos;
pub mod inject;
pub mod service;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, KindTally};
pub use chaos::{
    run_chaos_campaign, ChaosConfig, ChaosFaultClass, ChaosFuse, ChaosPolicy, ChaosReport,
    ChaosServiceHarness, ClassOutcome, FuseMode,
};
pub use inject::{FaultHarness, FaultKind, FaultOutcome, FaultRng};
pub use service::{RoundReport, ServiceFaultHarness, LADDER_SEED};
