//! Offline stand-in for the crates.io `rand` 0.8 crate.
//!
//! This container has no network access, so the workspace vendors the tiny
//! subset of the `rand` API it actually uses and wires it in via
//! `[patch.crates-io]` in the workspace `Cargo.toml`.  The generator is a
//! SplitMix64 — deterministic, seedable, and statistically fine for the
//! synthetic workload graphs this repo builds.  The exact output sequence
//! differs from upstream `StdRng`, which is acceptable because every consumer
//! only relies on *run-to-run* determinism for a given seed, never on the
//! upstream byte stream.

#![forbid(unsafe_code)]
// audit:allow(R4, scope = file, reason = "test-only compat shim: mirrors the upstream crate API, missing_docs waived")

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            Self { state }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng;

/// Seed a generator from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::from_state(seed)
    }
}

/// Core source of randomness, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_impl() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64_impl().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // far below anything these synthetic workloads can observe.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let x = rng.next_u64() as u128;
                start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for core::ops::Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        // Two 64-bit draws reduced modulo the span; the tiny modulo bias is
        // irrelevant for workload synthesis.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        self.start + ((hi << 64) | lo) % span
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u128 = rng.gen_range(0..1_000u128);
            assert!(w < 1_000);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
