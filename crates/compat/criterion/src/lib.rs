//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The container building this workspace has no network access, so the
//! workspace vendors the subset of the criterion API its benches use
//! (`black_box`, `Criterion::bench_function`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros) and wires it in via
//! `[patch.crates-io]`.  Instead of criterion's statistical machinery, each
//! benchmark is timed with a simple calibrated loop: a warm-up sizes the
//! batch, then a fixed measurement window reports mean ns/iter.  Good enough
//! to rank the hot primitives against each other; not a substitute for real
//! criterion runs.

#![forbid(unsafe_code)]
// audit:allow(R4, scope = file, reason = "test-only compat shim: mirrors the upstream crate API, missing_docs waived")

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mirror of `criterion::Bencher`: hands the measured closure to [`iter`].
///
/// [`iter`]: Bencher::iter
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: find a batch size that runs for ~5ms.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 30 {
                break;
            }
            batch *= 4;
        }
        // Measurement: repeat batches for ~50ms of wall clock.
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        while total_time < Duration::from_millis(50) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_time += t.elapsed();
            total_iters += batch;
        }
        self.ns_per_iter = total_time.as_nanos() as f64 / total_iters as f64;
        self.iters = total_iters;
    }
}

/// Mirror of `criterion::Criterion`: a registry that times named closures.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0, iters: 0 };
        f(&mut b);
        println!(
            "{id:<32} {:>12.1} ns/iter ({} iterations)",
            b.ns_per_iter, b.iters
        );
        self
    }
}

/// Mirror of `criterion_group!`: defines a function running each target
/// against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
