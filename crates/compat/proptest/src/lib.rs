//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The container building this workspace has no network access, so the
//! workspace vendors the subset of the proptest API its tests use and wires
//! it in via `[patch.crates-io]`.  The shim keeps proptest's *shape* —
//! `proptest!` test blocks, composable `Strategy` values, `prop_assert!` —
//! but replaces the machinery underneath with straightforward random
//! sampling: each test function runs `ProptestConfig::cases` iterations with
//! inputs drawn from a generator seeded deterministically from the test's
//! name.  There is no shrinking; a failing case panics with the sampled
//! inputs left to the assertion message.

#![forbid(unsafe_code)]
// audit:allow(R4, scope = file, reason = "test-only compat shim: mirrors the upstream crate API, missing_docs waived")

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields we use).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// SplitMix64 generator used to sample strategy values.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name), so
        /// every run of a given test sees the same case sequence.
        pub fn deterministic_for(label: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in label.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` via multiply-shift.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between same-valued strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u128;
                    let x = rng.next_u64() as u128;
                    self.start + ((x * span) >> 64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end - start) as u128 + 1;
                    let x = rng.next_u64() as u128;
                    start + ((x * span) >> 64) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = self.end - self.start;
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + x % span
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Values with a canonical "anything goes" strategy (mirror of
    /// `proptest::arbitrary::Arbitrary`, reduced to uniform sampling).
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl ArbitraryValue for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, ArbitraryValue};

    /// Mirror of `proptest::arbitrary::any`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`], mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_inclusive: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Uniform32<S>(S);

    /// Mirror of `proptest::array::uniform32`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Defines `#[test]` functions whose arguments are sampled from strategies.
///
/// Supports the upstream surface this workspace uses: an optional leading
/// `#![proptest_config(...)]`, then any number of test functions with
/// `name in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic_for(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Mirror of proptest's `prop_assert!`. Without shrinking there is nothing to
/// report back to a runner, so failures panic like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Mirror of proptest's `prop_assert_eq!`; panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Mirror of proptest's `prop_assert_ne!`; panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::Push),
            (0u8..1).prop_map(|_| Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn sampled_values_respect_bounds(
            v in prop::collection::vec((0u64..100, any::<bool>()), 1..50),
            x in 3usize..=7,
        ) {
            prop_assert!((1..50).contains(&v.len()));
            for (n, _) in &v {
                prop_assert!(*n < 100);
            }
            prop_assert!((3..=7).contains(&x));
        }

        #[test]
        fn oneof_and_arrays_sample(ops in prop::collection::vec(op_strategy(), 1..20),
                                   bytes in prop::array::uniform32(any::<u8>())) {
            prop_assert!(!ops.is_empty());
            prop_assert_eq!(bytes.len(), 32);
        }
    }
}
