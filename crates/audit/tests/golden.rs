//! Golden tests: pin the auditor's exact `file:line: rule: message` output,
//! exit codes, and waiver accounting against the fixture mini-workspaces,
//! then self-audit the real workspace (the acceptance gate CI enforces).

use std::path::{Path, PathBuf};
use std::process::Output;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_audit(root: &Path, deny_warnings: bool) -> Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_rmcc-audit"));
    cmd.arg("--root").arg(root);
    if deny_warnings {
        cmd.arg("--deny-warnings");
    }
    cmd.output().expect("auditor binary runs")
}

fn stdout_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn violating_workspace_reports_every_rule_and_exits_nonzero() {
    let out = run_audit(&fixture("ws"), false);
    assert_eq!(out.status.code(), Some(1), "errors present → exit 1");

    let expected = [
        "crates/badroot/src/lib.rs:1: R4: crate root missing `#![forbid(unsafe_code)]`",
        "crates/badroot/src/lib.rs:1: R4: crate root missing `#![deny(missing_docs)]`",
        "crates/crypto/src/r3_secret.rs:5: R3: `if` condition mentions secret-named binding \
         `key_byte` (secret-dependent branch)",
        "crates/crypto/src/r3_secret.rs:5: R5: `if` depends on secret-tainted value `key_byte` \
         (secret-dependent branch)",
        "crates/crypto/src/r3_secret.rs:12: R1: bare slice indexing on trusted path (use \
         `get`/`get_mut`, iterators, or slice patterns)",
        "crates/crypto/src/r3_secret.rs:12: R3: index expression mentions secret-named binding \
         `pad` (secret-dependent address)",
        "crates/crypto/src/r3_secret.rs:12: R5: secret-tainted value `pad` used as slice/array \
         index (secret-dependent address)",
        "crates/crypto/src/r3_secret.rs:16: R3: derive(Debug) on type with secret-named field \
         `key` (write a redacting impl)",
        "crates/crypto/src/r3_secret.rs:22: R3: `format!` formats secret-named binding `key` \
         (log-leak guard)",
        "crates/secmem/src/allowed.rs:10: W0: unused audit:allow(R1) directive (nothing to \
         waive — remove it)",
        "crates/secmem/src/allowed.rs:14: W0: malformed audit:allow directive: missing required \
         reason",
        "crates/secmem/src/r1_panic.rs:4: R1: `unwrap()` on trusted path (use typed errors or \
         infallible patterns)",
        "crates/secmem/src/r1_panic.rs:8: R1: `expect()` on trusted path (use typed errors or \
         infallible patterns)",
        "crates/secmem/src/r1_panic.rs:13: R1: `panic!` on trusted path (return a typed error \
         instead)",
        "crates/secmem/src/r1_panic.rs:19: R1: bare slice indexing on trusted path (use \
         `get`/`get_mut`, iterators, or slice patterns)",
    ];
    let lines = stdout_lines(&out);
    let findings: Vec<&String> = lines
        .iter()
        .take_while(|l| !l.starts_with("audit:"))
        .collect();
    assert_eq!(
        findings,
        expected
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .iter()
            .collect::<Vec<_>>(),
        "finding lines changed"
    );
    assert!(
        lines.iter().any(|l| l
            == "audit: scanned 5 files: 13 error(s), 2 warning(s), 1 finding(s) waived by 2 directive(s)"),
        "summary line changed: {lines:?}"
    );
}

#[test]
fn waiver_accounting_reports_used_and_unused_directives() {
    let out = run_audit(&fixture("ws"), false);
    let lines = stdout_lines(&out);
    assert!(lines.iter().any(|l| l.trim_start()
        == "crates/secmem/src/allowed.rs:5: allow(R1) scope=line suppressed 1 finding(s) — \
            \"fixture: index is bounds-checked by the caller\""));
    assert!(lines.iter().any(|l| l.trim_start()
        == "crates/secmem/src/allowed.rs:10: allow(R1) scope=line suppressed 0 finding(s) — \
            \"fixture: nothing on the next line violates R1\""));
    // The malformed directive must not appear as a waiver at all.
    assert!(!lines.iter().any(|l| l.contains("allowed.rs:14: allow")));
}

#[test]
fn warnings_only_workspace_gates_on_deny_warnings() {
    let root = fixture("ws_warn");
    let lenient = run_audit(&root, false);
    assert_eq!(lenient.status.code(), Some(0), "warnings pass by default");

    let strict = run_audit(&root, true);
    assert_eq!(strict.status.code(), Some(1), "--deny-warnings fails them");

    let expected = [
        "crates/core/src/r2_counter.rs:9: R2: unchecked `+=` on counter-like identifier \
         `epoch_count` (use checked_add/wrapping_add with a rationale)",
        "crates/core/src/r2_counter.rs:13: R2: unchecked `<<` on counter-like identifier \
         `counter` (use checked_shl/wrapping_shl with a rationale)",
        "crates/core/src/r2_counter.rs:17: R2: truncating `as u32` cast on counter-like \
         identifier `budget` (use try_from or mask explicitly with a rationale)",
    ];
    let lines = stdout_lines(&strict);
    for e in expected {
        assert!(lines.iter().any(|l| l == e), "missing: {e}");
    }
}

#[test]
fn clean_workspace_exits_zero_even_under_deny_warnings() {
    let out = run_audit(&fixture("ws_clean"), true);
    assert_eq!(out.status.code(), Some(0));
    let lines = stdout_lines(&out);
    assert_eq!(
        lines,
        vec!["audit: scanned 1 files: 0 error(s), 0 warning(s), 0 finding(s) waived by 0 directive(s)"]
    );
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_rmcc-audit"));
    let out = cmd.arg("--no-such-flag").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

fn run_audit_args(root: &Path, extra: &[&str]) -> Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_rmcc-audit"));
    cmd.arg("--root").arg(root).args(extra);
    cmd.output().expect("auditor binary runs")
}

#[test]
fn r5_fixture_flags_dataflow_leaks_and_counts_the_waiver() {
    let out = run_audit(&fixture("ws_r5"), false);
    assert_eq!(out.status.code(), Some(1));
    let lines = stdout_lines(&out);
    let expected = [
        "crates/crypto/src/r5_flow.rs:8: R5: secret-tainted value `derived` passed to `.get()` \
         (secret-dependent lookup address)",
        "crates/crypto/src/r5_flow.rs:20: R5: secret-tainted argument `key` flows into leaky \
         parameter 2 of `lut`",
    ];
    for e in expected {
        assert!(lines.iter().any(|l| l == e), "missing: {e}\n{lines:?}");
    }
    // The clean selector fn and the waived lookup produce no findings; the
    // waiver is counted.
    assert_eq!(
        lines.iter().filter(|l| l.contains(": R5: ")).count(),
        2,
        "{lines:?}"
    );
    assert!(lines.iter().any(|l| l.trim_start()
        == "crates/crypto/src/r5_flow.rs:25: allow(R5) scope=line suppressed 1 finding(s) — \
            \"fixture: T-table lookup sanctioned until the hardened backend lands\""));
}

#[test]
fn r6_fixture_flags_guard_discipline_and_counts_the_waiver() {
    let out = run_audit(&fixture("ws_r6"), false);
    assert_eq!(out.status.code(), Some(1));
    let lines = stdout_lines(&out);
    let expected = [
        "crates/secmem/src/r6_locks.rs:10: R6: lock guard `guard` (line 9) captured by `move` \
         closure (clone the data out instead)",
        "crates/secmem/src/r6_locks.rs:10: R6: lock guard `guard` (line 9) held across `spawn` \
         boundary (drop or narrow the guard first)",
        "crates/secmem/src/r6_locks.rs:18: R6: nested lock acquisition while guard `ga` (line \
         17) is live (lock-order hazard — narrow the first guard)",
    ];
    for e in expected {
        assert!(lines.iter().any(|l| l == e), "missing: {e}\n{lines:?}");
    }
    // The waived nested pair and the drop-before-spawn fn stay silent.
    assert_eq!(
        lines.iter().filter(|l| l.contains(": R6: ")).count(),
        3,
        "{lines:?}"
    );
    assert!(lines.iter().any(|l| l.trim_start()
        == "crates/secmem/src/r6_locks.rs:25: allow(R6) scope=line suppressed 1 finding(s) — \
            \"fixture: a before b is the documented global lock order\""));
}

#[test]
fn r7_fixture_flags_determinism_breaks_and_exempts_bench() {
    let out = run_audit(&fixture("ws_r7"), false);
    assert_eq!(out.status.code(), Some(1));
    let lines = stdout_lines(&out);
    let expected = [
        "crates/secmem/src/r7_time.rs:10: R7: `Instant` on a deterministic path (wall-clock \
         read breaks replayable simulation)",
        "crates/secmem/src/r7_time.rs:15: R7: `HashMap` on a deterministic path (iteration \
         order is randomized per process — use BTreeMap or an order-insensitive fold)",
    ];
    for e in expected {
        assert!(lines.iter().any(|l| l == e), "missing: {e}\n{lines:?}");
    }
    // The bench crate is exempt by the policy table, the waived sleep is
    // counted, and the BTreeMap fn is clean.
    assert!(
        !lines.iter().any(|l| l.contains("bench/src/exempt.rs")),
        "bench crate must be policy-exempt: {lines:?}"
    );
    assert!(lines.iter().any(|l| l.trim_start()
        == "crates/secmem/src/r7_time.rs:24: allow(R7) scope=line suppressed 1 finding(s) — \
            \"fixture: stall model only, duration never observed by simulated state\""));
}

/// The constant-time proof obligation for the hardened backend: a
/// distilled bitsliced kernel — secret bits moving only through
/// XOR/AND/shift/rotate — audits completely clean under `--deny-warnings`,
/// with zero findings and zero waivers. This pins the shape the real
/// `crates/crypto/src/bitslice.rs` is held to.
#[test]
fn bitsliced_fixture_audits_clean_with_zero_waivers() {
    let out = run_audit(&fixture("ws_bitslice"), true);
    assert_eq!(out.status.code(), Some(0), "bitsliced kernel must be clean");
    let lines = stdout_lines(&out);
    assert_eq!(
        lines,
        vec!["audit: scanned 1 files: 0 error(s), 0 warning(s), 0 finding(s) waived by 0 directive(s)"]
    );
}

/// Regression guard: the real bitsliced module carries no waivers and no
/// baseline debt. If an edit to `crates/crypto/src/bitslice.rs` ever needs
/// an `audit:allow` or a baseline entry, this test fails and forces the
/// constant-time argument to be re-made explicitly.
#[test]
fn real_bitslice_module_needs_no_waivers_or_baseline_debt() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let baseline = std::fs::read_to_string(root.join("AUDIT_BASELINE.json"))
        .expect("workspace baseline exists");
    assert!(
        !baseline.contains("bitslice.rs"),
        "AUDIT_BASELINE.json acquired debt for the bitsliced module"
    );
    // The live waiver report agrees: nothing in bitslice.rs is waived.
    let out = run_audit(&root, true);
    let lines = stdout_lines(&out);
    assert!(
        !lines.iter().any(|l| l.contains("bitslice.rs")),
        "bitslice.rs appeared in the audit report:\n{}",
        lines.join("\n")
    );
}

#[test]
fn json_output_is_machine_readable() {
    let out = run_audit_args(&fixture("ws_regress"), &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "findings still gate json runs");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"version\": 2"), "{text}");
    assert!(
        text.contains("\"rule\": \"R1\"") && text.contains("seeded.rs"),
        "{text}"
    );
    // Invalid format values are usage errors.
    let bad = run_audit_args(&fixture("ws_regress"), &["--format", "yaml"]);
    assert_eq!(bad.status.code(), Some(2));
}

/// The CI gate contract: a baseline that accounts for every finding passes
/// (accepted debt), a stale baseline fails on exactly the seeded
/// regression, and a broken baseline is an internal error — never a pass.
#[test]
fn baseline_gate_fails_on_seeded_regression_only() {
    let root = fixture("ws_regress");
    let full = root.join("baseline_full.json");
    let stale = root.join("baseline_stale.json");

    let ok = run_audit_args(&root, &["--baseline", full.to_str().unwrap()]);
    assert_eq!(ok.status.code(), Some(0), "accounted-for debt must pass");

    let gated = run_audit_args(&root, &["--baseline", stale.to_str().unwrap()]);
    assert_eq!(gated.status.code(), Some(1), "regression must gate");
    let stderr = String::from_utf8_lossy(&gated.stderr);
    assert!(
        stderr.contains("baseline gate: 1 new unwaived finding(s)"),
        "{stderr}"
    );
    assert!(
        stderr.contains("seeded.rs:12: R1: `expect()`"),
        "the regression, not the known debt, is reported: {stderr}"
    );

    let missing = run_audit_args(&root, &["--baseline", "/nonexistent/baseline.json"]);
    assert_eq!(
        missing.status.code(),
        Some(2),
        "unreadable baseline is an error"
    );
}

/// The acceptance gate: the real workspace must audit clean, warnings
/// included, with every escape hatch recorded as a counted waiver.
#[test]
fn real_workspace_self_audit_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let out = run_audit(&root, true);
    let lines = stdout_lines(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace audit regressed:\n{}",
        lines.join("\n")
    );
    let summary = lines
        .iter()
        .find(|l| l.starts_with("audit: scanned"))
        .expect("summary present");
    assert!(
        summary.contains("0 error(s), 0 warning(s)"),
        "unexpected findings: {summary}"
    );
}
