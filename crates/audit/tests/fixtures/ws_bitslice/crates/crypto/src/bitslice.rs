//! ws_bitslice fixture: a distilled constant-time bitsliced kernel.
//!
//! Secret key material flows only through fixed-shape boolean algebra —
//! XOR, AND, shifts, rotates — never into a branch condition, a lookup
//! index, or a leaky helper. The dataflow pass (R5) and the lexical pass
//! (R3) must both find nothing here, with zero waivers: this is the shape
//! the real `crates/crypto/src/bitslice.rs` is held to.

/// Eight bit-planes; plane `k` holds bit `k` of every packed byte.
pub type Planes = [u128; 8];

/// Branch-free lane packing: each bit of the secret byte is extracted by
/// shift-and-mask and replicated across its plane by multiplication,
/// never by branching on the secret.
pub fn pack_secret_byte(secret: u8) -> Planes {
    let mut planes = [0u128; 8];
    for (bit, plane) in planes.iter_mut().enumerate() {
        let replicated = (u128::from(secret) >> bit) & 1;
        *plane = replicated.wrapping_mul(u128::MAX);
    }
    planes
}

/// Constant-time round-key mix: the key planes reach the state through
/// XOR/AND/rotate only, so timing is independent of every key bit.
pub fn mix_with_key(state: Planes, key: Planes) -> Planes {
    let mut out = [0u128; 8];
    for (o, (s, k)) in out.iter_mut().zip(state.iter().zip(key.iter())) {
        *o = *s ^ (*k & s.rotate_left(32));
    }
    out
}

/// Constant-time GF(2) plane square-and-fold, the shape of the S-box
/// inversion chain: pure boolean circuit, no data-dependent control flow.
pub fn fold_planes(pad: Planes) -> u128 {
    let mut acc = 0u128;
    for plane in pad {
        acc ^= plane.rotate_right(8) & plane;
    }
    acc
}
