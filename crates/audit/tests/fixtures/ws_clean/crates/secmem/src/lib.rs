//! A fully clean mini-workspace: hygienic crate root, total code.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Panic-free lookup.
pub fn total_lookup(xs: &[u64], i: usize) -> Option<u64> {
    xs.get(i).copied()
}
