//! R2 fixture: unchecked arithmetic and truncating casts on counter-like
//! identifiers (warnings — the naming heuristic is fallible).

pub struct Epochs {
    pub epoch_count: u64,
}

pub fn catches_add(e: &mut Epochs) {
    e.epoch_count += 1;
}

pub fn catches_shift(counter: u64) -> u64 {
    counter << 3
}

pub fn catches_truncating_cast(budget: u64) -> u32 {
    budget as u32
}

pub fn checked_paths_are_fine(counter: u64) -> Option<u64> {
    counter.checked_add(1)
}
