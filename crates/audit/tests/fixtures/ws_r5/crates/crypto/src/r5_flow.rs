//! R5 fixture: taint reaches a sink through a binding R3's lexical pass
//! cannot see, one waived T-table-style lookup, and a clean selector fn.

/// Positive: `derived` carries the key's taint into the index even though
/// its own name is innocent.
pub fn leaks_via_binding(table: &[u8; 256], key: u8) -> u8 {
    let derived = key ^ 0x5a;
    let v = table.get(derived as usize);
    v.copied().unwrap_or(0)
}

/// Positive: the helper's leak is attributed to the caller's argument.
fn lut(table: &[u8; 256], b: u8) -> u8 {
    let v = table.get(b as usize);
    v.copied().unwrap_or(0)
}

/// The call site below is flagged because `lut` indexes by its parameter.
pub fn leaks_via_helper(table: &[u8; 256], key: u8) -> u8 {
    lut(table, key)
}

/// Waived: models the sanctioned T-table lookup.
pub fn waived_lookup(table: &[u8; 256], key: u8) -> u8 {
    // audit:allow(R5, reason = "fixture: T-table lookup sanctioned until the hardened backend lands")
    let v = table.get(key as usize);
    v.copied().unwrap_or(0)
}

/// Clean: the index derives from a public length, never from the key.
pub fn clean_public_index(table: &[u8; 256], len: usize) -> u8 {
    let v = table.get(len % 256);
    v.copied().unwrap_or(0)
}
