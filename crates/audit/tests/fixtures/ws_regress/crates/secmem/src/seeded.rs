//! Seeded-regression fixture for the baseline gate: one long-standing
//! finding the committed baseline accounts for, and one new finding it
//! does not.

/// Accounted for in `baseline_stale.json` and `baseline_full.json`.
pub fn known_debt(x: Option<u64>) -> u64 {
    x.unwrap()
}

/// The regression: only `baseline_full.json` accounts for this one.
pub fn fresh_regression(x: Option<u64>) -> u64 {
    x.expect("seeded")
}
