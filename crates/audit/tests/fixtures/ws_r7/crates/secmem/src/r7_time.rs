//! R7 fixture: wall-clock and hasher-randomized containers in a
//! deterministic crate, one waived use, and a clean BTreeMap variant.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::time::Instant;

/// Positive: wall-clock reads make replays diverge.
pub fn reads_wall_clock() -> Instant {
    Instant::now()
}

/// Positive: iteration order is randomized per process.
pub fn randomized_histogram(xs: &[u64]) -> HashMap<u64, u64> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

/// Waived: a coarse stall model that never feeds simulated state.
pub fn waived_sleep() {
    // audit:allow(R7, reason = "fixture: stall model only, duration never observed by simulated state")
    std::thread::sleep(std::time::Duration::from_millis(1));
}

/// Clean: deterministic container, deterministic iteration.
pub fn ordered_histogram(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut h = BTreeMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}
