//! Policy-exempt crate: `bench` measures wall-clock by definition, so R7
//! does not apply here (see the crate-scoped policy table in flow.rs).

use std::time::Instant;

/// Clean by policy: timing the thing under test is the bench's job.
pub fn timed(f: impl FnOnce()) -> std::time::Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}
