//! R4 fixture: a crate root missing both hygiene attributes.

pub fn no_attrs_here() {}
