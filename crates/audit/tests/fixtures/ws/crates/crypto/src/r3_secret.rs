//! R3 fixture: secret-dependent control flow, secret-indexed loads, and
//! secret values escaping through Debug/format machinery.

pub fn catches_secret_branch(key_byte: u8) -> u8 {
    if key_byte > 128 {
        return 0;
    }
    key_byte
}

pub fn catches_secret_index(table: &[u8; 256], pad: u8) -> u8 {
    table[pad as usize]
}

/// A key-holding struct must not derive Debug.
#[derive(Debug)]
pub struct Keys {
    pub key: [u8; 16],
}

pub fn catches_secret_format(key: u64) -> String {
    format!("leaked: {key}")
}
