//! Directive fixture: one used waiver, one unused waiver (W0), and one
//! malformed directive (W0, and it must not suppress anything).

pub fn waived_indexing(xs: &[u64]) -> u64 {
    // audit:allow(R1, reason = "fixture: index is bounds-checked by the caller")
    xs[0]
}

pub fn unused_waiver(x: u64) -> u64 {
    // audit:allow(R1, reason = "fixture: nothing on the next line violates R1")
    x + 1
}

// audit:allow(R1)
pub fn malformed_waiver_missing_reason(v: Option<u64>) -> u64 {
    v.unwrap_or(0)
}
