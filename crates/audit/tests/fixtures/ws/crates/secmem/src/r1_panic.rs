//! R1 fixture: every panic path the rule must catch, one per construct.

pub fn catches_unwrap(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn catches_expect(v: Option<u64>) -> u64 {
    v.expect("boom")
}

pub fn catches_panic_macro(x: u64) -> u64 {
    if x > 10 {
        panic!("too big");
    }
    x
}

pub fn catches_indexing(xs: &[u64], i: usize) -> u64 {
    xs[i]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
