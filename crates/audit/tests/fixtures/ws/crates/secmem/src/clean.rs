//! A clean trusted-path file: no findings expected.

pub fn total_lookup(xs: &[u64], i: usize) -> Option<u64> {
    xs.get(i).copied()
}

pub fn checked_bump(counter: u64) -> u64 {
    counter.saturating_add(1)
}
