//! R6 fixture: a guard held across a spawn boundary, a nested acquisition,
//! a waived variant of each, and a clean early-drop pattern.

use std::sync::Mutex;
use std::thread;

/// Positive: `guard` is still live when the closure is spawned.
pub fn guard_across_spawn(m: &'static Mutex<u64>) {
    let guard = m.lock().unwrap();
    thread::spawn(move || {
        let _ = *guard;
    });
}

/// Positive: acquiring `b` while `ga` is live risks lock-order inversion.
pub fn nested_acquisition(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

/// Waived: ordered acquisition documented at the call site.
pub fn waived_nested(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock().unwrap();
    // audit:allow(R6, reason = "fixture: a before b is the documented global lock order")
    let gb = b.lock().unwrap();
    *ga + *gb
}

/// Clean: the guard is dropped before the boundary.
pub fn clean_drop_before_spawn(m: &'static Mutex<u64>) {
    let guard = m.lock().unwrap();
    let snapshot = *guard;
    drop(guard);
    thread::spawn(move || {
        let _ = snapshot;
    });
}
