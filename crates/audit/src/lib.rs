//! `rmcc-audit` — an offline static-analysis pass for the RMCC workspace.
//!
//! The fault-injection campaign (PR 2) *samples* the trusted path's
//! fail-safe behaviour; this crate *enforces* the invariants that make
//! those paths safe, statically and on every file:
//!
//! * **R1 panic-freedom** — no `unwrap()`, `expect()`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`, or bare slice indexing in
//!   the trusted crates (`crypto`, `secmem`, `core`) outside `#[cfg(test)]`.
//!   A panic inside the memory controller model is an availability fault.
//! * **R2 counter-arithmetic safety** — no truncating `as` casts and no
//!   unchecked `+`/`<<` on counter/epoch/budget-named identifiers; use
//!   `checked_*`/`wrapping_*`/`saturating_*` or waive with a rationale.
//! * **R3 secret-flow hygiene** — in `crates/crypto`, no branch or index
//!   expression that mentions key/pad/otp/plaintext/secret-named bindings
//!   (MemJam-class leak surface), and no `Debug`/format capture of them
//!   (log-leak guard).
//! * **R4 workspace hygiene** — every crate root pins
//!   `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//!
//! Findings print as `file:line: rule: message`. Intentional exceptions
//! are silenced by counted, reasoned `// audit:allow(...)` directives (see
//! [`directives`]); the summary reports every waiver so escape hatches
//! stay visible.
//!
//! The crate is deliberately dependency-free (std only): it must build in
//! the same offline environment as the rest of the workspace, and must not
//! be able to skew the code it audits through shared dependencies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod directives;
pub mod flow;
pub mod json;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod taint;

use std::fmt;
use std::path::{Path, PathBuf};

use directives::Directive;

/// Crates whose `src/` trees are held to R1/R2 (and R3 for `crypto`).
pub const TRUSTED_CRATES: &[&str] = &["crypto", "secmem", "core"];

/// An audit rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-freedom on the trusted path.
    R1,
    /// Counter-arithmetic safety.
    R2,
    /// Secret-flow hygiene in the crypto crate.
    R3,
    /// Workspace lint hygiene on crate roots.
    R4,
    /// Secret-taint leakage: dataflow from secret sources into indices,
    /// lookups, branches, or leaky callees (crypto + secmem).
    R5,
    /// Concurrency discipline: guards across thread boundaries, nested
    /// acquisition, CoW-seam violations (service layer).
    R6,
    /// Determinism contract: no wall clock, sleeps, or hasher-randomized
    /// containers in the deterministic crates.
    R7,
    /// Audit meta-findings: malformed or unused `audit:allow` directives.
    W0,
}

/// Every reportable rule, in order (used by the per-rule summary).
pub const ALL_RULES: &[Rule] = &[
    Rule::R1,
    Rule::R2,
    Rule::R3,
    Rule::R4,
    Rule::R5,
    Rule::R6,
    Rule::R7,
    Rule::W0,
];

impl Rule {
    /// Parses `R1`..`R7` (the rules a directive may name).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            _ => None,
        }
    }

    /// Whether a finding for this rule fails the build outright (error) or
    /// only under `--deny-warnings` (warning). R2 is a warning because
    /// counter-like naming is heuristic; the others are unambiguous once
    /// waivers are applied.
    pub fn severity(self) -> Severity {
        match self {
            Rule::R1 | Rule::R3 | Rule::R4 | Rule::R5 | Rule::R6 | Rule::R7 => Severity::Error,
            Rule::R2 | Rule::W0 => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::W0 => "W0",
        };
        f.write_str(s)
    }
}

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Always fails the audit.
    Error,
    /// Fails only under `--deny-warnings`.
    Warning,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the audit root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file context handed to the rule checkers.
pub struct FileCtx<'a> {
    /// Root-relative path, `/`-separated.
    pub rel: &'a str,
    /// The file's code tokens.
    pub tokens: &'a [lexer::Tok],
    /// `included[i]` is false for tokens inside `#[cfg(test)]` regions.
    pub included: &'a [bool],
    /// Owning crate's name (directory name under `crates/`).
    pub crate_name: &'a str,
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`).
    pub is_crate_root: bool,
}

impl FileCtx<'_> {
    /// Builds a finding against this file.
    pub fn finding(&self, rule: Rule, line: u32, message: String) -> Finding {
        Finding {
            file: self.rel.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Which rule families apply to a file, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// R1/R2 apply (trusted crate).
    pub trusted: bool,
    /// R3 applies (crypto crate).
    pub secret_flow: bool,
    /// R4 applies (crate root).
    pub hygiene: bool,
    /// R5 applies (crypto + secmem: dataflow leakage).
    pub leakage: bool,
    /// R6 applies (service-layer crates: lock discipline).
    pub concurrency: bool,
    /// R7 applies (deterministic crates: no wall clock / hash iteration).
    pub determinism: bool,
}

/// Audits a single file's source text.
///
/// Returns the unwaived findings (waivers already applied) together with
/// the file's directives and their suppression counts. Unused directives
/// are reported as `W0` findings.
pub fn audit_source(
    rel: &str,
    crate_name: &str,
    is_crate_root: bool,
    src: &str,
) -> (Vec<Finding>, Vec<Directive>) {
    let rules = classify(rel, crate_name, is_crate_root);
    let scan = lexer::scan(src);
    let included = rules::test_mask(&scan.tokens);
    let ctx = FileCtx {
        rel,
        tokens: &scan.tokens,
        included: &included,
        crate_name,
        is_crate_root,
    };

    let mut findings = Vec::new();
    if rules.trusted {
        rules::check_r1(&ctx, &mut findings);
        rules::check_r2(&ctx, &mut findings);
    }
    if rules.secret_flow {
        rules::check_r3(&ctx, &mut findings);
    }
    if rules.hygiene {
        rules::check_r4(&ctx, &mut findings);
    }
    if rules.leakage {
        taint::check_r5(&ctx, &mut findings);
    }
    if rules.concurrency {
        flow::check_r6(&ctx, &mut findings);
    }
    if rules.determinism {
        flow::check_r7(&ctx, &mut findings);
    }

    let (mut dirs, malformed) = directives::parse(rel, &scan.comments, &scan.tokens);
    let mut kept = directives::apply(&mut dirs, findings);
    kept.extend(malformed);
    for d in &dirs {
        if d.suppressed == 0 {
            kept.push(Finding {
                file: rel.to_string(),
                line: d.line,
                rule: Rule::W0,
                message: format!(
                    "unused audit:allow({}) directive (nothing to waive — remove it)",
                    rule_list(&d.rules)
                ),
            });
        }
    }
    (kept, dirs)
}

/// Decides which rule families apply to `rel`.
fn classify(rel: &str, crate_name: &str, is_crate_root: bool) -> RuleSet {
    let compat = rel.starts_with("crates/compat/");
    RuleSet {
        trusted: !compat && TRUSTED_CRATES.contains(&crate_name),
        secret_flow: !compat && crate_name == "crypto",
        hygiene: is_crate_root,
        leakage: !compat && (crate_name == "crypto" || crate_name == "secmem"),
        concurrency: !compat && flow::R6_CRATES.contains(&crate_name),
        determinism: !compat && flow::R7_CRATES.contains(&crate_name),
    }
}

fn rule_list(rules: &[Rule]) -> String {
    let names: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
    names.join(", ")
}

/// A waiver as reported in the summary.
#[derive(Debug, Clone)]
pub struct WaiverEntry {
    /// File the directive lives in.
    pub file: String,
    /// Directive line.
    pub line: u32,
    /// Rules waived.
    pub rules: Vec<Rule>,
    /// Declared scope.
    pub scope: directives::Scope,
    /// Rationale.
    pub reason: String,
    /// Findings suppressed.
    pub suppressed: usize,
}

/// The result of auditing a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Every directive encountered, with suppression counts.
    pub waivers: Vec<WaiverEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.severity() == Severity::Warning)
            .count()
    }

    /// Total findings suppressed by directives.
    pub fn suppressed(&self) -> usize {
        self.waivers.iter().map(|w| w.suppressed).sum()
    }

    /// Process exit code: 0 clean, 1 findings (errors, or warnings under
    /// `--deny-warnings`).
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        if self.errors() > 0 || (deny_warnings && self.warnings() > 0) {
            1
        } else {
            0
        }
    }

    /// Per-rule `(findings, waived)` counts, in [`ALL_RULES`] order.
    pub fn per_rule(&self) -> Vec<(Rule, usize, usize)> {
        ALL_RULES
            .iter()
            .map(|&r| {
                let found = self.findings.iter().filter(|f| f.rule == r).count();
                let waived = self
                    .waivers
                    .iter()
                    .filter(|w| w.rules.contains(&r))
                    .map(|w| w.suppressed)
                    .sum();
                (r, found, waived)
            })
            .collect()
    }

    /// Renders findings plus the per-rule table and waiver summary, as
    /// printed by the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "audit: scanned {} files: {} error(s), {} warning(s), {} finding(s) waived by {} directive(s)\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed(),
            self.waivers.len(),
        ));
        let active: Vec<(Rule, usize, usize)> = self
            .per_rule()
            .into_iter()
            .filter(|(_, found, waived)| found + waived > 0)
            .collect();
        if !active.is_empty() {
            out.push_str("audit: per-rule summary:\n");
            for (rule, found, waived) in active {
                out.push_str(&format!("  {rule}  findings={found}  waived={waived}\n"));
            }
        }
        if !self.waivers.is_empty() {
            out.push_str("audit: waivers:\n");
            for w in &self.waivers {
                out.push_str(&format!(
                    "  {}:{}: allow({}) scope={} suppressed {} finding(s) — \"{}\"\n",
                    w.file,
                    w.line,
                    rule_list(&w.rules),
                    w.scope.as_str(),
                    w.suppressed,
                    w.reason,
                ));
            }
        }
        out
    }

    /// Renders the report as deterministic, machine-readable JSON — the
    /// same structure the committed baseline file stores.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 2,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"file\": ");
            json::write_str(&mut s, &f.file);
            s.push_str(&format!(
                ", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \"message\": ",
                f.line,
                f.rule,
                match f.rule.severity() {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                }
            ));
            json::write_str(&mut s, &f.message);
            s.push('}');
        }
        s.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"file\": ");
            json::write_str(&mut s, &w.file);
            s.push_str(&format!(", \"line\": {}, \"rules\": [", w.line));
            for (j, r) in w.rules.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{r}\""));
            }
            s.push_str(&format!(
                "], \"scope\": \"{}\", \"suppressed\": {}, \"reason\": ",
                w.scope.as_str(),
                w.suppressed
            ));
            json::write_str(&mut s, &w.reason);
            s.push('}');
        }
        s.push_str(if self.waivers.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"summary\": {");
        s.push_str(&format!(
            "\"errors\": {}, \"warnings\": {}, \"waived\": {}, \"by_rule\": {{",
            self.errors(),
            self.warnings(),
            self.suppressed()
        ));
        for (i, (rule, found, waived)) in self.per_rule().into_iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{rule}\": {{\"findings\": {found}, \"waived\": {waived}}}"
            ));
        }
        s.push_str("}}\n}\n");
        s
    }

    /// Diffs this report against a committed baseline (a JSON document
    /// produced by [`Report::to_json`]). Returns the findings present now
    /// but absent from the baseline — the regressions a CI gate fails on.
    ///
    /// Matching is by `(file, rule, message)` and deliberately ignores line
    /// numbers, so unrelated edits shifting a known finding do not trip the
    /// gate; a new instance of the same message in the same file *does*
    /// count when the baseline's count is exceeded.
    pub fn baseline_regressions(&self, baseline_json: &str) -> Result<Vec<Finding>, String> {
        let doc =
            json::parse(baseline_json).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let base = doc
            .get("findings")
            .and_then(json::Value::as_arr)
            .ok_or("baseline has no `findings` array")?;
        let mut budget: std::collections::BTreeMap<(String, String, String), usize> =
            std::collections::BTreeMap::new();
        for f in base {
            let key = (
                f.get("file")
                    .and_then(json::Value::as_str)
                    .ok_or("baseline finding missing `file`")?
                    .to_string(),
                f.get("rule")
                    .and_then(json::Value::as_str)
                    .ok_or("baseline finding missing `rule`")?
                    .to_string(),
                f.get("message")
                    .and_then(json::Value::as_str)
                    .ok_or("baseline finding missing `message`")?
                    .to_string(),
            );
            *budget.entry(key).or_insert(0) += 1;
        }
        let mut new = Vec::new();
        for f in &self.findings {
            let key = (f.file.clone(), f.rule.to_string(), f.message.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => new.push(f.clone()),
            }
        }
        Ok(new)
    }
}

/// Audits every in-scope `.rs` file under `root`.
///
/// In scope: `src/` trees of workspace crates (`crates/<name>/src/**`) and
/// the facade crate's own `src/`. The vendored compat shims
/// (`crates/compat/*`) are outside the trust boundary and only checked for
/// R4 on their crate roots. `target/`, hidden directories, and `tests/`
/// trees are skipped.
pub fn audit_tree(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel_path = path.strip_prefix(root).unwrap_or(&path);
        let rel = components_to_slash(rel_path);
        let Some((crate_name, is_crate_root)) = classify_path(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let (findings, dirs) = audit_source(&rel, &crate_name, is_crate_root, &src);
        report.findings.extend(findings);
        report.waivers.extend(dirs.into_iter().map(|d| WaiverEntry {
            file: rel.clone(),
            line: d.line,
            rules: d.rules,
            scope: d.scope,
            reason: d.reason,
            suppressed: d.suppressed,
        }));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .waivers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Maps a root-relative path to `(crate_name, is_crate_root)`, or `None`
/// if the file is out of audit scope.
fn classify_path(rel: &str) -> Option<(String, bool)> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, src_idx) = match parts.as_slice() {
        ["crates", "compat", name, "src", ..] => ((*name).to_string(), 3),
        ["crates", name, "src", ..] => ((*name).to_string(), 2),
        ["src", ..] => ("rmcc".to_string(), 0),
        _ => return None,
    };
    let file = parts.last()?;
    let is_crate_root = parts.len() == src_idx + 2 && (*file == "lib.rs" || *file == "main.rs");
    Some((crate_name, is_crate_root))
}

/// Recursively collects `.rs` files, skipping `target/`, `tests/`, and
/// hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "tests" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Joins path components with `/` so reports are identical across
/// platforms.
fn components_to_slash(p: &Path) -> String {
    let parts: Vec<String> = p
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify_path("crates/crypto/src/aes.rs"),
            Some(("crypto".to_string(), false))
        );
        assert_eq!(
            classify_path("crates/crypto/src/lib.rs"),
            Some(("crypto".to_string(), true))
        );
        assert_eq!(
            classify_path("crates/compat/rand/src/lib.rs"),
            Some(("rand".to_string(), true))
        );
        assert_eq!(
            classify_path("src/lib.rs"),
            Some(("rmcc".to_string(), true))
        );
        assert_eq!(classify_path("README.md"), None);
        assert_eq!(classify_path("crates/crypto/benches/x.rs"), None);
    }

    #[test]
    fn compat_crates_are_hygiene_only() {
        let rs = classify("crates/compat/rand/src/lib.rs", "rand", true);
        assert!(!rs.trusted && !rs.secret_flow && rs.hygiene);
    }

    #[test]
    fn waived_findings_are_counted_not_reported() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! d\n/// d\n// audit:allow(R1, reason = \"demo\")\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let (findings, dirs) = audit_source("crates/secmem/src/lib.rs", "secmem", true, src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].suppressed, 1);
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// audit:allow(R1, reason = \"nothing here\")\npub fn f() {}\n";
        let (findings, _) = audit_source("crates/secmem/src/x.rs", "secmem", false, src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::W0);
        assert!(findings[0].message.contains("unused audit:allow"));
    }
}
