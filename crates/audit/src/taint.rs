//! R5 — secret-taint leakage analysis (crypto + secmem).
//!
//! An intra-function taint lattice over the [`crate::model`] view of each
//! file. The lattice element is a bitset: bit 0 (`SECRET`) marks values
//! derived from a secret source, bits 1..=62 mark values derived from the
//! enclosing function's parameters (one bit per parameter). Join is
//! bitwise-or and nothing ever *removes* taint, so propagation is monotone
//! by construction — the property the proptest in `tests/` pins down.
//!
//! Sources:
//! * identifiers mentioning the R3 secret fragments (`key`, `pad`, `otp`,
//!   `plaintext`, `secret`), plus counter fragments inside `crates/crypto`
//!   where counters are OTP inputs;
//! * function parameters whose name or declared type mentions those
//!   fragments (minus the [`NONSECRET_TYPES`] selector enums);
//! * every parameter also carries its own param bit, which powers the
//!   per-function *leakiness summaries*.
//!
//! Sinks (inside `crypto`/`secmem` only): array/slice index expressions,
//! `.get()`/`.get_mut()` lookups, `if`/`while` conditions and `match`
//! scrutinees, and call sites whose argument reaches a leaky parameter of a
//! same-file function. A function that feeds a parameter into a sink is
//! *leaky in that parameter*; summaries are iterated to a fixed point so
//! leaks through helper layers (`encrypt_block` → `column` → `lut`) are
//! still attributed to the caller passing the secret.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::model::{self, FnModel, KEYWORDS};
use crate::rules::{mentions, COUNTERISH, NON_INDEX_KEYWORDS, SECRETISH};
use crate::{FileCtx, Finding, Rule};

/// Taint bit for "derived from a secret source".
pub const SECRET: u64 = 1;

/// Parameter types that mention a secret fragment but are public selectors,
/// not key material. Parameters of these types are not seeded as secret.
pub const NONSECRET_TYPES: &[&str] = &["PadPurpose"];

/// Taint bit for parameter `k` (capped: parameters past 62 share no bit).
fn param_bit(k: usize) -> u64 {
    if k < 63 {
        2u64 << k
    } else {
        0
    }
}

/// Whether `text` names a secret source by fragment, in `crate_name`.
fn fragment_source(text: &str, crate_name: &str) -> bool {
    if text.chars().next().is_some_and(|c| c.is_uppercase()) {
        return false;
    }
    if KEYWORDS.contains(&text) {
        return false;
    }
    mentions(text, SECRETISH) || (crate_name == "crypto" && mentions(text, COUNTERISH))
}

/// The per-function symbol table: binding name → taint bits.
pub type Env = BTreeMap<String, u64>;

/// Seeds an environment from a function's parameters.
pub fn seed_env(f: &FnModel, crate_name: &str) -> Env {
    let mut env = Env::new();
    for (k, p) in f.params.iter().enumerate() {
        let mut t = param_bit(k);
        let ty_is_selector = NONSECRET_TYPES.iter().any(|n| p.ty.contains(n));
        if !ty_is_selector && (fragment_source(&p.name, crate_name) || ty_mentions_secret(&p.ty)) {
            t |= SECRET;
        }
        env.insert(p.name.clone(), t);
    }
    env
}

/// Whether a parameter's type text names key/pad/secret material.
fn ty_mentions_secret(ty: &str) -> bool {
    let lower = ty.to_ascii_lowercase();
    SECRETISH.iter().any(|f| lower.contains(f))
}

/// Joint taint of every identifier in `[a, b)`, and the name of the first
/// secret-tainted identifier for diagnostics.
fn range_taint(
    toks: &[Tok],
    a: usize,
    b: usize,
    env: &Env,
    crate_name: &str,
) -> (u64, Option<String>) {
    let mut t = 0u64;
    let mut witness = None;
    for tok in toks.iter().take(b.min(toks.len())).skip(a) {
        if tok.kind != TokKind::Ident || KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        let mut it = env.get(&tok.text).copied().unwrap_or(0);
        if fragment_source(&tok.text, crate_name) {
            it |= SECRET;
        }
        if it & SECRET != 0 && witness.is_none() {
            witness = Some(tok.text.clone());
        }
        t |= it;
    }
    (t, witness)
}

/// First `;` at bracket depth 0 in `[from, hi)`, or `hi`. `stop_else` also
/// terminates at a depth-0 `else` (for `let … else { …
/// }` initializers, whose diverging block is not part of the value).
fn stmt_end(toks: &[Tok], from: usize, hi: usize, stop_else: bool) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return j,
                _ => {}
            }
        } else if stop_else && depth <= 0 && t.is_ident("else") {
            return j;
        }
    }
    hi.min(toks.len())
}

/// First `{` at paren/bracket depth 0 in `[from, hi)`, or `hi` (condition
/// and scrutinee ranges, as R3 scans them).
fn block_open(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => return j,
            ";" if depth <= 0 => return j,
            _ => {}
        }
    }
    hi.min(toks.len())
}

/// Assignment operators that move taint from their right side to the
/// left-hand binding.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// One propagation pass over a function body. Returns whether any binding's
/// taint grew.
fn propagate_once(toks: &[Tok], body: (usize, usize), env: &mut Env, crate_name: &str) -> bool {
    let (b0, b1) = body;
    let mut changed = false;
    let add = |env: &mut Env, name: &str, t: u64, changed: &mut bool| {
        if t == 0 {
            return;
        }
        let slot = env.entry(name.to_string()).or_insert(0);
        if *slot | t != *slot {
            *slot |= t;
            *changed = true;
        }
    };

    let mut i = b0 + 1;
    while i < b1 {
        let t = &toks[i];
        // `let PAT = INIT ;` / `if let PAT = SCRUT {` / `while let …`.
        if t.is_ident("let") {
            let in_branch = i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while"));
            // Pattern runs to the `=` at depth 0.
            let mut depth = 0i32;
            let mut eq = None;
            for (j, tj) in toks.iter().enumerate().take(b1).skip(i + 1) {
                if tj.kind == TokKind::Punct {
                    match tj.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth <= 0 => {
                            eq = Some(j);
                            break;
                        }
                        ";" if depth <= 0 => break,
                        _ => {}
                    }
                }
            }
            if let Some(eq) = eq {
                let init_end = if in_branch {
                    block_open(toks, eq + 1, b1)
                } else {
                    stmt_end(toks, eq + 1, b1, true)
                };
                let (ti, _) = range_taint(toks, eq + 1, init_end, env, crate_name);
                for b in model::pattern_binders(toks, (i + 1, eq)) {
                    add(env, &b, ti, &mut changed);
                }
                i = eq + 1;
                continue;
            }
            i += 1;
            continue;
        }
        // `for PAT in EXPR {`.
        if t.is_ident("for") {
            let open = block_open(toks, i + 1, b1);
            if let Some(in_pos) = (i + 1..open).find(|&j| toks[j].is_ident("in")) {
                let (ti, _) = range_taint(toks, in_pos + 1, open, env, crate_name);
                for b in model::pattern_binders(toks, (i + 1, in_pos)) {
                    add(env, &b, ti, &mut changed);
                }
            }
            i += 1;
            continue;
        }
        // `match EXPR { PAT => …, … }`: arm binders take the scrutinee's
        // taint.
        if t.is_ident("match") {
            let open = block_open(toks, i + 1, b1);
            if open < b1 && toks[open].is_punct("{") {
                let (ti, _) = range_taint(toks, i + 1, open, env, crate_name);
                if ti != 0 {
                    if let Some(close) = model::matching_fwd(toks, open, "{", "}") {
                        let mut depth = 0i32;
                        let mut seg = open + 1;
                        for j in open..=close.min(b1) {
                            let tj = &toks[j];
                            if tj.kind != TokKind::Punct {
                                continue;
                            }
                            match tj.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                "=>" if depth == 1 => {
                                    for b in model::pattern_binders(toks, (seg, j)) {
                                        add(env, &b, ti, &mut changed);
                                    }
                                }
                                "," if depth == 1 => seg = j + 1,
                                _ => {}
                            }
                        }
                    }
                }
            }
            i += 1;
            continue;
        }
        // Assignments and compound assignments at any nesting depth.
        if t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()) && !is_let_eq(toks, i)
        {
            if let Some(root) = lhs_root(toks, i) {
                let end = stmt_end(toks, i + 1, b1, false);
                let (ti, _) = range_taint(toks, i + 1, end, env, crate_name);
                let name = toks[root].text.clone();
                if name != "self" {
                    add(env, &name, ti, &mut changed);
                }
            }
        }
        i += 1;
    }
    changed
}

/// Whether the `=` at `eq` belongs to a `let` statement (whose binders are
/// handled by the pattern path, not the assignment path).
fn is_let_eq(toks: &[Tok], eq: usize) -> bool {
    if !toks[eq].is_punct("=") {
        return false;
    }
    let mut j = eq;
    loop {
        let Some(p) = j.checked_sub(1) else {
            return false;
        };
        j = p;
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" => match model::matching_back(toks, j, "(", ")") {
                    Some(o) => j = o,
                    None => return false,
                },
                "]" => match model::matching_back(toks, j, "[", "]") {
                    Some(o) => j = o,
                    None => return false,
                },
                "}" => match model::matching_back(toks, j, "{", "}") {
                    Some(o) => j = o,
                    None => return false,
                },
                ";" | "{" | "(" | "," | "=>" => return false,
                _ => {}
            }
        } else if t.is_ident("let") {
            return true;
        }
    }
}

/// The root identifier of the assignment target ending just before the
/// operator at `op` (`a`, `a.b.c`, `a[i]`, `*guard`).
fn lhs_root(toks: &[Tok], op: usize) -> Option<usize> {
    let mut j = op.checked_sub(1)?;
    loop {
        let t = &toks[j];
        if t.is_punct("]") {
            j = model::matching_back(toks, j, "[", "]")?.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            if j > 0 && toks[j - 1].is_punct(".") {
                j = j.checked_sub(2)?;
                continue;
            }
            if KEYWORDS.contains(&t.text.as_str()) && t.text != "self" {
                return None;
            }
            return Some(j);
        }
        return None;
    }
}

/// Propagates a function's environment to a fixed point (bounded).
pub fn solve_env(toks: &[Tok], f: &FnModel, crate_name: &str) -> Env {
    let mut env = seed_env(f, crate_name);
    if let Some(body) = f.body {
        for _ in 0..8 {
            if !propagate_once(toks, body, &mut env, crate_name) {
                break;
            }
        }
    }
    env
}

/// A sink hit: line plus rendered message (deduplicated per function).
type Hits = BTreeSet<(u32, String)>;

/// Scans one function body for sinks. `report` collects secret-bit findings
/// into `hits`; param-bit flows always fold into the function's leakiness
/// summary (returned).
#[allow(clippy::too_many_arguments)]
fn scan_sinks(
    toks: &[Tok],
    f: &FnModel,
    env: &Env,
    crate_name: &str,
    fn_names: &BTreeMap<String, usize>,
    summaries: &[u64],
    report: Option<&mut Hits>,
) -> u64 {
    let Some((b0, b1)) = f.body else {
        return 0;
    };
    let mut leaky = 0u64;
    let mut hits_local = Hits::new();
    let mut sink = |line: u32, t: u64, msg: String, leaky: &mut u64| {
        if t & SECRET != 0 {
            hits_local.insert((line, msg));
        }
        *leaky |= t & !SECRET;
    };

    let mut i = b0 + 1;
    while i < b1 {
        let t = &toks[i];
        // Branch conditions and match scrutinees.
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "while" | "match") {
            let is_let = matches!(toks.get(i + 1), Some(n) if n.is_ident("let"));
            let from = if is_let {
                // Only the scrutinee (after `=`) is evaluated; the pattern
                // introduces fresh binders.
                let mut eq = i + 2;
                let mut depth = 0i32;
                while eq < b1 {
                    let tj = &toks[eq];
                    if tj.kind == TokKind::Punct {
                        match tj.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "=" if depth <= 0 => break,
                            _ => {}
                        }
                    }
                    eq += 1;
                }
                eq + 1
            } else {
                i + 1
            };
            let open = block_open(toks, from, b1);
            let (ti, w) = range_taint(toks, from, open, env, crate_name);
            if ti != 0 {
                sink(
                    t.line,
                    ti,
                    format!(
                        "`{}` depends on secret-tainted value `{}` (secret-dependent branch)",
                        t.text,
                        w.unwrap_or_default()
                    ),
                    &mut leaky,
                );
            }
            i += 1;
            continue;
        }
        // Index expressions `base[…]`.
        if t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let indexes_expr = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == "]" || prev.text == ")",
                _ => false,
            };
            if indexes_expr {
                if let Some(close) = model::matching_fwd(toks, i, "[", "]") {
                    let (ti, w) = range_taint(toks, i + 1, close, env, crate_name);
                    if ti != 0 {
                        sink(
                            t.line,
                            ti,
                            format!(
                                "secret-tainted value `{}` used as slice/array index (secret-dependent address)",
                                w.unwrap_or_default()
                            ),
                            &mut leaky,
                        );
                    }
                }
            }
            i += 1;
            continue;
        }
        // `.get(…)` / `.get_mut(…)` lookups: bounds-checked, but the access
        // address still depends on the argument.
        if t.kind == TokKind::Ident
            && (t.text == "get" || t.text == "get_mut")
            && i > 0
            && toks[i - 1].is_punct(".")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
        {
            if let Some(close) = model::matching_fwd(toks, i + 1, "(", ")") {
                let (ti, w) = range_taint(toks, i + 2, close, env, crate_name);
                if ti != 0 {
                    sink(
                        t.line,
                        ti,
                        format!(
                            "secret-tainted value `{}` passed to `.{}()` (secret-dependent lookup address)",
                            w.unwrap_or_default(),
                            t.text
                        ),
                        &mut leaky,
                    );
                }
            }
            i += 1;
            continue;
        }
        // Same-file call sites: a tainted argument reaching a leaky
        // parameter is a leak one frame down.
        if t.kind == TokKind::Ident
            && !KEYWORDS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            if let Some(&callee) = fn_names.get(&t.text) {
                let callee_leaky = summaries[callee];
                if callee_leaky != 0 {
                    if let Some(close) = model::matching_fwd(toks, i + 1, "(", ")") {
                        for (k, (a, b)) in model::split_args(toks, i + 1, close).iter().enumerate()
                        {
                            if callee_leaky & param_bit(k) == 0 {
                                continue;
                            }
                            let (ti, w) = range_taint(toks, *a, *b, env, crate_name);
                            if ti != 0 {
                                sink(
                                    t.line,
                                    ti,
                                    format!(
                                        "secret-tainted argument `{}` flows into leaky parameter {} of `{}`",
                                        w.unwrap_or_default(),
                                        k + 1,
                                        t.text
                                    ),
                                    &mut leaky,
                                );
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    if let Some(out) = report {
        out.extend(hits_local);
    }
    leaky
}

/// R5 — secret-taint leakage (crypto and secmem crates).
pub fn check_r5(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    let fns: Vec<FnModel> = model::functions(toks)
        .into_iter()
        .filter(|f| match f.body {
            Some((b0, _)) => ctx.included.get(b0).copied().unwrap_or(false),
            None => false,
        })
        .collect();
    if fns.is_empty() {
        return;
    }
    // Same-file call resolution: last definition wins on (rare) name
    // collisions, which only ever under-reports cross-impl leaks.
    let mut fn_names = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        fn_names.insert(f.name.clone(), idx);
    }
    let envs: Vec<Env> = fns
        .iter()
        .map(|f| solve_env(toks, f, ctx.crate_name))
        .collect();

    // Leakiness summaries to a fixed point, then a reporting pass.
    let mut summaries = vec![0u64; fns.len()];
    for _ in 0..6 {
        let mut changed = false;
        for (idx, f) in fns.iter().enumerate() {
            let grown = scan_sinks(
                toks,
                f,
                &envs[idx],
                ctx.crate_name,
                &fn_names,
                &summaries,
                None,
            );
            if summaries[idx] | grown != summaries[idx] {
                summaries[idx] |= grown;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut hits = Hits::new();
    for (idx, f) in fns.iter().enumerate() {
        scan_sinks(
            toks,
            f,
            &envs[idx],
            ctx.crate_name,
            &fn_names,
            &summaries,
            Some(&mut hits),
        );
    }
    for (line, msg) in hits {
        out.push(ctx.finding(Rule::R5, line, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_source;

    fn r5(rel: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let (findings, _) = audit_source(rel, crate_name, false, src);
        findings
            .into_iter()
            .filter(|f| f.rule == Rule::R5)
            .collect()
    }

    #[test]
    fn taint_propagates_through_bindings_into_indices() {
        let src = "fn f(key: u64, t: &[u8; 256]) -> u8 {\n    let mixed = key ^ 7;\n    let idx = (mixed >> 2) as usize;\n    *t.get(idx).unwrap_or(&0)\n}\n";
        let f = r5("crates/crypto/src/x.rs", "crypto", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".get()"), "{}", f[0].message);
    }

    #[test]
    fn leaky_param_summaries_attribute_call_sites() {
        let src = "fn lut(t: &[u8; 256], b: u8) -> u8 { *t.get(usize::from(b)).unwrap_or(&0) }\nfn f(key: u8, t: &[u8; 256]) -> u8 { lut(t, key) }\n";
        let f = r5("crates/crypto/src/x.rs", "crypto", src);
        assert!(
            f.iter()
                .any(|x| x.message.contains("leaky parameter 2 of `lut`")),
            "{f:?}"
        );
    }

    #[test]
    fn selector_enum_params_are_not_secret() {
        let src = "fn pick(purpose: PadPurpose) -> u8 { match purpose { _ => 0 } }\n";
        assert!(r5("crates/crypto/src/x.rs", "crypto", src).is_empty());
    }

    #[test]
    fn untainted_indices_are_clean() {
        let src = "fn f(t: &[u8; 16], i: usize) -> u8 { *t.get(i & 15).unwrap_or(&0) }\n";
        assert!(r5("crates/crypto/src/x.rs", "crypto", src).is_empty());
    }

    #[test]
    fn secmem_branches_on_pads_are_flagged() {
        let src = "fn f(x: u64) -> bool {\n    let pads = x;\n    if pads > 0 { return true; }\n    false\n}\n";
        let f = r5("crates/secmem/src/x.rs", "secmem", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("secret-dependent branch"));
    }

    use proptest::prelude::*;

    /// Renders a random straight-line-plus-control-flow body over four
    /// locals and two parameters. Every statement form the propagator
    /// understands is reachable: shadowing `let`, compound assignment,
    /// `if`-guarded assignment, `for` binders, and `match` arm binders.
    fn render_program(stmts: &[(u8, u8, u8, u8)]) -> String {
        let var = |k: u8| format!("v{}", k % 4);
        let mut body = String::from(
            "    let mut v0 = 0u64;\n    let mut v1 = 0u64;\n    let mut v2 = 0u64;\n    let mut v3 = 0u64;\n",
        );
        for &(op, x, y, z) in stmts {
            let (x, y, z) = (var(x), var(y), var(z));
            let line = match op % 6 {
                0 => format!("    let {x} = {y} ^ {z};\n"),
                1 => format!("    {x} = {y}.wrapping_add({z});\n"),
                2 => format!("    if {y} > {z} {{ {x} = {y}; }}\n"),
                3 => format!("    for q in 0..{y} {{ {x} = q ^ {z}; }}\n"),
                4 => format!("    match {y} {{ m => {{ {x} = m ^ {z}; }} }}\n"),
                _ => format!("    {x} = p0 ^ {y};\n"),
            };
            body.push_str(&line);
        }
        format!("fn f(p0: u64, p1: u64) -> u64 {{\n{body}    v0 ^ v1 ^ v2 ^ v3\n}}\n")
    }

    /// `solve_env` from an explicit seed (the generous fixpoint bound keeps
    /// truncation from masking a real monotonicity break).
    fn solve_from(toks: &[crate::lexer::Tok], f: &FnModel, mut env: Env) -> Env {
        if let Some(body) = f.body {
            for _ in 0..64 {
                if !propagate_once(toks, body, &mut env, "crypto") {
                    break;
                }
            }
        }
        env
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Monotonicity: seeding *more* taint can never make any binding
        /// end up with *less* — join is bitwise-or and nothing kills bits,
        /// so a larger seed must solve to a pointwise-larger environment.
        #[test]
        fn taint_propagation_is_monotone(
            stmts in prop::collection::vec(
                (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
                1..12,
            ),
            extra in prop::collection::vec((0u8..6, 1u64..16), 0..4),
        ) {
            let src = render_program(&stmts);
            let scanned = crate::lexer::scan(&src);
            let fns = model::functions(&scanned.tokens);
            prop_assert!(!fns.is_empty(), "generated program must parse:\n{}", src);
            let f = &fns[0];
            let lo = seed_env(f, "crypto");
            let mut hi = lo.clone();
            for (vk, bits) in &extra {
                let name = match vk {
                    0..=3 => format!("v{vk}"),
                    4 => "p0".to_string(),
                    _ => "p1".to_string(),
                };
                *hi.entry(name).or_insert(0) |= bits;
            }
            let solved_lo = solve_from(&scanned.tokens, f, lo);
            let solved_hi = solve_from(&scanned.tokens, f, hi);
            for (name, t) in &solved_lo {
                let h = solved_hi.get(name).copied().unwrap_or(0);
                prop_assert!(
                    t & h == *t,
                    "taint lost for `{}`: lo={:#x} hi={:#x}\n{}",
                    name, t, h, src
                );
            }
        }
    }
}
