//! CLI for the RMCC static-invariant audit.
//!
//! ```text
//! cargo run -p rmcc-audit -- [--root PATH] [--deny-warnings]
//! ```
//!
//! Exit codes: `0` clean, `1` unwaived findings (errors always; warnings
//! only under `--deny-warnings`), `2` usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_warnings = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("rmcc-audit: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
            }
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("usage: rmcc-audit [--root PATH] [--deny-warnings]");
                println!();
                println!("Statically enforces the RMCC trusted-path invariants:");
                println!(
                    "  R1  panic-freedom in crypto/secmem/core (no unwrap/expect/panic!/indexing)"
                );
                println!("  R2  counter-arithmetic safety (no truncating casts or unchecked +/<<)");
                println!("  R3  secret-flow hygiene in crypto (no secret-dependent branches/indexes/logs)");
                println!(
                    "  R4  crate roots pin #![forbid(unsafe_code)] and #![deny(missing_docs)]"
                );
                println!();
                println!("Waive intentional findings with `// audit:allow(R1, reason = \"...\")`.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rmcc-audit: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    match rmcc_audit::audit_tree(&root) {
        Ok(report) => {
            print!("{}", report.render());
            match report.exit_code(deny_warnings) {
                0 => ExitCode::SUCCESS,
                code => ExitCode::from(code.clamp(0, 255) as u8),
            }
        }
        Err(e) => {
            eprintln!("rmcc-audit: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
