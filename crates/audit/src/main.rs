//! CLI for the RMCC static-invariant audit.
//!
//! ```text
//! cargo run -p rmcc-audit -- [--root PATH] [--deny-warnings]
//!                            [--format text|json] [--baseline PATH]
//! ```
//!
//! Exit codes are distinct and stable for CI:
//!
//! * `0` — clean: no unwaived findings (or, in baseline mode, every
//!   finding is accounted for by the committed baseline).
//! * `1` — findings: unwaived errors, warnings under `--deny-warnings`,
//!   or findings not present in the `--baseline` file.
//! * `2` — internal error: bad usage, unreadable tree, or an unparsable
//!   baseline. A broken gate must never look like a passing one.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Output format selector.
enum Format {
    /// Human-readable findings + tables (default).
    Text,
    /// The machine-readable report consumed by the baseline gate.
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_warnings = false;
    let mut format = Format::Text;
    let mut baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("rmcc-audit: --root requires a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
            }
            "--deny-warnings" => deny_warnings = true,
            "--format" => {
                match args.next().as_deref() {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    other => {
                        eprintln!("rmcc-audit: --format requires `text` or `json` (got {other:?})");
                        return ExitCode::from(2);
                    }
                };
            }
            "--baseline" => {
                let Some(p) = args.next() else {
                    eprintln!("rmcc-audit: --baseline requires a path");
                    return ExitCode::from(2);
                };
                baseline = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                println!(
                    "usage: rmcc-audit [--root PATH] [--deny-warnings] [--format text|json] [--baseline PATH]"
                );
                println!();
                println!("Statically enforces the RMCC trusted-path invariants:");
                println!(
                    "  R1  panic-freedom in crypto/secmem/core (no unwrap/expect/panic!/indexing)"
                );
                println!("  R2  counter-arithmetic safety (no truncating casts or unchecked +/<<)");
                println!("  R3  secret-flow hygiene in crypto (no secret-dependent branches/indexes/logs)");
                println!(
                    "  R4  crate roots pin #![forbid(unsafe_code)] and #![deny(missing_docs)]"
                );
                println!("  R5  dataflow leakage in crypto/secmem (taint from secrets into indices/branches)");
                println!("  R6  lock discipline on the service layer (guards across spawn/submit, CoW seam)");
                println!(
                    "  R7  determinism contract (no wall clock or hasher-randomized containers)"
                );
                println!();
                println!("Waive intentional findings with `// audit:allow(R1, reason = \"...\")`.");
                println!("`--baseline FILE` gates on regressions only: exit 1 if any finding is");
                println!("absent from the committed baseline (produced with `--format json`),");
                println!("0 when all findings are accounted for. Exit codes: 0 clean,");
                println!("1 findings/regressions, 2 internal error.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rmcc-audit: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match rmcc_audit::audit_tree(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("rmcc-audit: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // Baseline gate: regressions are findings the committed baseline does
    // not account for. An unreadable or unparsable baseline is an internal
    // error (exit 2), not a pass.
    let mut regressions = Vec::new();
    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rmcc-audit: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match report.baseline_regressions(&text) {
            Ok(r) => regressions = r,
            Err(e) => {
                eprintln!("rmcc-audit: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match format {
        Format::Text => print!("{}", report.render()),
        Format::Json => print!("{}", report.to_json()),
    }
    if baseline.is_some() {
        if regressions.is_empty() {
            eprintln!(
                "rmcc-audit: baseline gate: no new findings ({} current)",
                report.findings.len()
            );
        } else {
            eprintln!(
                "rmcc-audit: baseline gate: {} new unwaived finding(s):",
                regressions.len()
            );
            for f in &regressions {
                eprintln!("  {f}");
            }
        }
    }

    // In baseline mode the committed file *is* the accepted debt: the gate
    // passes whenever every current finding is accounted for, and fails
    // only on regressions. Without a baseline, findings themselves gate.
    if baseline.is_some() {
        return if regressions.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    match report.exit_code(deny_warnings) {
        0 => ExitCode::SUCCESS,
        code => ExitCode::from(code.clamp(0, 255) as u8),
    }
}
