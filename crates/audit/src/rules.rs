//! The RMCC rule catalogue (R1–R4) over the lexical token stream.
//!
//! Each check is written against token adjacency, not an AST, so the rules
//! are deliberately conservative pattern matchers. False positives are the
//! accepted cost — they are silenced with a counted, reasoned
//! `audit:allow` directive — while the patterns themselves are tuned so the
//! trusted-path constructs the threat model cares about cannot slip
//! through renamed or reformatted.

use crate::lexer::{Tok, TokKind};
use crate::{FileCtx, Finding, Rule};

/// Identifier fragments that mark a binding as counter-like for R2 (and as
/// taint sources inside `crypto` for R5, where counters are OTP inputs).
pub(crate) const COUNTERISH: &[&str] = &["counter", "ctr", "epoch", "budget", "major", "minor"];

/// Identifier fragments that mark a binding as secret-bearing for R3/R5.
pub(crate) const SECRETISH: &[&str] = &["key", "pad", "otp", "plaintext", "secret"];

/// Casts narrower than `u64` that can drop counter bits.
const TRUNCATING: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Macro-call identifiers banned outright on the trusted path.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Format-family macros R3 inspects for secret captures.
const FORMAT_MACROS: &[&str] = &[
    "format", "print", "println", "eprint", "eprintln", "write", "writeln", "debug", "trace",
    "info", "warn", "error",
];

/// Keywords after which a `[` opens an array literal, pattern, or type —
/// not an index expression.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "break", "continue", "else", "match", "if", "while",
    "loop", "for", "move", "box", "dyn", "impl", "where", "const", "static", "pub", "use", "mod",
    "enum", "struct", "trait", "type", "fn", "unsafe", "await", "async", "as", "yield",
];

/// Whether `ident` (case-insensitively) contains any fragment in `set`.
pub(crate) fn mentions(ident: &str, set: &[&str]) -> bool {
    let lower = ident.to_ascii_lowercase();
    set.iter().any(|f| lower.contains(f))
}

/// Computes the inclusion mask: `true` for tokens in audit scope, `false`
/// for tokens under `#[cfg(test)]` / `#[test]` items.
///
/// An attribute group containing the identifier `test` (and not `not`, so
/// `#[cfg(not(test))]` stays in scope) excludes the item it annotates: all
/// tokens through the matching close of the item's brace block, or through
/// the terminating `;` for block-less items like `mod tests;`.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut excluded = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && matches!(tokens.get(i + 1), Some(t) if t.is_punct("["))) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, "[", "]") else {
            break;
        };
        let attr = &tokens[i + 2..close];
        let has_test = attr
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test");
        let negated = attr
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "not");
        if !has_test || negated {
            i = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = close + 1;
        while k < tokens.len()
            && tokens[k].is_punct("#")
            && matches!(tokens.get(k + 1), Some(t) if t.is_punct("["))
        {
            match matching(tokens, k + 1, "[", "]") {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // The attributed item ends at its brace block's close, or at the
        // first `;` that appears before any `{`.
        let mut end = tokens.len().saturating_sub(1);
        let mut j = k;
        while j < tokens.len() {
            if tokens[j].is_punct(";") {
                end = j;
                break;
            }
            if tokens[j].is_punct("{") {
                end = matching(tokens, j, "{", "}").unwrap_or(tokens.len() - 1);
                break;
            }
            j += 1;
        }
        for slot in excluded.iter_mut().take(end + 1).skip(i) {
            *slot = true;
        }
        i = end + 1;
    }
    excluded.iter().map(|e| !e).collect()
}

/// Index of the delimiter matching `tokens[open]`, which must be `open_s`.
fn matching(tokens: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// R1 — panic-freedom on the trusted path.
pub fn check_r1(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.included[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            // `.unwrap()` / `.expect(`
            if (t.text == "unwrap" || t.text == "expect")
                && i > 0
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            {
                out.push(ctx.finding(
                    Rule::R1,
                    t.line,
                    format!(
                        "`{}()` on trusted path (use typed errors or infallible patterns)",
                        t.text
                    ),
                ));
                continue;
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            if PANIC_MACROS.contains(&t.text.as_str())
                && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            {
                out.push(ctx.finding(
                    Rule::R1,
                    t.line,
                    format!(
                        "`{}!` on trusted path (return a typed error instead)",
                        t.text
                    ),
                ));
                continue;
            }
        }
        // Bare slice/array indexing: `expr[...]`.
        if t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let indexes_expr = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == "]" || prev.text == ")",
                _ => false,
            };
            if !indexes_expr {
                continue;
            }
            // `&buf[..]` re-slices the whole buffer and cannot panic.
            let full_range = matches!(toks.get(i + 1), Some(a) if a.is_punct(".."))
                && matches!(toks.get(i + 2), Some(b) if b.is_punct("]"));
            if full_range {
                continue;
            }
            out.push(ctx.finding(
                Rule::R1,
                t.line,
                "bare slice indexing on trusted path (use `get`/`get_mut`, iterators, or slice patterns)".to_string(),
            ));
        }
    }
}

/// R2 — counter-arithmetic safety.
pub fn check_r2(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.included[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            // Truncating `as` casts are handled at the `as` keyword below.
            "+" | "+=" => {
                // `a + b` / `a += b`: flag when either operand is a
                // counter-like identifier. A `)` on the left is skipped —
                // a parenthesised or checked_* left operand already went
                // through an audited construction.
                if let Some(name) = operand_ident_before(toks, i) {
                    if mentions(&name, COUNTERISH) {
                        out.push(ctx.finding(
                            Rule::R2,
                            t.line,
                            format!(
                                "unchecked `{}` on counter-like identifier `{name}` (use checked_add/wrapping_add with a rationale)",
                                t.text
                            ),
                        ));
                        continue;
                    }
                }
                if t.text == "+" {
                    if let Some(name) = operand_ident_after(toks, i) {
                        if mentions(&name, COUNTERISH) {
                            out.push(ctx.finding(
                                Rule::R2,
                                t.line,
                                format!(
                                    "unchecked `+` on counter-like identifier `{name}` (use checked_add/wrapping_add with a rationale)"
                                ),
                            ));
                        }
                    }
                }
            }
            "<<" | "<<=" => {
                // Only the shifted (left) operand loses bits.
                if let Some(name) = operand_ident_before(toks, i) {
                    if mentions(&name, COUNTERISH) {
                        out.push(ctx.finding(
                            Rule::R2,
                            t.line,
                            format!(
                                "unchecked `{}` on counter-like identifier `{name}` (use checked_shl/wrapping_shl with a rationale)",
                                t.text
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    // Truncating casts: `<counter-ish expr> as u8/u16/u32/...`.
    for i in 0..toks.len() {
        if !ctx.included[i] || !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !TRUNCATING.contains(&target.text.as_str()) {
            continue;
        }
        if let Some(name) = cast_source_ident(toks, i) {
            if mentions(&name, COUNTERISH) {
                out.push(ctx.finding(
                    Rule::R2,
                    toks[i].line,
                    format!(
                        "truncating `as {}` cast on counter-like identifier `{name}` (use try_from or mask explicitly with a rationale)",
                        target.text
                    ),
                ));
            }
        }
    }
}

/// The identifier naming the operand that ends at `i - 1`, if any.
///
/// Handles `ident`, `self.field`, and `base[index]` shapes; gives up on
/// parenthesised operands (already-audited constructions).
fn operand_ident_before(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i.checked_sub(1)?;
    // `base[index] + …`: skip back over the index to the base's name.
    if toks[j].is_punct("]") {
        let mut depth = 0usize;
        loop {
            if toks[j].is_punct("]") {
                depth += 1;
            } else if toks[j].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    let t = toks.get(j)?;
    if t.kind == TokKind::Ident && !NON_INDEX_KEYWORDS.contains(&t.text.as_str()) {
        return Some(t.text.clone());
    }
    None
}

/// The identifier starting the operand at `i + 1`, if any (skipping a
/// leading `self.` / `&` / `*`).
fn operand_ident_after(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i + 1;
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Ident if t.text == "self" => {
                // `self.field`
                if matches!(toks.get(j + 1), Some(d) if d.is_punct(".")) {
                    j += 2;
                    continue;
                }
                return None;
            }
            TokKind::Ident => return Some(t.text.clone()),
            TokKind::Punct if t.text == "&" || t.text == "*" => {
                j += 1;
                continue;
            }
            _ => return None,
        }
    }
}

/// The identifier most plausibly being cast by the `as` at `i`.
fn cast_source_ident(toks: &[Tok], i: usize) -> Option<String> {
    let j = i.checked_sub(1)?;
    let prev = toks.get(j)?;
    match prev.kind {
        TokKind::Ident => Some(prev.text.clone()),
        TokKind::Punct if prev.text == "]" || prev.text == ")" => {
            // `base[idx] as T` / `(expr) as T`: any identifier inside (or
            // the base just before an index) can be the truncated value.
            let (open_s, close_s) = if prev.text == "]" {
                ("[", "]")
            } else {
                ("(", ")")
            };
            let mut depth = 0usize;
            let mut k = j;
            let open = loop {
                if toks[k].is_punct(close_s) {
                    depth += 1;
                } else if toks[k].is_punct(open_s) {
                    depth -= 1;
                    if depth == 0 {
                        break k;
                    }
                }
                k = k.checked_sub(1)?;
            };
            let inner = toks
                .get(open..=j)?
                .iter()
                .find(|t| t.kind == TokKind::Ident && mentions(&t.text, COUNTERISH))
                .map(|t| t.text.clone());
            if inner.is_some() {
                return inner;
            }
            if prev.text == "]" {
                // The indexed base itself, e.g. `minors[slot] as u8`.
                let b = toks.get(open.checked_sub(1)?)?;
                if b.kind == TokKind::Ident {
                    return Some(b.text.clone());
                }
            }
            None
        }
        _ => None,
    }
}

/// R3 — secret-flow hygiene (crypto crate only).
pub fn check_r3(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.included[i] {
            continue;
        }
        let t = &toks[i];
        // Branch conditions: `if` / `while` / `match` up to the body `{`.
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "while" | "match") {
            let mut depth = 0usize;
            for cond in toks.iter().skip(i + 1) {
                if cond.kind == TokKind::Punct {
                    match cond.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "{" if depth == 0 => break,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                if cond.kind == TokKind::Ident && mentions(&cond.text, SECRETISH) {
                    out.push(ctx.finding(
                        Rule::R3,
                        t.line,
                        format!(
                            "`{}` condition mentions secret-named binding `{}` (secret-dependent branch)",
                            t.text, cond.text
                        ),
                    ));
                    break;
                }
            }
            continue;
        }
        // Index expressions: secret-named identifiers inside `[...]` of an
        // index expression are secret-dependent memory addresses.
        if t.is_punct("[") && i > 0 {
            let prev = &toks[i - 1];
            let indexes_expr = match prev.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == "]" || prev.text == ")",
                _ => false,
            };
            if !indexes_expr {
                continue;
            }
            if let Some(close) = matching(toks, i, "[", "]") {
                for inner in &toks[i + 1..close] {
                    if inner.kind == TokKind::Ident && mentions(&inner.text, SECRETISH) {
                        out.push(ctx.finding(
                            Rule::R3,
                            t.line,
                            format!(
                                "index expression mentions secret-named binding `{}` (secret-dependent address)",
                                inner.text
                            ),
                        ));
                        break;
                    }
                }
            }
            continue;
        }
        // `#[derive(..., Debug, ...)]` on a type with a secret-named field.
        if t.is_punct("#") && matches!(toks.get(i + 1), Some(n) if n.is_punct("[")) {
            let Some(close) = matching(toks, i + 1, "[", "]") else {
                continue;
            };
            let attr = &toks[i + 2..close];
            let is_derive_debug = attr.first().is_some_and(|a| a.is_ident("derive"))
                && attr.iter().any(|a| a.is_ident("Debug"));
            if !is_derive_debug {
                continue;
            }
            // Find the annotated item's brace block and scan field names.
            let mut j = close + 1;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j >= toks.len() || !toks[j].is_punct("{") {
                continue;
            }
            let Some(body_close) = matching(toks, j, "{", "}") else {
                continue;
            };
            for (k, field) in toks.iter().enumerate().take(body_close).skip(j + 1) {
                if field.kind == TokKind::Ident
                    && mentions(&field.text, SECRETISH)
                    && matches!(toks.get(k + 1), Some(c) if c.is_punct(":"))
                {
                    out.push(ctx.finding(
                        Rule::R3,
                        t.line,
                        format!(
                            "derive(Debug) on type with secret-named field `{}` (write a redacting impl)",
                            field.text
                        ),
                    ));
                    break;
                }
            }
            continue;
        }
        // Format-family macros whose arguments or captures name a secret.
        if t.kind == TokKind::Ident
            && FORMAT_MACROS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
            && matches!(toks.get(i + 2), Some(n) if n.is_punct("(") || n.is_punct("["))
        {
            let open_s = if toks[i + 2].is_punct("(") { "(" } else { "[" };
            let close_s = if open_s == "(" { ")" } else { "]" };
            let Some(close) = matching(toks, i + 2, open_s, close_s) else {
                continue;
            };
            for arg in &toks[i + 3..close] {
                let hit = match arg.kind {
                    TokKind::Ident => mentions(&arg.text, SECRETISH).then(|| arg.text.clone()),
                    TokKind::Str => str_capture_secret(&arg.text),
                    _ => None,
                };
                if let Some(name) = hit {
                    out.push(ctx.finding(
                        Rule::R3,
                        t.line,
                        format!(
                            "`{}!` formats secret-named binding `{name}` (log-leak guard)",
                            t.text
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

/// Scans a format string's `{...}` captures for secret-named identifiers.
/// `{{` escapes are respected.
fn str_capture_secret(s: &str) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            if !name.is_empty() && mentions(&name, SECRETISH) {
                return Some(name);
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    None
}

/// R4 — crate roots must pin `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]`.
pub fn check_r4(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    if !has_inner_lint(ctx.tokens, &["forbid"], "unsafe_code") {
        out.push(ctx.finding(
            Rule::R4,
            1,
            "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !has_inner_lint(ctx.tokens, &["deny", "forbid"], "missing_docs") {
        out.push(ctx.finding(
            Rule::R4,
            1,
            "crate root missing `#![deny(missing_docs)]`".to_string(),
        ));
    }
}

/// Whether the token stream carries `#![<level>(<lint>)]` for one of the
/// accepted levels.
fn has_inner_lint(toks: &[Tok], levels: &[&str], lint: &str) -> bool {
    for i in 0..toks.len() {
        if toks[i].is_punct("#")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct("!"))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct("["))
        {
            if let Some(close) = matching(toks, i + 2, "[", "]") {
                let attr = &toks[i + 3..close];
                let level_ok = attr
                    .first()
                    .is_some_and(|t| t.kind == TokKind::Ident && levels.contains(&t.text.as_str()));
                if level_ok && attr.iter().any(|t| t.is_ident(lint)) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_source;

    fn run(rel: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let (findings, _dirs) = audit_source(rel, crate_name, rel.ends_with("lib.rs"), src);
        findings
    }

    #[test]
    fn r1_flags_unwrap_expect_and_macros() {
        let f = run(
            "crates/secmem/src/x.rs",
            "secmem",
            "fn f(x: Option<u8>) { x.unwrap(); x.expect(\"m\"); panic!(\"no\"); }",
        );
        let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![Rule::R1, Rule::R1, Rule::R1]);
    }

    #[test]
    fn r1_ignores_test_modules_and_comments() {
        let src = "// x.unwrap()\n#[cfg(test)]\nmod tests {\n fn f() { None::<u8>.unwrap(); }\n}\n";
        assert!(run("crates/secmem/src/x.rs", "secmem", src).is_empty());
    }

    #[test]
    fn r1_indexing_but_not_array_literals_or_full_ranges() {
        let f = run(
            "crates/core/src/x.rs",
            "core",
            "fn f(v: &[u8]) -> u8 { let a = [0u8; 4]; let _ = &v[..]; v[1] }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("bare slice indexing"));
    }

    #[test]
    fn r2_flags_counter_arithmetic_and_casts() {
        let src = "fn f(major_counter: u64, x: u64) -> u64 { let y = major_counter + x; let _ = major_counter as u32; y }";
        let f = run("crates/secmem/src/x.rs", "secmem", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::R2));
    }

    #[test]
    fn r2_accepts_checked_forms() {
        let src = "fn f(counter: u64) -> Option<u64> { counter.checked_add(1) }";
        assert!(run("crates/secmem/src/x.rs", "secmem", src).is_empty());
    }

    #[test]
    fn r3_flags_secret_branches_indexes_and_derive_debug() {
        let src = "#[derive(Debug)]\nstruct K { keys: [u64; 2] }\nfn f(key: u64, t: &[u8]) -> u8 { if key > 0 { return 1; } t[key as usize] }";
        let f = run("crates/crypto/src/x.rs", "crypto", src);
        // R1 also fires on the bare index; R3 fires on the derive, the
        // branch, and the secret-dependent index.
        let r3 = f.iter().filter(|f| f.rule == Rule::R3).count();
        assert_eq!(r3, 3, "{f:?}");
    }

    #[test]
    fn r3_only_applies_to_crypto() {
        let src = "fn f(key: u64) -> u64 { if key > 0 { 1 } else { 0 } }";
        // The dataflow pass (R5) still covers secmem; the lexical R3 rule
        // must not fire outside crypto.
        let f = run("crates/secmem/src/x.rs", "secmem", src);
        assert!(f.iter().all(|f| f.rule != Rule::R3), "{f:?}");
    }

    #[test]
    fn r4_requires_both_attributes_on_crate_roots() {
        let f = run("crates/dram/src/lib.rs", "dram", "//! docs\npub fn f() {}");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::R4 && x.line == 1));
        let clean = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! d\n";
        assert!(run("crates/dram/src/lib.rs", "dram", clean).is_empty());
    }
}
