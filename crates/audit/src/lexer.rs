//! A minimal, comment- and string-aware token scanner for Rust source.
//!
//! The audit rules only need a faithful *lexical* view of a file: which
//! identifiers, punctuation, and literals appear on which line, with
//! comments and string contents excluded from rule matching (so an
//! `unwrap()` inside a doc example or an error message never trips R1).
//! Line comments are still inspected for `audit:allow` directives before
//! being discarded.
//!
//! This is intentionally not a parser: no `syn`, no grammar. Every rule in
//! [`crate::rules`] is written against token adjacency, which keeps the
//! tool dependency-free and fast enough to run on every CI push.

/// What kind of token was scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `if`, `as`, `r#type`).
    Ident,
    /// A numeric literal (`42`, `0xff_u64`, `1.5e3`).
    Num,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), content
    /// preserved for format-capture scanning but never treated as code.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'_`), kept distinct so it is never confused with
    /// an unterminated char literal.
    Lifetime,
    /// Punctuation, with maximal munch for the multi-char operators the
    /// rules care about (`<<`, `+=`, `::`, `..=`, `->`, …).
    Punct,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token's text. For [`TokKind::Str`] this is the literal's inner
    /// content (quotes and raw-string hashes stripped).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A line comment's text and location, surfaced so the directive layer can
/// look for `audit:allow` annotations.
#[derive(Debug, Clone)]
pub struct CommentLine {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text after the `//` (or `/*`), one entry per source line.
    pub text: String,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Every comment line, in source order (doc comments included).
    pub comments: Vec<CommentLine>,
}

/// Multi-character punctuation the scanner munches greedily, longest first.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Scans `src` into tokens and comments.
///
/// The scanner understands line comments, nested block comments, string
/// and raw-string literals (any `#` depth), byte strings, char and byte
/// literals, and lifetimes. Anything it cannot classify advances one
/// character as punctuation, so a pathological file degrades gracefully
/// instead of looping.
pub fn scan(src: &str) -> Scan {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    let char_at = |idx: usize| -> char {
        if idx < n {
            bytes[idx]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (//, ///, //!).
        if c == '/' && char_at(i + 1) == '/' {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            while i < n && bytes[i] != '\n' {
                text.push(bytes[i]);
                i += 1;
            }
            out.comments.push(CommentLine {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment, possibly nested. Each source line of the comment
        // becomes its own `CommentLine` so a directive on an interior line
        // resolves its scope from the line it is actually written on — a
        // single aggregated entry used to desync the attribution.
        if c == '/' && char_at(i + 1) == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut text = String::new();
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && char_at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && char_at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    text.push(bytes[i]);
                    i += 1;
                }
            }
            for (off, line_text) in text.split('\n').enumerate() {
                out.comments.push(CommentLine {
                    line: start_line.saturating_add(off as u32),
                    text: line_text.to_string(),
                });
            }
            continue;
        }
        // Raw strings: r"…", r#"…"#, br#"…"#, …
        if (c == 'r' || (c == 'b' && char_at(i + 1) == 'r'))
            && matches!(char_at(i + if c == 'b' { 2 } else { 1 }), '"' | '#')
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while char_at(j) == '#' {
                hashes += 1;
                j += 1;
            }
            if char_at(j) == '"' {
                j += 1;
                let start_line = line;
                let mut text = String::new();
                'raw: while j < n {
                    if bytes[j] == '"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && char_at(k) == '#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break 'raw;
                        }
                    }
                    if bytes[j] == '\n' {
                        line += 1;
                    }
                    text.push(bytes[j]);
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
                i = j;
                continue;
            }
            // `r` / `br` not followed by a raw string: fall through to the
            // identifier path below.
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && char_at(i + 1) == '"') {
            let start_line = line;
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut text = String::new();
            while j < n && bytes[j] != '"' {
                if bytes[j] == '\\' {
                    text.push(bytes[j]);
                    if !bytes[j + 1..].is_empty() {
                        if char_at(j + 1) == '\n' {
                            line += 1;
                        }
                        text.push(char_at(j + 1));
                        j += 2;
                        continue;
                    }
                }
                if bytes[j] == '\n' {
                    line += 1;
                }
                text.push(bytes[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j.saturating_add(1);
            continue;
        }
        // Lifetimes vs char literals. `'a` / `'_` with no closing quote is
        // a lifetime; `'x'` / `'\n'` is a char literal.
        if c == '\'' {
            let c1 = char_at(i + 1);
            if c1 == '\\' || (char_at(i + 2) == '\'' && c1 != '\'') {
                // Char literal; consume through the closing quote.
                let mut j = i + 1;
                if char_at(j) == '\\' {
                    j += 2;
                } else {
                    j += 1;
                }
                while j < n && bytes[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = j.saturating_add(1);
                continue;
            }
            if c1 == '_' || c1.is_alphabetic() {
                let mut j = i + 1;
                let mut text = String::from("'");
                while j < n && (bytes[j] == '_' || bytes[j].is_alphanumeric()) {
                    text.push(bytes[j]);
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                });
                i = j;
                continue;
            }
            // Bare quote; treat as punctuation and move on.
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            });
            i += 1;
            continue;
        }
        // Numbers (loose: consume alphanumerics, `_`, `.` between digits).
        if c.is_ascii_digit() {
            let mut j = i;
            let mut text = String::new();
            while j < n
                && (bytes[j].is_ascii_alphanumeric()
                    || bytes[j] == '_'
                    || (bytes[j] == '.' && char_at(j + 1).is_ascii_digit()))
            {
                text.push(bytes[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Identifiers and keywords (raw identifiers included).
        if c == '_' || c.is_alphabetic() {
            let mut j = i;
            let mut text = String::new();
            if c == 'r' && char_at(i + 1) == '#' {
                j += 2; // raw identifier prefix
            }
            while j < n && (bytes[j] == '_' || bytes[j].is_alphanumeric()) {
                text.push(bytes[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Multi-char punctuation, longest match first.
        let mut matched = false;
        for p in MULTI_PUNCT {
            if src_slice_matches(&bytes, i, p) {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                });
                i += p.chars().count();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Whether the characters at `start` equal `pat`.
fn src_slice_matches(bytes: &[char], start: usize, pat: &str) -> bool {
    for (idx, pc) in (start..).zip(pat.chars()) {
        if bytes.get(idx) != Some(&pc) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_code() {
        let s = scan("// unwrap()\nlet x = \"unwrap()\"; /* panic! */\n");
        assert!(s.tokens.iter().all(|t| !t.is_ident("unwrap")));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].text.trim(), "unwrap()");
        // The string literal's content is kept, but as a Str token.
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* a /* b */ c */ fn x() {}");
        assert!(s.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!s.tokens.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let s = scan("let x: &'static str = r#\"panic!()\"#; let c = 'y';");
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "panic!()"));
        assert!(s.tokens.iter().any(|t| t.kind == TokKind::Char));
        assert!(!s.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn multi_char_punctuation_is_munched() {
        let s = scan("a <<= 1; b += 2; c << 3; d..=e");
        let puncts: Vec<&str> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"<<="));
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"<<"));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn lines_are_tracked_across_constructs() {
        let s = scan("fn a() {}\n// c\nfn b() {}\n");
        let b = s.tokens.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(3));
        assert_eq!(s.comments[0].line, 2);
    }

    #[test]
    fn block_comment_lines_are_attributed_individually() {
        // Regression: a multi-line (nested) block comment used to collapse
        // into one CommentLine at its start line, so a directive on an
        // interior line resolved its scope from the wrong place.
        let s = scan("/* one\n two /* nested\n three */ four\n five */\nfn f() {}\n");
        let lines: Vec<u32> = s.comments.iter().map(|c| c.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4]);
        assert!(s.comments[1].text.contains("two"));
        assert!(s.comments[3].text.contains("five"));
        let f = s.tokens.iter().find(|t| t.is_ident("f")).map(|t| t.line);
        assert_eq!(f, Some(5), "code after the comment stays in sync");
    }

    #[test]
    fn directive_inside_block_comment_resolves_from_its_own_line() {
        let src = "/* prelude\n audit:allow(R1, reason = \"interior directive\")\n*/\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let s = scan(src);
        let (ds, bad) = crate::directives::parse("f.rs", &s.comments, &s.tokens);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 2, "attributed to the interior line");
    }

    #[test]
    fn raw_string_hash_guards_keep_line_attribution() {
        // Regression fixture: `#`-guarded raw strings spanning lines, with
        // embedded quote-hash sequences shorter than the guard.
        let src = "let a = r##\"x \"# y\nz\"##;\nlet b = br#\"p\nq\"#;\nfn tail() {}\n";
        let s = scan(src);
        let strs: Vec<(&str, u32)> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(strs, vec![("x \"# y\nz", 1), ("p\nq", 3)]);
        let tail = s.tokens.iter().find(|t| t.is_ident("tail")).map(|t| t.line);
        assert_eq!(tail, Some(5), "tokens after the raw strings stay in sync");
    }
}
