//! Minimal JSON support for `--format json` and the baseline gate.
//!
//! The audit crate is deliberately dependency-free, so this module carries
//! just enough JSON: an escaping writer for report output and a small
//! recursive-descent parser for reading committed baseline files back. The
//! parser accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null) and rejects anything else with a positioned
//! error — a corrupt baseline must fail the gate loudly, not silently pass.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is irrelevant to the gate, so a sorted
    /// map keeps lookups deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let chars: Vec<char> = src.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(map)),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te");
        let v = parse(&s).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te"));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"findings": [{"line": 3, "ok": true}], "n": -1.5}"#).expect("parses");
        let f = v.get("findings").and_then(Value::as_arr).expect("array");
        assert_eq!(f[0].get("line").and_then(Value::as_num), Some(3.0));
        assert_eq!(v.get("n").and_then(Value::as_num), Some(-1.5));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
    }
}
