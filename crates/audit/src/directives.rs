//! Parsing and resolution of `audit:allow` waiver directives.
//!
//! A directive lives in a comment and silences findings for specific rules
//! over a declared scope:
//!
//! ```text
//! // audit:allow(R1, reason = "length asserted two lines up")
//! // audit:allow(R1, R2, scope = fn, reason = "fixed-size round keys")
//! // audit:allow(R4, scope = file, reason = "test-only compat shim")
//! ```
//!
//! `reason` is mandatory: a waiver without a rationale is itself reported
//! (as a `W0` warning) and suppresses nothing. Scopes:
//!
//! * `line` (default) — covers the directive's own line and the next line,
//!   so both trailing (`foo(); // audit:allow(...)`) and preceding
//!   placements work.
//! * `fn` — covers from the directive to the end of the next
//!   brace-delimited block (typically the annotated function or impl).
//! * `file` — covers the whole file.
//!
//! Every directive is counted: the CLI prints how many findings each one
//! suppressed, and a directive that suppresses nothing is reported as an
//! unused waiver so stale escape hatches cannot accumulate silently.

use crate::lexer::{CommentLine, Tok};
use crate::{Finding, Rule};

/// How much source a directive covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The directive's line and the following line.
    Line,
    /// From the directive to the end of the next brace-delimited block.
    Fn,
    /// The entire file.
    File,
}

impl Scope {
    /// The scope's spelling in a directive.
    pub fn as_str(self) -> &'static str {
        match self {
            Scope::Line => "line",
            Scope::Fn => "fn",
            Scope::File => "file",
        }
    }
}

/// A parsed, scope-resolved `audit:allow` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// Rules this directive silences.
    pub rules: Vec<Rule>,
    /// Declared scope.
    pub scope: Scope,
    /// Mandatory human rationale.
    pub reason: String,
    /// First line covered (inclusive).
    pub start: u32,
    /// Last line covered (inclusive).
    pub end: u32,
    /// Number of findings this directive suppressed (filled in by the
    /// waiver pass).
    pub suppressed: usize,
}

/// Extracts directives from a file's comments, resolving scopes against the
/// token stream. Malformed directives are returned as `W0` findings on
/// `rel` and do not suppress anything.
pub fn parse(
    rel: &str,
    comments: &[CommentLine],
    tokens: &[Tok],
) -> (Vec<Directive>, Vec<Finding>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        // A directive must be the first thing in its comment; this keeps
        // prose mentions of `audit:allow` (and doc-comment examples, whose
        // text starts with the extra `/` or `!`) from parsing as waivers.
        let trimmed = c.text.trim_start();
        let Some(rest) = trimmed.strip_prefix("audit:allow") else {
            continue;
        };
        match parse_one(rest.trim_start()) {
            Ok((rules, scope, reason)) => {
                let (start, end) = resolve(scope, c.line, tokens);
                directives.push(Directive {
                    line: c.line,
                    rules,
                    scope,
                    reason,
                    start,
                    end,
                    suppressed: 0,
                });
            }
            Err(why) => malformed.push(Finding {
                file: rel.to_string(),
                line: c.line,
                rule: Rule::W0,
                message: format!("malformed audit:allow directive: {why}"),
            }),
        }
    }
    (directives, malformed)
}

/// Parses the argument list of one directive starting at its `(`.
fn parse_one(rest: &str) -> Result<(Vec<Rule>, Scope, String), String> {
    let mut chars = rest.chars().peekable();
    if chars.next() != Some('(') {
        return Err("expected `(` after audit:allow".to_string());
    }
    // Collect the balanced, quote-aware argument body.
    let mut body = String::new();
    let mut depth = 1usize;
    let mut in_str = false;
    let mut prev_backslash = false;
    let mut closed = false;
    for ch in chars {
        if in_str {
            if prev_backslash {
                prev_backslash = false;
            } else if ch == '\\' {
                prev_backslash = true;
            } else if ch == '"' {
                in_str = false;
            }
            body.push(ch);
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                body.push(ch);
            }
            '(' => {
                depth += 1;
                body.push(ch);
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    closed = true;
                    break;
                }
                body.push(ch);
            }
            _ => body.push(ch),
        }
    }
    if !closed {
        return Err("unbalanced parentheses".to_string());
    }

    let mut rules = Vec::new();
    let mut scope = Scope::Line;
    let mut reason: Option<String> = None;
    for arg in split_top_level(&body) {
        let arg = arg.trim();
        if arg.is_empty() {
            continue;
        }
        if let Some(rule) = Rule::parse(arg) {
            rules.push(rule);
        } else if let Some(v) = key_value(arg, "scope") {
            scope = match v.trim() {
                "line" => Scope::Line,
                "fn" => Scope::Fn,
                "file" => Scope::File,
                other => return Err(format!("unknown scope `{other}`")),
            };
        } else if let Some(v) = key_value(arg, "reason") {
            let v = v.trim();
            if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
                return Err("reason must be a quoted string".to_string());
            }
            let inner = &v[1..v.len() - 1];
            if inner.trim().is_empty() {
                return Err("reason must not be empty".to_string());
            }
            reason = Some(inner.to_string());
        } else {
            return Err(format!("unknown argument `{arg}`"));
        }
    }
    if rules.is_empty() {
        return Err("no rules named (expected R1..R7)".to_string());
    }
    let Some(reason) = reason else {
        return Err("missing required reason".to_string());
    };
    Ok((rules, scope, reason))
}

/// Splits `body` on commas that sit outside quoted strings.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut prev_backslash = false;
    for ch in body.chars() {
        if in_str {
            if prev_backslash {
                prev_backslash = false;
            } else if ch == '\\' {
                prev_backslash = true;
            } else if ch == '"' {
                in_str = false;
            }
            cur.push(ch);
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                cur.push(ch);
            }
            ',' => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    parts.push(cur);
    parts
}

/// Parses `key = value` arguments.
fn key_value<'a>(arg: &'a str, key: &str) -> Option<&'a str> {
    let rest = arg.strip_prefix(key)?;
    let rest = rest.trim_start();
    rest.strip_prefix('=')
}

/// Turns a declared scope into a concrete inclusive line range.
fn resolve(scope: Scope, line: u32, tokens: &[Tok]) -> (u32, u32) {
    match scope {
        Scope::File => (1, u32::MAX),
        Scope::Line => (line, line.saturating_add(1)),
        Scope::Fn => {
            // Cover from the directive to the close of the next braced
            // block — usually the function or impl the comment annotates.
            let mut idx = None;
            for (i, t) in tokens.iter().enumerate() {
                if t.line >= line && t.is_punct("{") {
                    idx = Some(i);
                    break;
                }
            }
            let Some(open) = idx else {
                return (line, line.saturating_add(1));
            };
            let mut depth = 0usize;
            for t in &tokens[open..] {
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return (line, t.line);
                    }
                }
            }
            (line, u32::MAX)
        }
    }
}

/// Applies `directives` to `findings`: waived findings are removed and the
/// matching directive's `suppressed` count is incremented. Findings and
/// directives must belong to the same file.
pub fn apply(directives: &mut [Directive], findings: Vec<Finding>) -> Vec<Finding> {
    let mut kept = Vec::new();
    'next: for f in findings {
        if f.rule != Rule::W0 {
            for d in directives.iter_mut() {
                if d.rules.contains(&f.rule) && f.line >= d.start && f.line <= d.end {
                    d.suppressed += 1;
                    continue 'next;
                }
            }
        }
        kept.push(f);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn parses_line_scope_with_reason() {
        let s = scan("// audit:allow(R1, reason = \"checked above\")\nfoo();\n");
        let (ds, bad) = parse("f.rs", &s.comments, &s.tokens);
        assert!(bad.is_empty());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rules, vec![Rule::R1]);
        assert_eq!((ds[0].start, ds[0].end), (1, 2));
        assert_eq!(ds[0].reason, "checked above");
    }

    #[test]
    fn parses_fn_scope_over_next_block() {
        let src = "// audit:allow(R1, R2, scope = fn, reason = \"x, (y)\")\nfn f() {\n    g();\n}\nfn h() {}\n";
        let s = scan(src);
        let (ds, bad) = parse("f.rs", &s.comments, &s.tokens);
        assert!(bad.is_empty());
        assert_eq!(ds[0].scope, Scope::Fn);
        assert_eq!((ds[0].start, ds[0].end), (1, 4));
        assert_eq!(ds[0].rules, vec![Rule::R1, Rule::R2]);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let s = scan("// audit:allow(R1)\n");
        let (ds, bad) = parse("f.rs", &s.comments, &s.tokens);
        assert!(ds.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("missing required reason"));
    }

    #[test]
    fn apply_waives_and_counts() {
        let s = scan("// audit:allow(R1, scope = file, reason = \"demo\")\n");
        let (mut ds, _) = parse("f.rs", &s.comments, &s.tokens);
        let findings = vec![
            Finding {
                file: "f.rs".into(),
                line: 9,
                rule: Rule::R1,
                message: "x".into(),
            },
            Finding {
                file: "f.rs".into(),
                line: 9,
                rule: Rule::R2,
                message: "y".into(),
            },
        ];
        let kept = apply(&mut ds, findings);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, Rule::R2);
        assert_eq!(ds[0].suppressed, 1);
    }
}
