//! R6 — concurrency discipline, and R7 — determinism-contract enforcement.
//!
//! Both rules run over the [`crate::model`] function view:
//!
//! * **R6** tracks lock-guard bindings (`let g = x.lock()…` /
//!   `.read()` / `.write()` / a `lock*` helper returning a guard) through
//!   their live range (binding → end of the enclosing block, or an explicit
//!   `drop(g)`) and flags: a guard live across a `spawn` /
//!   `.submit*` / `thread::scope` boundary or a `move`-closure capture,
//!   nested lock acquisition while another guard is live (lock-order
//!   hazard), and — in `secmem`'s `service.rs` — any snapshot mutation
//!   outside the `*guard = Arc::new(…)` copy-on-write swap seam.
//! * **R7** bans wall-clock and hasher-randomized constructs
//!   (`Instant`, `SystemTime`, `UNIX_EPOCH`, `thread::sleep`,
//!   `RandomState`, `HashMap`/`HashSet`) in the deterministic crates. The
//!   only escape is the [`R7_POLICY`] table: `bench` measures wall clock by
//!   design and `telemetry`'s `PhaseProfiler` is the sanctioned boundary
//!   where wall time may enter (DESIGN.md §9). Everything else must use
//!   access counts, epochs, and ordered containers.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::model::{self, FnModel};
use crate::{FileCtx, Finding, Rule};

/// Crates whose `src/` trees are held to the determinism contract (R7).
/// `workloads` joined with the trace codec: recorded streams must replay
/// byte-identically, so its generators and codec are bound like the sim.
pub const R7_CRATES: &[&str] = &[
    "core",
    "secmem",
    "crypto",
    "telemetry",
    "sim",
    "faults",
    "workloads",
];

/// Crates whose `src/` trees are held to lock discipline (R6): everything
/// that touches the service layer's locks.
pub const R6_CRATES: &[&str] = &["secmem", "core", "faults", "sim"];

/// The determinism policy table: `(crate, file suffix or None for the whole
/// crate, rationale)`. Files matching a row are exempt from R7.
pub const R7_POLICY: &[(&str, Option<&str>, &str)] = &[
    (
        "bench",
        None,
        "benchmark harness measures wall clock by design",
    ),
    (
        "telemetry",
        Some("profile.rs"),
        "PhaseProfiler is the sanctioned wall-clock boundary (DESIGN.md §9)",
    ),
];

/// Identifiers R7 bans outside the policy table, with the reason appended
/// to the finding.
const R7_BANNED: &[(&str, &str)] = &[
    ("Instant", "wall-clock read breaks replayable simulation"),
    ("SystemTime", "wall-clock read breaks replayable simulation"),
    ("UNIX_EPOCH", "wall-clock read breaks replayable simulation"),
    (
        "RandomState",
        "randomly seeded hasher is nondeterministic across runs",
    ),
    (
        "HashMap",
        "iteration order is randomized per process — use BTreeMap or an order-insensitive fold",
    ),
    (
        "HashSet",
        "iteration order is randomized per process — use BTreeSet or an order-insensitive fold",
    ),
];

/// Whether `(crate_name, rel)` is exempted from R7 by the policy table.
pub fn r7_exempt(crate_name: &str, rel: &str) -> bool {
    R7_POLICY
        .iter()
        .any(|(c, suffix, _)| *c == crate_name && suffix.is_none_or(|s| rel.ends_with(s)))
}

/// R7 — determinism-contract enforcement.
pub fn check_r7(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if r7_exempt(ctx.crate_name, ctx.rel) {
        return;
    }
    let toks = ctx.tokens;
    let mut seen = BTreeSet::new();
    for i in 0..toks.len() {
        if !ctx.included[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        if let Some((name, why)) = R7_BANNED.iter().find(|(n, _)| *n == t.text) {
            if seen.insert((t.line, *name)) {
                out.push(ctx.finding(
                    Rule::R7,
                    t.line,
                    format!("`{name}` on a deterministic path ({why})"),
                ));
            }
            continue;
        }
        // `thread::sleep(…)` / `sleep(…)`.
        if t.text == "sleep"
            && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
            && seen.insert((t.line, "sleep"))
        {
            out.push(ctx.finding(
                Rule::R7,
                t.line,
                "`sleep` on a deterministic path (timing must come from accesses and epochs, never wall clock)"
                    .to_string(),
            ));
        }
    }
}

/// A live lock-guard binding inside one function body.
struct Guard {
    /// Binding name.
    name: String,
    /// Whether the acquisition was a `.write()` (CoW seam rules apply).
    is_write: bool,
    /// Token index just past the binding statement's `;`.
    live_from: usize,
    /// Token index of the end of the guard's scope (enclosing block close
    /// or `drop(name)`).
    live_to: usize,
    /// Line of the binding, for diagnostics.
    line: u32,
}

/// Method/helper names that may trail a lock acquisition without consuming
/// the guard (`.lock().unwrap_or_else(PoisonError::into_inner)` still binds
/// a guard; `.lock().unwrap().clone()` does not).
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

/// If the initializer token range `[a, b)` acquires a lock and binds the
/// guard itself, returns whether it was a write acquisition.
fn acquisition(toks: &[Tok], a: usize, b: usize) -> Option<bool> {
    let mut j = a;
    while j < b {
        let Some((close, is_write)) = acquisition_at(toks, j, b) else {
            j += 1;
            continue;
        };
        // The rest of the initializer must only unwrap the guard, not
        // extract a value out of it.
        let mut k = close + 1;
        loop {
            if k >= b {
                return Some(is_write);
            }
            if !toks[k].is_punct(".") {
                return None;
            }
            let m = toks.get(k + 1)?;
            if m.kind != TokKind::Ident || !GUARD_PRESERVING.contains(&m.text.as_str()) {
                return None;
            }
            toks.get(k + 2).filter(|p| p.is_punct("("))?;
            let c = model::matching_fwd(toks, k + 2, "(", ")")?;
            k = c + 1;
        }
    }
    None
}

/// If a lock acquisition starts at token `j`, returns `(index of its
/// closing paren, is_write)`.
///
/// Recognized: `.lock()` / `.read()` / `.write()` with *empty* argument
/// lists (distinguishing `snapshot.read()` from `mem.read(block)`), and
/// calls to `lock`-named helper functions that return a guard
/// (`lock(&self.core)`, `lock_mode(&self.mode)`).
fn acquisition_at(toks: &[Tok], j: usize, hi: usize) -> Option<(usize, bool)> {
    let t = toks.get(j)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let dotted = j > 0 && toks[j - 1].is_punct(".");
    if dotted && matches!(t.text.as_str(), "lock" | "read" | "write") {
        let open = toks.get(j + 1)?;
        let close = toks.get(j + 2)?;
        if open.is_punct("(") && close.is_punct(")") && j + 2 < hi {
            return Some((j + 2, t.text == "write"));
        }
        return None;
    }
    if !dotted
        && (t.text == "lock" || t.text.starts_with("lock_"))
        && matches!(toks.get(j + 1), Some(n) if n.is_punct("("))
    {
        let close = model::matching_fwd(toks, j + 1, "(", ")")?;
        if close < hi {
            return Some((close, false));
        }
    }
    None
}

/// Collects the guard bindings of one function body.
fn guards(toks: &[Tok], f: &FnModel) -> Vec<Guard> {
    let Some((b0, b1)) = f.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut i = b0 + 1;
    while i < b1 {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // Only plain `let [mut] name = …;` bindings can hold a guard we
        // track; pattern bindings of guards do not occur on these paths.
        let mut j = i + 1;
        if matches!(toks.get(j), Some(t) if t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident || !matches!(toks.get(j + 1), Some(t) if t.is_punct("="))
        {
            i += 1;
            continue;
        }
        let eq = j + 1;
        let mut depth = 0i32;
        let mut end = b1;
        for (k, t) in toks.iter().enumerate().take(b1).skip(eq + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
            }
        }
        if let Some(is_write) = acquisition(toks, eq + 1, end) {
            let scope_end = model::enclosing_block_end(toks, i, b0);
            let mut live_to = scope_end.min(b1);
            // An explicit `drop(name)` ends the live range early.
            let mut k = end + 1;
            while k + 3 <= live_to {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_punct("(")
                    && toks[k + 2].is_ident(&name_tok.text)
                    && matches!(toks.get(k + 3), Some(t) if t.is_punct(")"))
                {
                    live_to = k;
                    break;
                }
                k += 1;
            }
            out.push(Guard {
                name: name_tok.text.clone(),
                is_write,
                live_from: end + 1,
                live_to,
                line: toks[i].line,
            });
        }
        i = end + 1;
    }
    out
}

/// R6 — concurrency discipline on the service layer.
pub fn check_r6(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    let cow_seam = ctx.crate_name == "secmem" && ctx.rel.ends_with("service.rs");
    let mut hits: BTreeSet<(u32, String)> = BTreeSet::new();

    for f in model::functions(toks) {
        let Some((b0, _)) = f.body else { continue };
        if !ctx.included.get(b0).copied().unwrap_or(false) {
            continue;
        }
        for g in guards(toks, &f) {
            for i in g.live_from..g.live_to {
                let t = &toks[i];
                if t.kind == TokKind::Ident {
                    // Thread/submit boundaries.
                    let boundary = match t.text.as_str() {
                        "spawn" => Some("spawn"),
                        "scope" if i > 0 && toks[i - 1].is_punct("::") => Some("thread::scope"),
                        s if s.starts_with("submit") && i > 0 && toks[i - 1].is_punct(".") => {
                            Some("submit")
                        }
                        _ => None,
                    };
                    if let Some(b) = boundary {
                        hits.insert((
                            t.line,
                            format!(
                                "lock guard `{}` (line {}) held across `{}` boundary (drop or narrow the guard first)",
                                g.name, g.line, b
                            ),
                        ));
                        continue;
                    }
                    // `move` closure capturing the guard.
                    if t.text == "move"
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct("|") || n.is_punct("||"))
                    {
                        if let Some(body) = closure_body(toks, i + 1, g.live_to) {
                            if toks[body.0..body.1].iter().any(|c| c.is_ident(&g.name)) {
                                hits.insert((
                                    t.line,
                                    format!(
                                        "lock guard `{}` (line {}) captured by `move` closure (clone the data out instead)",
                                        g.name, g.line
                                    ),
                                ));
                            }
                        }
                        continue;
                    }
                }
                // Nested acquisition while this guard is live.
                if acquisition_at(toks, i, g.live_to).is_some() && i > g.live_from {
                    hits.insert((
                        toks[i].line,
                        format!(
                            "nested lock acquisition while guard `{}` (line {}) is live (lock-order hazard — narrow the first guard)",
                            g.name, g.line
                        ),
                    ));
                }
                // CoW seam: writes through the snapshot write guard must be
                // whole-`Arc` swaps.
                if cow_seam && g.is_write && t.is_ident(&g.name) {
                    // `*name = EXPR` — legal only as `*name = Arc::new(…)`.
                    if i > 0
                        && toks[i - 1].is_punct("*")
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct("="))
                    {
                        let swap = matches!(toks.get(i + 2), Some(a) if a.is_ident("Arc"))
                            && matches!(toks.get(i + 3), Some(c) if c.is_punct("::"))
                            && matches!(toks.get(i + 4), Some(n) if n.is_ident("new"));
                        if !swap {
                            hits.insert((
                                t.line,
                                format!(
                                    "snapshot write through guard `{}` outside the `Arc::new` copy-on-write swap",
                                    g.name
                                ),
                            ));
                        }
                    }
                    // `name.field = …` — in-place mutation through the guard.
                    if matches!(toks.get(i + 1), Some(d) if d.is_punct("."))
                        && matches!(toks.get(i + 2), Some(fld) if fld.kind == TokKind::Ident)
                        && matches!(toks.get(i + 3), Some(eq) if eq.is_punct("="))
                    {
                        hits.insert((
                            t.line,
                            format!(
                                "field mutation through write guard `{}` (build a new snapshot and swap it)",
                                g.name
                            ),
                        ));
                    }
                }
            }
        }
    }

    // CoW seam, file-wide: in-place mutation of a shared `Arc` snapshot.
    if cow_seam {
        for i in 0..toks.len() {
            if !ctx.included[i] {
                continue;
            }
            if toks[i].is_ident("Arc")
                && matches!(toks.get(i + 1), Some(c) if c.is_punct("::"))
                && matches!(toks.get(i + 2), Some(m) if m.is_ident("get_mut") || m.is_ident("make_mut"))
            {
                hits.insert((
                    toks[i].line,
                    format!(
                        "`Arc::{}` mutates a shared snapshot in place (swap a fresh `Arc` through the write guard instead)",
                        toks[i + 2].text
                    ),
                ));
            }
        }
    }

    for (line, msg) in hits {
        out.push(ctx.finding(Rule::R6, line, msg));
    }
}

/// The body token range of the closure whose parameter list opens with the
/// `|` at `bar` (exclusive of any braces): `(start, end)`.
fn closure_body(toks: &[Tok], bar: usize, hi: usize) -> Option<(usize, usize)> {
    let start = if toks.get(bar).is_some_and(|t| t.is_punct("||")) {
        bar + 1
    } else {
        let mut j = bar + 1;
        while j < hi && !toks[j].is_punct("|") {
            j += 1;
        }
        if j >= hi {
            return None;
        }
        j + 1
    };
    if matches!(toks.get(start), Some(t) if t.is_punct("{")) {
        let close = model::matching_fwd(toks, start, "{", "}")?;
        return Some((start + 1, close.min(hi)));
    }
    // Expression-bodied closure: to the first `,` / `;` / `)` at depth 0.
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().take(hi).skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" if depth == 0 => return Some((start, k)),
            ")" | "]" | "}" => depth -= 1,
            "," | ";" if depth == 0 => return Some((start, k)),
            _ => {}
        }
    }
    Some((start, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_source;

    fn rule(rel: &str, crate_name: &str, src: &str, r: Rule) -> Vec<Finding> {
        let (findings, _) = audit_source(rel, crate_name, false, src);
        findings.into_iter().filter(|f| f.rule == r).collect()
    }

    #[test]
    fn r6_guard_across_spawn_is_flagged() {
        let src = "fn f(s: &S) {\n    let guard = s.state.lock().unwrap_or_else(x);\n    std::thread::spawn(|| work());\n    drop(guard);\n}\n";
        let f = rule("crates/secmem/src/worker.rs", "secmem", src, Rule::R6);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("held across `spawn`"));
    }

    #[test]
    fn r6_guard_dropped_before_spawn_is_clean() {
        let src = "fn f(s: &S) {\n    let guard = s.state.lock().unwrap_or_else(x);\n    drop(guard);\n    std::thread::spawn(|| work());\n}\n";
        assert!(rule("crates/secmem/src/worker.rs", "secmem", src, Rule::R6).is_empty());
    }

    #[test]
    fn r6_nested_acquisition_is_flagged() {
        let src = "fn f(s: &S) {\n    let a = s.left.lock().unwrap_or_else(x);\n    let b = s.right.lock().unwrap_or_else(x);\n    use_both(&a, &b);\n}\n";
        let f = rule("crates/secmem/src/worker.rs", "secmem", src, Rule::R6);
        assert!(
            f.iter()
                .any(|x| x.message.contains("nested lock acquisition")),
            "{f:?}"
        );
    }

    #[test]
    fn r6_value_extracted_from_temporary_guard_is_clean() {
        let src = "fn f(s: &S) -> u64 {\n    let v = s.state.lock().unwrap_or_else(x).value;\n    std::thread::spawn(|| work());\n    v\n}\n";
        assert!(rule("crates/secmem/src/worker.rs", "secmem", src, Rule::R6).is_empty());
    }

    #[test]
    fn r6_cow_seam_allows_arc_swap_only() {
        let ok = "fn set(s: &S) {\n    let mut guard = s.snapshot.write().unwrap_or_else(x);\n    *guard = Arc::new(next);\n}\n";
        assert!(rule("crates/secmem/src/service.rs", "secmem", ok, Rule::R6).is_empty());
        let bad = "fn set(s: &S) {\n    let mut guard = s.snapshot.write().unwrap_or_else(x);\n    guard.version = 3;\n}\n";
        let f = rule("crates/secmem/src/service.rs", "secmem", bad, Rule::R6);
        assert!(
            f.iter().any(|x| x.message.contains("field mutation")),
            "{f:?}"
        );
    }

    #[test]
    fn r7_bans_wall_clock_and_hash_maps_outside_policy() {
        let src = "use std::time::Instant;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let f = rule("crates/core/src/x.rs", "core", src, Rule::R7);
        assert_eq!(f.len(), 2, "one per (line, construct): {f:?}");
        // Policy: the profiler file is the sanctioned boundary.
        assert!(rule(
            "crates/telemetry/src/profile.rs",
            "telemetry",
            "use std::time::Instant;\n",
            Rule::R7
        )
        .is_empty());
    }
}
