//! A lightweight item/expression model over the lexical token stream.
//!
//! The dataflow rules (R5–R7) need more structure than per-line pattern
//! matching: function boundaries, parameter lists, and the statement shapes
//! that move values between bindings. This module recovers exactly that —
//! and nothing more — from [`crate::lexer`]'s tokens. It is still not a
//! parser: generics, closures, and macro bodies are skated over with
//! delimiter balancing, and every consumer is written to degrade to
//! *over*-approximation (more taint, never less) when the model is too
//! coarse.

use crate::lexer::{Tok, TokKind};

/// Rust keywords and primitive-type names that can never be value bindings.
/// Used to filter pattern binders and expression identifiers.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield", "union", "u8", "u16", "u32", "u64", "u128",
    "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32", "f64", "bool", "char", "str",
];

/// One declared function parameter (receiver `self` excluded).
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name.
    pub name: String,
    /// The parameter's type as whitespace-joined token text (`& [ u8 ]`).
    pub ty: String,
}

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared parameters, in order, without any `self` receiver.
    pub params: Vec<Param>,
    /// Token-index range of the body block, inclusive of both braces
    /// (`tokens[body.0]` is `{`, `tokens[body.1]` is `}`). `None` for
    /// body-less trait method declarations.
    pub body: Option<(usize, usize)>,
}

/// Extracts every `fn` item (free functions, methods, and functions nested
/// in other bodies) from the token stream.
pub fn functions(tokens: &[Tok]) -> Vec<FnModel> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Skip a generic parameter list between the name and the `(`.
        let mut j = i + 2;
        if matches!(tokens.get(j), Some(t) if t.is_punct("<")) {
            let mut depth = 0i32;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" | "<<" if tokens[j].kind == TokKind::Punct => {
                        depth += if tokens[j].text == "<<" { 2 } else { 1 };
                    }
                    ">" | ">>" if tokens[j].kind == TokKind::Punct => {
                        depth -= if tokens[j].text == ">>" { 2 } else { 1 };
                        if depth <= 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !matches!(tokens.get(j), Some(t) if t.is_punct("(")) {
            i += 2;
            continue;
        }
        let Some(params_close) = matching_fwd(tokens, j, "(", ")") else {
            break;
        };
        let params = parse_params(tokens, j, params_close);
        // The body `{` follows the return type / where clause; a `;` first
        // means this is a declaration without a body.
        let mut k = params_close + 1;
        let mut body = None;
        while k < tokens.len() {
            if tokens[k].is_punct(";") {
                break;
            }
            if tokens[k].is_punct("{") {
                let close = matching_fwd(tokens, k, "{", "}").unwrap_or(tokens.len() - 1);
                body = Some((k, close));
                break;
            }
            k += 1;
        }
        out.push(FnModel {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            params,
            body,
        });
        i = j;
    }
    out
}

/// Parses the parameter list between `(` at `open` and `)` at `close`.
fn parse_params(tokens: &[Tok], open: usize, close: usize) -> Vec<Param> {
    let mut params = Vec::new();
    for (a, b) in split_args(tokens, open, close) {
        let toks = &tokens[a..b];
        // Skip receivers (`self`, `&self`, `&mut self`, `mut self`).
        if toks
            .iter()
            .find(|t| t.kind == TokKind::Ident)
            .is_some_and(|t| t.text == "self")
        {
            continue;
        }
        // `name: Type` with an optional leading `mut`; tuple/struct
        // patterns in parameter position are skipped (never seen on the
        // audited paths).
        let mut it = toks.iter().enumerate();
        let name = loop {
            let Some((idx, t)) = it.next() else {
                break None;
            };
            if t.kind == TokKind::Ident && t.text != "mut" {
                if matches!(toks.get(idx + 1), Some(c) if c.is_punct(":")) {
                    break Some(t.text.clone());
                }
                break None;
            }
            if t.kind != TokKind::Ident {
                break None;
            }
        };
        let Some(name) = name else { continue };
        let colon = toks.iter().position(|t| t.is_punct(":")).unwrap_or(0);
        let ty = toks[colon + 1..]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        params.push(Param { name, ty });
    }
    params
}

/// Splits the token range between delimiters at `open`/`close` on commas at
/// nesting depth 1, returning half-open `(start, end)` token ranges.
pub fn split_args(tokens: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for (j, t) in tokens.iter().enumerate().take(close).skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 1 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// Index of the delimiter matching `tokens[open]` scanning forward.
pub fn matching_fwd(tokens: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_s) {
            depth += 1;
        } else if t.is_punct(close_s) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `[`/`(`/`{` matching the closer at `close`, scanning
/// backward.
pub fn matching_back(tokens: &[Tok], close: usize, open_s: &str, close_s: &str) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = close;
    loop {
        if tokens[j].is_punct(close_s) {
            depth += 1;
        } else if tokens[j].is_punct(open_s) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Token index of the `}` closing the innermost brace block containing
/// `idx`, or the last token if unbalanced. `lo` bounds the backward search
/// (typically the enclosing function's body open).
pub fn enclosing_block_end(tokens: &[Tok], idx: usize, lo: usize) -> usize {
    // Walk backward to the nearest unmatched `{`, then forward to its close.
    let mut depth = 0i32;
    let mut j = idx;
    let open = loop {
        if tokens[j].is_punct("}") {
            depth += 1;
        } else if tokens[j].is_punct("{") {
            if depth == 0 {
                break Some(j);
            }
            depth -= 1;
        }
        if j == lo {
            break None;
        }
        match j.checked_sub(1) {
            Some(p) => j = p,
            None => break None,
        }
    };
    match open {
        Some(o) => matching_fwd(tokens, o, "{", "}").unwrap_or(tokens.len() - 1),
        None => tokens.len() - 1,
    }
}

/// Collects the value-binding identifiers of a pattern token range.
///
/// Heuristics: lowercase-initial identifiers that are not keywords bind
/// values; uppercase-initial identifiers are enum variants, types, or
/// constants; an identifier immediately followed by a single `:` is a
/// struct-pattern field name, not a binder. Over-collecting (e.g. a guard
/// clause's identifiers) only ever *adds* taint, which is the safe
/// direction.
pub fn pattern_binders(tokens: &[Tok], range: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    for j in range.0..range.1 {
        let t = &tokens[j];
        if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) || t.text == "_" {
            continue;
        }
        if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue;
        }
        if matches!(tokens.get(j + 1), Some(c) if c.is_punct(":")) {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn extracts_functions_params_and_bodies() {
        let s = scan(
            "fn add(a: u64, mut b: u64) -> u64 { a + b }\n\
             impl X { fn m(&self, key: &[u8]) -> u8 { 0 } }\n\
             fn decl(x: u8);\n",
        );
        let fns = functions(&s.tokens);
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "add");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[1].name, "b");
        assert_eq!(fns[1].name, "m");
        assert_eq!(fns[1].params.len(), 1, "self receiver excluded");
        assert_eq!(fns[1].params[0].ty, "& [ u8 ]");
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn generic_functions_are_modelled() {
        let s = scan("fn g<T: Into<Vec<u8>>>(v: T) -> usize { 1 }");
        let fns = functions(&s.tokens);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].params[0].name, "v");
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn binders_skip_variants_fields_and_keywords() {
        let s = scan("Some(PadSlot { addr: a, mac }) if ready");
        let b = pattern_binders(&s.tokens, (0, s.tokens.len()));
        assert_eq!(b, vec!["a", "mac", "ready"]);
    }

    #[test]
    fn enclosing_block_end_finds_innermost_close() {
        let s = scan("fn f() { { let x = 1; } let y = 2; }");
        let x = s.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let end = enclosing_block_end(&s.tokens, x, 0);
        // `}` right after `;` of the inner block.
        assert!(s.tokens[end].is_punct("}"));
        let y = s.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(end < y);
    }
}
