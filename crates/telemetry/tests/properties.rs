//! Property tests over the telemetry layer itself: whatever updates a run
//! applies, the exported JSONL must parse back to exactly the recorded
//! values, with a stable schema.

use proptest::prelude::*;
use rmcc_telemetry::{parse_jsonl, to_jsonl, EpochSeries, JsonValue, MetricsRegistry};
use rmcc_telemetry::{NullSink, SnapshotSink};

proptest! {
    /// JSONL round-trips: every counter/gauge value and the key order
    /// survive emit → parse, for arbitrary update sequences.
    #[test]
    fn jsonl_round_trips_arbitrary_updates(
        incrs in prop::collection::vec((0usize..4, 0u64..(1 << 50)), 1..40),
        gauge_milli in prop::collection::vec(0u64..2_000, 1..8),
    ) {
        let mut reg = MetricsRegistry::new();
        let names = ["hits", "misses", "aes_saved", "budget_total"];
        let cids: Vec<_> = names.iter().map(|n| reg.counter(n)).collect();
        let g = reg.gauge("conformance");
        let mut series = EpochSeries::new();

        let mut expect: Vec<Vec<u64>> = Vec::new();
        let mut shadow = [0u64; 4];
        let epochs = gauge_milli.len();
        for (epoch, gm) in gauge_milli.iter().enumerate() {
            for (which, by) in incrs.iter().skip(epoch % 2) {
                reg.incr(cids[*which], *by);
                shadow[*which] = shadow[*which].saturating_add(*by);
            }
            reg.set_gauge(g, *gm as f64 / 1000.0);
            series.record(reg.snapshot(epoch as u64, 500));
            expect.push(shadow.to_vec());
        }

        let docs = parse_jsonl(&to_jsonl(&reg, &series)).expect("emitted JSONL parses");
        prop_assert_eq!(docs.len(), epochs);
        for (epoch, doc) in docs.iter().enumerate() {
            prop_assert_eq!(
                doc.keys().expect("object"),
                vec!["epoch", "accesses", "hits", "misses", "aes_saved",
                     "budget_total", "conformance"]
            );
            prop_assert_eq!(
                doc.get("epoch").and_then(JsonValue::as_f64),
                Some(epoch as f64)
            );
            for (i, name) in names.iter().enumerate() {
                // Counter values stay below 2^53 here, so f64 is exact.
                prop_assert_eq!(
                    doc.get(name).and_then(JsonValue::as_f64),
                    Some(expect[epoch][i] as f64),
                    "epoch {} metric {}", epoch, name
                );
            }
            prop_assert_eq!(
                doc.get("conformance").and_then(JsonValue::as_f64),
                Some(gauge_milli[epoch] as f64 / 1000.0)
            );
        }
    }

    /// Re-applying the same updates yields byte-identical JSONL, and the
    /// NullSink path leaves no trace (the determinism contract's two sides).
    #[test]
    fn same_updates_emit_identical_bytes(
        ops in prop::collection::vec((0u64..1000, 0u64..100), 1..30),
    ) {
        let run = || {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("events");
            let h = reg.histogram("depth", &[0, 1, 2, 4, 8]);
            let mut series = EpochSeries::new();
            let mut null = NullSink;
            for (epoch, (v, d)) in ops.iter().enumerate() {
                reg.incr(c, *v);
                reg.observe(h, *d);
                let snap = reg.snapshot(epoch as u64, *v);
                null.record(snap.clone()); // must be inert
                series.record(snap);
            }
            to_jsonl(&reg, &series)
        };
        let first = run();
        prop_assert_eq!(first, run());
    }
}
