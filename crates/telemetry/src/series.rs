//! Epoch snapshots, the append-only series, and snapshot sinks.

/// One epoch's worth of metric values, copied out of the registry at the
/// epoch boundary. Counters are cumulative (not per-epoch deltas); gauges
/// are point samples; histogram counts are cumulative per bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Memory accesses spanned by this epoch (the final epoch of a run may
    /// be partial).
    pub accesses: u64,
    /// Counter values, parallel to `MetricsRegistry::counter_names`.
    pub counters: Vec<u64>,
    /// Gauge values, parallel to `MetricsRegistry::gauge_names`.
    pub gauges: Vec<f64>,
    /// Histogram bucket counts (incl. overflow), parallel to
    /// `MetricsRegistry::hist_names`.
    pub hist_counts: Vec<Vec<u64>>,
}

/// Anything that accepts epoch snapshots.
///
/// The engines push snapshots through this trait so tests can capture them
/// ([`EpochSeries`]) and disabled paths can drop them ([`NullSink`]).
pub trait SnapshotSink {
    /// Accepts one snapshot.
    fn record(&mut self, snapshot: EpochSnapshot);
}

/// A sink that discards every snapshot — the telemetry-off path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl SnapshotSink for NullSink {
    #[inline]
    fn record(&mut self, _snapshot: EpochSnapshot) {}
}

/// An append-only, in-order record of epoch snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochSeries {
    snapshots: Vec<EpochSnapshot>,
}

impl EpochSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a snapshot (alias for the [`SnapshotSink`] impl).
    pub fn push(&mut self, snapshot: EpochSnapshot) {
        self.snapshots.push(snapshot);
    }

    /// All recorded snapshots in append order.
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        &self.snapshots
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no epoch has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The most recent snapshot, if any.
    pub fn last(&self) -> Option<&EpochSnapshot> {
        self.snapshots.last()
    }
}

impl SnapshotSink for EpochSeries {
    fn record(&mut self, snapshot: EpochSnapshot) {
        self.push(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64) -> EpochSnapshot {
        EpochSnapshot {
            epoch,
            accesses: 10,
            counters: vec![epoch],
            gauges: vec![],
            hist_counts: vec![],
        }
    }

    #[test]
    fn series_appends_in_order() {
        let mut s = EpochSeries::new();
        assert!(s.is_empty());
        for e in 0..4 {
            s.record(snap(e));
        }
        assert_eq!(s.len(), 4);
        let epochs: Vec<u64> = s.snapshots().iter().map(|x| x.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2, 3]);
        assert_eq!(s.last().map(|x| x.epoch), Some(3));
    }

    #[test]
    fn null_sink_discards() {
        let mut n = NullSink;
        n.record(snap(0)); // no observable effect, must simply not panic
        assert_eq!(n, NullSink);
    }
}
