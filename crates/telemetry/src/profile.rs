//! Wall-clock phase profiling for the experiment harness.
//!
//! **Not covered by the determinism contract**: these timers read the host
//! clock, so their values vary run to run. They exist for the harness's
//! human-facing progress report (`--profile` style output) and must never
//! feed the JSONL/CSV series that tests compare byte-for-byte. Keeping them
//! in a separate module makes that boundary auditable.

use std::time::{Duration, Instant};

/// One named, finished phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase label (e.g. `"simulate"`, `"write"`).
    pub name: String,
    /// Wall-clock time the phase took.
    pub wall: Duration,
}

/// Accumulates named wall-clock phases; at most one phase runs at a time.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<Phase>,
    current: Option<(String, Instant)>,
}

impl PhaseProfiler {
    /// A profiler with no phases recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts phase `name`, finishing any phase already running.
    pub fn start(&mut self, name: &str) {
        self.finish();
        self.current = Some((name.to_string(), Instant::now()));
    }

    /// Finishes the running phase, if any.
    pub fn finish(&mut self) {
        if let Some((name, started)) = self.current.take() {
            self.phases.push(Phase {
                name,
                wall: started.elapsed(),
            });
        }
    }

    /// Finished phases in start order (the running phase is excluded until
    /// [`Self::finish`] or the next [`Self::start`]).
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total wall time across finished phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// A human-readable multi-line report, one `name: seconds` line per
    /// phase plus a total.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.phases {
            let _ = writeln!(out, "{:>12}: {:.3}s", p.name, p.wall.as_secs_f64());
        }
        let _ = writeln!(out, "{:>12}: {:.3}s", "total", self.total().as_secs_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_record_in_order_and_total_sums() {
        let mut p = PhaseProfiler::new();
        p.start("a");
        p.start("b"); // implicitly finishes "a"
        p.finish();
        p.finish(); // idempotent
        let names: Vec<&str> = p.phases().iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(p.total() >= p.phases()[0].wall);
        let report = p.report();
        assert!(report.contains("a:"));
        assert!(report.contains("total:"));
    }
}
