//! JSONL / CSV rendering of an epoch series, plus a strict parser for the
//! emitted JSONL dialect so tests and tools can validate output offline.
//!
//! Rendering is deterministic: key order is `epoch`, `accesses`, then the
//! registry's counters, gauges, and histograms in registration order.
//! Floats use Rust's shortest round-trip formatting; non-finite gauge values
//! (which well-behaved engines never produce) render as `null`.

use crate::registry::MetricsRegistry;
use crate::series::EpochSeries;
use std::fmt::Write as _;

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // Bare integers like `1` are valid JSON numbers; keep them as-is.
    } else {
        out.push_str("null");
    }
}

/// Renders the series as JSON Lines: one object per epoch, keys in
/// registration order, no whitespace. Ends with a trailing newline when the
/// series is non-empty.
pub fn to_jsonl(registry: &MetricsRegistry, series: &EpochSeries) -> String {
    let mut out = String::new();
    for snap in series.snapshots() {
        let _ = write!(
            out,
            "{{\"epoch\":{},\"accesses\":{}",
            snap.epoch, snap.accesses
        );
        for (name, value) in registry.counter_names().iter().zip(&snap.counters) {
            out.push(',');
            push_json_str(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        for (name, value) in registry.gauge_names().iter().zip(&snap.gauges) {
            out.push(',');
            push_json_str(&mut out, name);
            out.push(':');
            push_f64(&mut out, *value);
        }
        for ((name, hist), counts) in registry
            .hist_names()
            .iter()
            .zip(registry.hists())
            .zip(&snap.hist_counts)
        {
            out.push(',');
            push_json_str(&mut out, name);
            out.push_str(":{\"le\":[");
            for (i, b) in hist.bounds().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("],\"counts\":[");
            for (i, c) in counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("}\n");
    }
    out
}

/// Renders the series as CSV: a header row then one row per epoch.
/// Histograms flatten to one `name_le<bound>` column per bucket plus a
/// `name_inf` overflow column.
pub fn to_csv(registry: &MetricsRegistry, series: &EpochSeries) -> String {
    let mut out = String::from("epoch,accesses");
    for name in registry.counter_names() {
        let _ = write!(out, ",{name}");
    }
    for name in registry.gauge_names() {
        let _ = write!(out, ",{name}");
    }
    for (name, hist) in registry.hist_names().iter().zip(registry.hists()) {
        for b in hist.bounds() {
            let _ = write!(out, ",{name}_le{b}");
        }
        let _ = write!(out, ",{name}_inf");
    }
    out.push('\n');
    for snap in series.snapshots() {
        let _ = write!(out, "{},{}", snap.epoch, snap.accesses);
        for value in &snap.counters {
            let _ = write!(out, ",{value}");
        }
        for value in &snap.gauges {
            out.push(',');
            if value.is_finite() {
                let _ = write!(out, "{value}");
            }
            // Non-finite → empty cell, mirroring JSON's null.
        }
        for counts in &snap.hist_counts {
            for c in counts {
                let _ = write!(out, ",{c}");
            }
        }
        out.push('\n');
    }
    out
}

/// A parsed JSON value. Numbers are `f64` — exact for every value this
/// crate emits below 2^53, which covers validation and report rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order preserved as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key when this value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's keys in written order, if this is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            JsonValue::Obj(fields) => Some(fields.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.to_string(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        match hex.and_then(char::from_u32) {
                            Some(c) => {
                                self.pos += 4;
                                s.push(c);
                            }
                            None => return self.err("bad \\u escape"),
                        }
                    }
                    _ => return self.err("bad escape"),
                },
                Some(b) if b < 0x20 => return self.err("raw control char in string"),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 starting at the byte we consumed.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return self.err("invalid UTF-8"),
                        };
                        match self
                            .bytes
                            .get(start..start + width)
                            .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        {
                            Some(chunk) => {
                                s.push_str(chunk);
                                self.pos = start + width;
                            }
                            None => return self.err("invalid UTF-8"),
                        }
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
            _ => {
                self.pos = start;
                self.err("invalid number")
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(JsonValue::Obj(fields)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return self.err("expected `,` or `}`");
                        }
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Arr(items)),
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return self.err("expected `,` or `]`");
                        }
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
        }
    }
}

/// Parses one JSON document (e.g. one JSONL line). Trailing whitespace is
/// allowed; trailing garbage is an error.
pub fn parse_json_line(line: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

/// Parses a whole JSONL document into one value per non-empty line.
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonValue>, JsonError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_json_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::series::SnapshotSink;

    fn sample() -> (MetricsRegistry, EpochSeries) {
        let mut reg = MetricsRegistry::new();
        let hits = reg.counter("hits");
        let conf = reg.gauge("conformance");
        let depth = reg.histogram("depth", &[1, 2]);
        let mut series = EpochSeries::new();
        reg.incr(hits, 12);
        reg.set_gauge(conf, 0.75);
        reg.observe(depth, 2);
        reg.observe(depth, 9);
        series.record(reg.snapshot(0, 1000));
        reg.incr(hits, 3);
        series.record(reg.snapshot(1, 1000));
        (reg, series)
    }

    #[test]
    fn jsonl_is_exactly_pinned() {
        let (reg, series) = sample();
        let jsonl = to_jsonl(&reg, &series);
        let expected = "{\"epoch\":0,\"accesses\":1000,\"hits\":12,\"conformance\":0.75,\
                        \"depth\":{\"le\":[1,2],\"counts\":[0,1,1]}}\n\
                        {\"epoch\":1,\"accesses\":1000,\"hits\":15,\"conformance\":0.75,\
                        \"depth\":{\"le\":[1,2],\"counts\":[0,1,1]}}\n";
        assert_eq!(jsonl, expected);
    }

    #[test]
    fn csv_flattens_histograms() {
        let (reg, series) = sample();
        let csv = to_csv(&reg, &series);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("epoch,accesses,hits,conformance,depth_le1,depth_le2,depth_inf")
        );
        assert_eq!(lines.next(), Some("0,1000,12,0.75,0,1,1"));
        assert_eq!(lines.next(), Some("1,1000,15,0.75,0,1,1"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn emitted_jsonl_round_trips_through_the_parser() {
        let (reg, series) = sample();
        let docs = parse_jsonl(&to_jsonl(&reg, &series)).expect("parses");
        assert_eq!(docs.len(), 2);
        let first = &docs[0];
        assert_eq!(first.get("epoch").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(first.get("hits").and_then(JsonValue::as_f64), Some(12.0));
        assert_eq!(
            first.get("conformance").and_then(JsonValue::as_f64),
            Some(0.75)
        );
        let keys = first.keys().expect("object");
        assert_eq!(
            keys,
            vec!["epoch", "accesses", "hits", "conformance", "depth"]
        );
        let depth = first.get("depth").expect("hist");
        assert_eq!(
            depth.get("counts"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(0.0),
                JsonValue::Num(1.0),
                JsonValue::Num(1.0)
            ]))
        );
    }

    #[test]
    fn parser_accepts_standard_json_shapes() {
        let v =
            parse_json_line(r#"{"a":[1,-2.5,true,false,null,"s\"x\n"],"b":{}}"#).expect("parses");
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-2.5),
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null,
                JsonValue::Str("s\"x\n".to_string()),
            ]))
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json_line("{\"a\":}").is_err());
        assert!(parse_json_line("{\"a\":1} extra").is_err());
        assert!(parse_json_line("[1,]").is_err());
        assert!(parse_json_line("nul").is_err());
        assert!(parse_json_line("").is_err());
    }

    #[test]
    fn non_finite_gauges_render_as_null_and_empty_cell() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        reg.set_gauge(g, f64::NAN);
        let mut series = EpochSeries::new();
        series.record(reg.snapshot(0, 1));
        assert_eq!(
            to_jsonl(&reg, &series),
            "{\"epoch\":0,\"accesses\":1,\"g\":null}\n"
        );
        assert_eq!(to_csv(&reg, &series), "epoch,accesses,g\n0,1,\n");
    }
}
