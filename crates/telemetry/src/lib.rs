//! Deterministic, epoch-resolved telemetry for the RMCC stack.
//!
//! The paper's central claim is *self-reinforcing* convergence: over epochs,
//! nearly all live counters conform to the ~128 memoized values, paced by the
//! 1%-per-epoch update budget with carry-over (§IV-B/§IV-C). End-of-run
//! aggregates cannot show that trajectory, so this crate provides the
//! time-series layer the simulator and the test suite share:
//!
//! * [`registry`] — typed counters, gauges, and fixed-bucket histograms
//!   registered once in a [`MetricsRegistry`]; registration order defines
//!   the (stable) export column order.
//! * [`series`] — per-epoch [`EpochSnapshot`]s appended to an
//!   [`EpochSeries`]; the [`SnapshotSink`] trait plus [`NullSink`] let hot
//!   paths route snapshots anywhere, including nowhere, without generics in
//!   the engines.
//! * [`export`] — JSONL and CSV renderers and a strict parser for the JSONL
//!   dialect this crate emits, so tests and tools can validate output
//!   without external dependencies.
//! * [`profile`] — wall-clock phase timers for the experiment harness.
//!   **Excluded from the determinism contract** (see below).
//!
//! # Determinism contract
//!
//! Everything except [`profile`] is a pure function of the metric updates
//! applied to it: no clocks, no host randomness, no iteration over unordered
//! maps. Two runs that apply the same updates in the same order produce
//! byte-identical JSONL/CSV — across reruns and across serial vs. parallel
//! experiment harnesses. Tests treat telemetry as a correctness oracle, so
//! any nondeterminism here is a bug, not noise.
//!
//! # One branch when off
//!
//! Engines hold a [`Telemetry`] handle. When telemetry is disabled it is the
//! [`Telemetry::Off`] variant and every hot-path update is a single
//! discriminant test; no registry, series, or string data is allocated.
//!
//! ```
//! use rmcc_telemetry::{MetricsRegistry, Telemetry};
//!
//! let mut reg = MetricsRegistry::new();
//! let hits = reg.counter("table_hits");
//! let conf = reg.gauge("conformance");
//! let mut tele = Telemetry::on(reg);
//!
//! if let Some(active) = tele.active_mut() {
//!     active.registry.incr(hits, 3);
//!     active.registry.set_gauge(conf, 0.5);
//!     active.snapshot(0, 1_000); // epoch 0 spanned 1 000 accesses
//! }
//! let jsonl = tele.to_jsonl().unwrap();
//! assert!(jsonl.starts_with("{\"epoch\":0,\"accesses\":1000,\"table_hits\":3"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod profile;
pub mod registry;
pub mod series;

pub use export::{parse_json_line, parse_jsonl, to_csv, to_jsonl, JsonError, JsonValue};
pub use profile::PhaseProfiler;
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use series::{EpochSeries, EpochSnapshot, NullSink, SnapshotSink};

/// A telemetry handle an engine can embed: either fully off (one branch on
/// the hot path, nothing allocated) or an [`Active`] registry + series pair.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Telemetry {
    /// Telemetry disabled; all operations are no-ops.
    #[default]
    Off,
    /// Telemetry enabled; boxed so the off variant stays pointer-sized.
    On(Box<Active>),
}

/// The live state behind [`Telemetry::On`]: the registry holding current
/// metric values and the epoch series they are snapshotted into.
#[derive(Debug, Clone, PartialEq)]
pub struct Active {
    /// Current metric values; mutated on the hot path.
    pub registry: MetricsRegistry,
    /// Append-only record of per-epoch snapshots.
    pub series: EpochSeries,
}

impl Active {
    /// Snapshots the registry's current values as epoch `epoch`, which
    /// spanned `accesses` memory accesses, and appends it to the series.
    pub fn snapshot(&mut self, epoch: u64, accesses: u64) {
        self.series.record(self.registry.snapshot(epoch, accesses));
    }

    /// The values a counter took across all recorded epochs, by name.
    pub fn counter_column(&self, name: &str) -> Option<Vec<u64>> {
        let idx = self.registry.counter_index(name)?;
        Some(
            self.series
                .snapshots()
                .iter()
                .filter_map(|s| s.counters.get(idx).copied())
                .collect(),
        )
    }

    /// The values a gauge took across all recorded epochs, by name.
    pub fn gauge_column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.registry.gauge_index(name)?;
        Some(
            self.series
                .snapshots()
                .iter()
                .filter_map(|s| s.gauges.get(idx).copied())
                .collect(),
        )
    }
}

impl Telemetry {
    /// An enabled handle wrapping `registry` with an empty series.
    pub fn on(registry: MetricsRegistry) -> Self {
        Telemetry::On(Box::new(Active {
            registry,
            series: EpochSeries::new(),
        }))
    }

    /// A disabled handle (same as `Telemetry::default()`).
    pub fn off() -> Self {
        Telemetry::Off
    }

    /// Whether telemetry is collecting.
    pub fn is_on(&self) -> bool {
        matches!(self, Telemetry::On(_))
    }

    /// Mutable access to the live state, `None` when off. This is the one
    /// branch hot paths pay: `if let Some(a) = tele.active_mut() { … }`.
    #[inline]
    pub fn active_mut(&mut self) -> Option<&mut Active> {
        match self {
            Telemetry::Off => None,
            Telemetry::On(a) => Some(a),
        }
    }

    /// Shared access to the live state, `None` when off.
    #[inline]
    pub fn active(&self) -> Option<&Active> {
        match self {
            Telemetry::Off => None,
            Telemetry::On(a) => Some(a),
        }
    }

    /// Renders the recorded series as JSONL, `None` when off.
    pub fn to_jsonl(&self) -> Option<String> {
        self.active().map(|a| to_jsonl(&a.registry, &a.series))
    }

    /// Renders the recorded series as CSV, `None` when off.
    pub fn to_csv(&self) -> Option<String> {
        self.active().map(|a| to_csv(&a.registry, &a.series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let mut t = Telemetry::off();
        assert!(!t.is_on());
        assert!(t.active_mut().is_none());
        assert!(t.to_jsonl().is_none());
        assert!(t.to_csv().is_none());
    }

    #[test]
    fn columns_track_snapshots() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let mut t = Telemetry::on(reg);
        for epoch in 0..3u64 {
            let a = t.active_mut().expect("on");
            a.registry.incr(c, 10);
            a.registry.set_gauge(g, epoch as f64 / 2.0);
            a.snapshot(epoch, 100);
        }
        let a = t.active().expect("on");
        assert_eq!(a.counter_column("c").as_deref(), Some(&[10, 20, 30][..]));
        assert_eq!(a.gauge_column("g").as_deref(), Some(&[0.0, 0.5, 1.0][..]));
        assert!(a.counter_column("missing").is_none());
    }
}
