//! The metric registry: typed handles, deterministic column order.
//!
//! Metrics are registered once at engine construction; registration order is
//! the export column order, so two engines built the same way emit the same
//! schema. Handles are plain indices (`Copy`, no lifetimes) so engines can
//! store them in a plain struct and update metrics from the hot path without
//! string lookups.

/// Handle to a monotonically written `u64` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to an `f64` gauge (last-write-wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds in
/// ascending order, plus one implicit overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending.
    bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    counts: Vec<u64>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len().saturating_add(1)],
        }
    }

    /// Records one observation of `value`.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(idx) {
            *c = c.saturating_add(1);
        }
    }

    /// The inclusive upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }
}

/// The set of metrics an engine exposes, with their current values.
///
/// All mutation is through typed handles returned at registration, so the
/// hot path never hashes a name. [`MetricsRegistry::snapshot`] copies the
/// current values into an [`crate::EpochSnapshot`] without resetting them:
/// counters are cumulative across epochs, gauges are sampled.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter named `name`, starting at zero.
    pub fn counter(&mut self, name: &str) -> CounterId {
        debug_assert!(
            !self.counter_names.iter().any(|n| n == name),
            "duplicate counter {name}"
        );
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers one counter per shard, named `shard{i}_{name}` in shard
    /// order, and returns the handles in that same order. This is how a
    /// sharded engine folds per-shard series into *one* registry while
    /// keeping the export schema deterministic: shard order is registration
    /// order is column order, independent of how shards were scheduled.
    pub fn shard_counters(&mut self, name: &str, shards: usize) -> Vec<CounterId> {
        (0..shards)
            .map(|i| self.counter(&format!("shard{i}_{name}")))
            .collect()
    }

    /// Registers a gauge named `name`, starting at zero.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        debug_assert!(
            !self.gauge_names.iter().any(|n| n == name),
            "duplicate gauge {name}"
        );
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram named `name` with inclusive upper `bounds`
    /// (ascending) plus an implicit overflow bucket.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        debug_assert!(
            !self.hist_names.iter().any(|n| n == name),
            "duplicate histogram {name}"
        );
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::new(bounds));
        HistogramId(self.hists.len() - 1)
    }

    /// Adds `by` to a counter (saturating; counters never wrap).
    #[inline]
    pub fn incr(&mut self, id: CounterId, by: u64) {
        if let Some(c) = self.counters.get_mut(id.0) {
            *c = c.saturating_add(by);
        }
    }

    /// Sets a counter to an absolute value (for mirroring an engine-side
    /// cumulative count, e.g. the OSM register).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        if let Some(c) = self.counters.get_mut(id.0) {
            *c = value;
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        if let Some(g) = self.gauges.get_mut(id.0) {
            *g = value;
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        if let Some(h) = self.hists.get_mut(id.0) {
            h.observe(value);
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters.get(id.0).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges.get(id.0).copied().unwrap_or(0.0)
    }

    /// Registered counter names, in registration (= export) order.
    pub fn counter_names(&self) -> &[String] {
        &self.counter_names
    }

    /// Registered gauge names, in registration (= export) order.
    pub fn gauge_names(&self) -> &[String] {
        &self.gauge_names
    }

    /// Registered histogram names, in registration (= export) order.
    pub fn hist_names(&self) -> &[String] {
        &self.hist_names
    }

    /// The registered histograms, parallel to [`Self::hist_names`].
    pub fn hists(&self) -> &[Histogram] {
        &self.hists
    }

    /// Index of a counter by name, if registered.
    pub fn counter_index(&self, name: &str) -> Option<usize> {
        self.counter_names.iter().position(|n| n == name)
    }

    /// Index of a gauge by name, if registered.
    pub fn gauge_index(&self, name: &str) -> Option<usize> {
        self.gauge_names.iter().position(|n| n == name)
    }

    /// Copies current values into a snapshot for epoch `epoch` spanning
    /// `accesses` memory accesses. Values are not reset: counters read as
    /// cumulative series, deltas are the consumer's derivative.
    pub fn snapshot(&self, epoch: u64, accesses: u64) -> crate::EpochSnapshot {
        crate::EpochSnapshot {
            epoch,
            accesses,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hist_counts: self.hists.iter().map(|h| h.counts.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        r.incr(c, 5);
        r.incr(c, u64::MAX);
        assert_eq!(r.counter_value(c), u64::MAX);
        r.set_counter(c, 7);
        assert_eq!(r.counter_value(c), 7);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn snapshot_copies_without_reset() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("hits");
        let g = r.gauge("ratio");
        let h = r.histogram("depth", &[1, 2]);
        r.incr(c, 3);
        r.set_gauge(g, 0.25);
        r.observe(h, 2);
        let s = r.snapshot(4, 999);
        assert_eq!(s.epoch, 4);
        assert_eq!(s.accesses, 999);
        assert_eq!(s.counters, vec![3]);
        assert_eq!(s.gauges, vec![0.25]);
        assert_eq!(s.hist_counts, vec![vec![0, 1, 0]]);
        // Not reset by snapshotting.
        assert_eq!(r.counter_value(c), 3);
    }

    #[test]
    fn name_lookup_matches_registration_order() {
        let mut r = MetricsRegistry::new();
        r.counter("a");
        r.counter("b");
        r.gauge("x");
        assert_eq!(r.counter_index("b"), Some(1));
        assert_eq!(r.gauge_index("x"), Some(0));
        assert_eq!(r.counter_index("x"), None);
        assert_eq!(r.counter_names(), &["a".to_string(), "b".to_string()]);
    }
}
