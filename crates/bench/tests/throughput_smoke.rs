//! Smoke test for the wall-clock throughput harness: the emitted
//! `BENCH_hotpath.json` must parse, carry the documented schema, and keep
//! its deterministic section byte-identical across worker-pool widths.

use rmcc_bench::throughput::{self, ThroughputConfig};
use rmcc_telemetry::export::{parse_json_line, JsonValue};
use rmcc_workloads::workload::Scale;

fn run_tiny(jobs: usize) -> throughput::ThroughputReport {
    throughput::run(Scale::Tiny, jobs)
}

#[test]
fn report_json_matches_schema() {
    let report = run_tiny(2);
    let parsed = parse_json_line(&report.to_json()).expect("BENCH_hotpath.json must parse");

    assert_eq!(
        parsed.get("schema").and_then(JsonValue::as_str),
        Some("rmcc-bench-hotpath-v2")
    );
    assert_eq!(
        parsed.get("scale").and_then(JsonValue::as_str),
        Some("tiny")
    );
    assert_eq!(parsed.get("jobs").and_then(JsonValue::as_f64), Some(2.0));

    let det = parsed.get("deterministic").expect("deterministic section");
    let cfg = ThroughputConfig::from_scale(Scale::Tiny);
    assert_eq!(
        det.get("aes_blocks").and_then(JsonValue::as_f64),
        Some(cfg.aes_blocks as f64)
    );
    assert_eq!(
        det.get("table_lookups").and_then(JsonValue::as_f64),
        Some(cfg.table_lookups as f64)
    );
    assert_eq!(
        det.get("e2e_accesses").and_then(JsonValue::as_f64),
        Some((cfg.accesses_per_shard * cfg.shards as u64) as f64)
    );
    assert_eq!(
        det.get("pooled_matches_serial"),
        Some(&JsonValue::Bool(true))
    );
    assert_eq!(
        det.get("backends_match"),
        Some(&JsonValue::Bool(true)),
        "fast and hardened backends diverged"
    );
    for checksum in [
        "aes_checksum",
        "aes_batched_checksum",
        "table_checksum",
        "e2e_checksum",
        "e2e_batched_checksum",
    ] {
        let value = det
            .get(checksum)
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("{checksum} missing"));
        assert!(
            value.starts_with("0x") && value.len() == 18,
            "{checksum} must be a fixed-width hex literal, got {value}"
        );
    }

    let timing = parsed.get("timing").expect("timing section");
    for rate in [
        "aes_blocks_per_s",
        "aes_fast_blocks_per_s",
        "aes_hardened_blocks_per_s",
        "table_lookups_per_s",
        "e2e_serial_accesses_per_s",
        "e2e_pooled_accesses_per_s",
        "e2e_batched_fast_accesses_per_s",
        "e2e_batched_hardened_accesses_per_s",
    ] {
        let value = timing
            .get(rate)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("{rate} missing"));
        assert!(value > 0.0, "{rate} must be positive, got {value}");
    }
}

#[test]
fn deterministic_line_is_identical_across_pool_widths() {
    let serial = run_tiny(1).deterministic_json();
    let pooled = run_tiny(4).deterministic_json();
    assert_eq!(
        serial, pooled,
        "pool width leaked into deterministic output"
    );
    // The line itself is single-line JSON, fit for diffing in CI.
    assert!(!serial.contains('\n'));
    parse_json_line(&serial).expect("deterministic line must parse");
}
