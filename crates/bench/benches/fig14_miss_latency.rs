//! Figure 14: average LLC miss latency under each scheme.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig14_miss_latency
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig14_miss_latency   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig14");
}
