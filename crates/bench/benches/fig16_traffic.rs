//! Figure 16: RMCC memory traffic overhead vs Morphable, split by L0/L1 budgets.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig16_traffic
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig16_traffic   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig16");
}
