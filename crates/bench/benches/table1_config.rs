//! Table I: the full system configuration.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench table1_config
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench table1_config   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("table1");
}
