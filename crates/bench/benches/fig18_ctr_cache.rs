//! Figure 18: RMCC vs Morphable across counter-cache sizes.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig18_ctr_cache
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig18_ctr_cache   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig18");
}
