//! Figure 13: performance of SC-64 / Morphable / RMCC normalized to non-secure.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig13_performance
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig13_performance   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig13");
}
