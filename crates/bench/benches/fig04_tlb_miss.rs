//! Figure 4: TLB misses per LLC miss under 4 KB and 2 MB pages.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig04_tlb_miss
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig04_tlb_miss   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig04");
}
