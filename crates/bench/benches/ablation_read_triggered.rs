//! Ablation: value of read-triggered memoization-aware updates (§IV-C1).
//!
//! ```text
//! cargo bench -p rmcc-bench --bench ablation_read_triggered
//! ```

fn main() {
    rmcc_bench::bench_main("ablation");
}
