//! Figure 21: memoization hit rate under group sizes 4 / 8 / 16.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig21_group_hit
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig21_group_hit   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig21");
}
