//! Figure 19: memoization hit rate under 1% / 2% / 8% traffic budgets.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig19_budget_hit
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig19_budget_hit   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig19");
}
