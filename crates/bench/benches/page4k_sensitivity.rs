//! Extension: Morphable counter-miss rate under 4 KB vs 2 MB pages (§III).
//!
//! ```text
//! cargo bench -p rmcc-bench --bench page4k_sensitivity
//! ```

fn main() {
    rmcc_bench::bench_main("page4k");
}
