//! Figure 20: traffic overhead under 1% / 2% / 8% traffic budgets.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig20_budget_traffic
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig20_budget_traffic   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig20");
}
