//! Section IV-D2: maximum counter value growth, RMCC vs Morphable.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench maxctr_growth
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench maxctr_growth   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("maxctr");
}
