//! Figure 12: bandwidth utilization breakdown under Morphable Counters.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig12_bandwidth
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig12_bandwidth   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig12");
}
