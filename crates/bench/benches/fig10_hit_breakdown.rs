//! Figure 10: memoization hit rate for counter misses, groups vs MRU values.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig10_hit_breakdown
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig10_hit_breakdown   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig10");
}
