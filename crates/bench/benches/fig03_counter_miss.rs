//! Figure 3: counter-cache misses per LLC miss under Morphable Counters.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig03_counter_miss
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig03_counter_miss   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig03");
}
