//! Criterion micro-benchmarks for the hot primitives: the software AES the
//! functional engine runs, the carry-less multiplier RMCC adds, the
//! memoization-table operations on the MC's critical path, and the
//! simulator kernels (cache access, DRAM transaction, counter encode).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rmcc_cache::set_assoc::SetAssocCache;
use rmcc_core::rmcc::{Rmcc, RmccConfig};
use rmcc_core::table::{MemoizationTable, TableConfig};
use rmcc_crypto::aes::Aes;
use rmcc_crypto::clmul::{clmul128, clmul_truncate_mid};
use rmcc_crypto::mac::{compute_mac, MacKeys};
use rmcc_crypto::otp::{KeySet, OtpPipeline, RmccOtp, SgxOtp};
use rmcc_dram::channel::{Channel, ReqKind, TrafficClass};
use rmcc_dram::config::DramConfig;
use rmcc_secmem::counters::{CounterBlock, CounterOrg};

fn crypto(c: &mut Criterion) {
    let aes128 = Aes::new_128(&[7u8; 16]);
    let aes256 = Aes::new_256(&[7u8; 32]);
    c.bench_function("aes128_block", |b| {
        let mut x = 0u128;
        b.iter(|| {
            x = aes128.encrypt_u128(black_box(x));
            x
        })
    });
    c.bench_function("aes256_block", |b| {
        let mut x = 0u128;
        b.iter(|| {
            x = aes256.encrypt_u128(black_box(x));
            x
        })
    });
    c.bench_function("clmul128", |b| {
        b.iter(|| clmul128(black_box(0x0123_4567_89ab_cdef), black_box(0xfedc_ba98)))
    });
    c.bench_function("clmul_truncate_mid", |b| {
        b.iter(|| clmul_truncate_mid(black_box(u128::MAX / 3), black_box(u128::MAX / 7)))
    });
    let keys = KeySet::from_master(1);
    let sgx = SgxOtp::new(keys.clone());
    let rmcc = RmccOtp::new(keys);
    c.bench_function("otp_block_pads_sgx", |b| {
        b.iter(|| sgx.block_pads(black_box(0x1234), black_box(42)))
    });
    c.bench_function("otp_block_pads_rmcc", |b| {
        b.iter(|| rmcc.block_pads(black_box(0x1234), black_box(42)))
    });
    let mac_keys = MacKeys::from_seed(5);
    let block = [0xa5u8; 64];
    c.bench_function("mac_compute", |b| {
        b.iter(|| compute_mac(&mac_keys, black_box(&block), black_box(99)))
    });
}

fn table(c: &mut Criterion) {
    let mut t = MemoizationTable::new(TableConfig::paper());
    for i in 0..16 {
        t.insert_group(i * 1000);
    }
    c.bench_function("memo_table_lookup_hit", |b| {
        b.iter(|| t.lookup(black_box(5_003)))
    });
    c.bench_function("memo_table_lookup_miss", |b| {
        b.iter(|| t.lookup(black_box(123_456)))
    });
    c.bench_function("memo_nearest_above", |b| {
        b.iter(|| t.nearest_memoized_above(black_box(4_500)))
    });
    let mut rmcc = Rmcc::new(RmccConfig::paper());
    rmcc.seed_group(0, 1_000);
    let mut cb = CounterBlock::new(CounterOrg::Morphable128);
    c.bench_function("rmcc_update_counter", |b| {
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % 128;
            rmcc.update_counter(0, &mut cb, black_box(slot), false)
        })
    });
}

fn substrate(c: &mut Criterion) {
    let mut cache = SetAssocCache::with_capacity(128 << 10, 64, 32);
    c.bench_function("counter_cache_access", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 97) % 10_000;
            cache.access(black_box(a), false)
        })
    });
    let mut dram = Channel::new(DramConfig::table1());
    c.bench_function("dram_transaction", |b| {
        let mut t = 0;
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x1_0040);
            let done = dram.access(
                t,
                black_box(addr % (1 << 37)),
                ReqKind::Read,
                TrafficClass::Data,
            );
            t = done.done;
            done
        })
    });
    c.bench_function("morphable_try_write", |b| {
        let mut cb = CounterBlock::new(CounterOrg::Morphable128);
        let mut v = 0u64;
        let mut slot = 0usize;
        b.iter(|| {
            slot = (slot + 1) % 128;
            v += 1;
            if cb.try_write(slot, v).is_err() {
                cb.relevel(v + 1);
                v += 1;
            }
        })
    });
}

criterion_group!(benches, crypto, table, substrate);
criterion_main!(benches);
