//! Figure 22: traffic overhead under group sizes 4 / 8 / 16.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig22_group_traffic
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig22_group_traffic   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig22");
}
