//! Related-work comparison (§VII): PoisonIvy-style speculative verification
//! vs RMCC over Morphable Counters.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench related_work_speculation
//! ```

fn main() {
    rmcc_bench::bench_main("relwork");
}
