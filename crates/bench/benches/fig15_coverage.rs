//! Figure 15: average blocks covered per memoized counter value.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig15_coverage
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig15_coverage   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig15");
}
