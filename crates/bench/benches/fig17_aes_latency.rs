//! Figure 17: RMCC vs Morphable under 15 ns and 22 ns AES latencies.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench fig17_aes_latency
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench fig17_aes_latency   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("fig17");
}
