//! The 92% headline: fraction of counter misses accelerated by RMCC.
//!
//! ```text
//! cargo bench -p rmcc-bench --bench accelerated_misses
//! RMCC_SCALE=small cargo bench -p rmcc-bench --bench accelerated_misses   # paper-scale
//! ```

fn main() {
    rmcc_bench::bench_main("accel");
}
