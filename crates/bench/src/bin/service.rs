//! Sustained-load service benchmark.
//!
//! ```text
//! cargo run --release -p rmcc-bench --bin service [tiny|small|full]
//! ```
//!
//! Drives the serving corpus's key-value mix through the sharded
//! `SecureMemoryService` batched API — a serial-reference pass, a pooled
//! pass, and a record-once/replay-many pass through the compact trace
//! codec over the identical workload — then writes the full report to
//! `BENCH_service.json` in the current directory and prints one
//! `deterministic: {...}` line to stdout.
//!
//! The deterministic line carries only counts, checksums, and memoization
//! tallies: it is byte-identical across runs, hosts, and `RMCC_JOBS`
//! widths, so CI diffs it between a serial and a pooled invocation —
//! proving the concurrent service computes exactly the serial results.
//! Timing fields live only in the JSON and vary run to run.

use rmcc_bench::scale_from;
use rmcc_bench::service;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match scale_from(args.first().map(String::as_str)) {
        Ok(scale) => scale,
        Err(err) => {
            eprintln!("service: {err}");
            std::process::exit(2);
        }
    };
    let jobs = rmcc_secmem::service::jobs_from_env();

    eprintln!("service: scale = {scale}, jobs = {jobs} (RMCC_JOBS=n overrides)");
    let report = service::run(scale, jobs);

    let json = report.to_json();
    // Self-check: the emitted report must parse with the repo's own strict
    // JSON reader before we write it anywhere.
    let parsed = match rmcc_telemetry::export::parse_json_line(&json) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("service: emitted JSON failed to parse: {err}");
            std::process::exit(1);
        }
    };
    if parsed.get("schema").and_then(|v| v.as_str()) != Some("rmcc-bench-service-v2") {
        eprintln!("service: emitted JSON is missing the schema marker");
        std::process::exit(1);
    }

    let path = "BENCH_service.json";
    if let Err(err) = std::fs::write(path, &json) {
        eprintln!("service: failed to write {path}: {err}");
        std::process::exit(1);
    }

    println!("deterministic: {}", report.deterministic_json());
    eprintln!(
        "service: {} shards, {} regions  serial {:.0}/s  sustained {:.0}/s  → {path}",
        report.shards,
        report.regions,
        report.serial.ops_per_s(),
        report.pooled.ops_per_s(),
    );
    if !report.pooled_matches_serial() {
        eprintln!("service: pooled results diverged from the serial reference");
        std::process::exit(1);
    }
    if !report.trace.matches_live {
        eprintln!("service: trace replay diverged from the live stream");
        std::process::exit(1);
    }
}
