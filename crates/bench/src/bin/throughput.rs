//! Wall-clock hot-path throughput benchmark.
//!
//! ```text
//! cargo run --release -p rmcc-bench --bin throughput [tiny|small|full]
//! ```
//!
//! Measures host-side throughput of the three hot-path components — raw
//! AES-128 encryption, memoization-table lookups, and end-to-end secure
//! reads+writes (serial and pooled across `RMCC_JOBS` workers) — then
//! writes the full report to `BENCH_hotpath.json` in the current
//! directory and prints one `deterministic: {...}` line to stdout.
//!
//! The deterministic line carries only operation counts and checksums: it
//! is byte-identical across runs, hosts, and pool widths, so CI diffs it
//! between `RMCC_JOBS=1` and a wider run to prove the pooled path computes
//! the same results. Timing fields live only in the JSON and vary run to
//! run.

use rmcc_bench::scale_from;
use rmcc_bench::throughput;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match scale_from(args.first().map(String::as_str)) {
        Ok(scale) => scale,
        Err(err) => {
            eprintln!("throughput: {err}");
            std::process::exit(2);
        }
    };
    let jobs = std::env::var("RMCC_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));

    eprintln!("throughput: scale = {scale}, jobs = {jobs} (RMCC_JOBS=n overrides)");
    let report = throughput::run(scale, jobs);

    let json = report.to_json();
    // Self-check: the emitted report must parse with the repo's own strict
    // JSON reader before we write it anywhere.
    let parsed = match rmcc_telemetry::export::parse_json_line(&json) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("throughput: emitted JSON failed to parse: {err}");
            std::process::exit(1);
        }
    };
    if parsed.get("schema").and_then(|v| v.as_str()) != Some("rmcc-bench-hotpath-v2") {
        eprintln!("throughput: emitted JSON is missing the schema marker");
        std::process::exit(1);
    }

    let path = "BENCH_hotpath.json";
    if let Err(err) = std::fs::write(path, &json) {
        eprintln!("throughput: failed to write {path}: {err}");
        std::process::exit(1);
    }

    println!("deterministic: {}", report.deterministic_json());
    eprintln!(
        "throughput: aes {:.0}/s (fast batched {:.0}/s, hardened batched {:.0}/s)  \
         table {:.0}/s  e2e serial {:.0}/s  e2e pooled {:.0}/s  \
         e2e batched fast {:.0}/s / hardened {:.0}/s  → {path}",
        report.aes.ops_per_s(),
        report.aes_fast.ops_per_s(),
        report.aes_hardened.ops_per_s(),
        report.table.ops_per_s(),
        report.e2e_serial.ops_per_s(),
        report.e2e_pooled.ops_per_s(),
        report.e2e_batched_fast.ops_per_s(),
        report.e2e_batched_hardened.ops_per_s(),
    );
    if report.e2e_serial.checksum != report.e2e_pooled.checksum {
        eprintln!("throughput: pooled end-to-end checksum diverged from serial");
        std::process::exit(1);
    }
    if !report.backends_match() {
        eprintln!("throughput: fast and hardened backends diverged on a batched workload");
        std::process::exit(1);
    }
}
