//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p rmcc-bench --bin figures [tiny|small|full] [figNN ...]
//! ```
//!
//! With no figure ids, every known figure runs. Output is the same series
//! the paper plots (rows = workloads, columns = bars/lines). Workloads run
//! in parallel across `RMCC_JOBS` workers (default: all host cores);
//! output is byte-identical at any job count.

use rmcc_bench::{run_figure, scale_from, ALL_FIGURES};
use rmcc_sim::experiments::Experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale_arg = args
        .iter()
        .map(String::as_str)
        .find(|a| matches!(*a, "tiny" | "small" | "full"));
    let scale = match scale_from(scale_arg) {
        Ok(scale) => scale,
        Err(err) => {
            eprintln!("figures: {err}");
            std::process::exit(2);
        }
    };
    let requested: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !matches!(*a, "tiny" | "small" | "full"))
        .collect();
    let ids: Vec<&str> = if requested.is_empty() {
        ALL_FIGURES.to_vec()
    } else {
        requested
    };

    eprintln!("scale = {scale}; building input graph…");
    let t0 = std::time::Instant::now();
    let ex = Experiments::new(scale);
    eprintln!(
        "graph ready in {:.1}s; {} worker(s) (RMCC_JOBS=n overrides)",
        t0.elapsed().as_secs_f64(),
        ex.jobs()
    );

    for id in ids {
        let t = std::time::Instant::now();
        match run_figure(&ex, id) {
            Ok(series) => {
                for s in series {
                    println!("{s}");
                }
            }
            Err(err) => {
                eprintln!("figures: {err}");
                std::process::exit(2);
            }
        }
        eprintln!("[{id} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
}
