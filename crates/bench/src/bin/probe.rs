//! Quick calibration probe: one workload through all four schemes.
//!
//! ```text
//! cargo run --release -p rmcc-bench --bin probe [tiny|small|full] [workload]
//! ```

use rmcc_bench::scale_from;
use rmcc_sim::config::{Scheme, SystemConfig};
use rmcc_sim::detailed::run_detailed;
use rmcc_workloads::workload::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match scale_from(args.first().map(String::as_str)) {
        Ok(scale) => scale,
        Err(err) => {
            eprintln!("probe: {err}");
            std::process::exit(2);
        }
    };
    let name = args.get(1).map(String::as_str).unwrap_or("canneal");
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .unwrap_or(Workload::Canneal);
    eprintln!("probe: {workload} @ {scale}");
    let non = run_detailed(
        workload,
        scale,
        None,
        &SystemConfig::detailed_scaled(Scheme::NonSecure),
    )
    .expect("no graph needed");
    println!(
        "{:<11} {:>10.2} µs  miss-lat {:>6.1} ns",
        "Non-secure",
        non.elapsed_ps as f64 / 1e6,
        non.mean_miss_latency_ns
    );
    for scheme in [Scheme::Sc64, Scheme::Morphable, Scheme::Rmcc] {
        let t = std::time::Instant::now();
        let r = run_detailed(
            workload,
            scale,
            None,
            &SystemConfig::detailed_scaled(scheme),
        )
        .expect("no graph needed");
        println!(
            "{:<11} {:>10.2} µs  miss-lat {:>6.1} ns  perf {:>6.2}%  ctr-miss {:>5.1}%  memo-hit(all) {:>5.1}%  accel {:>5.1}%  [{:.0}s]",
            scheme.to_string(),
            r.elapsed_ps as f64 / 1e6,
            r.mean_miss_latency_ns,
            100.0 * r.normalized_perf(&non),
            100.0 * r.meta.counter_miss_rate(),
            100.0 * r.meta.memo_l0.all_hit_rate(),
            100.0 * r.meta.accelerated_rate(),
            t.elapsed().as_secs_f64(),
        );
    }
}
