//! Benchmark harnesses for the RMCC reproduction.
//!
//! Every table and figure in the paper's evaluation has a runnable target:
//!
//! * `cargo bench -p rmcc-bench` runs Criterion micro-benchmarks (AES,
//!   clmul, table lookup, …) plus a scaled version of every figure.
//! * `cargo run --release -p rmcc-bench --bin figures [tiny|small|full] [figNN …]`
//!   regenerates the figures at a chosen scale and prints the same series
//!   the paper plots.
//! * `cargo run --release -p rmcc-bench --bin throughput [tiny|small|full]`
//!   measures wall-clock hot-path throughput and writes `BENCH_hotpath.json`.
//!
//! Figure harness logic lives in [`rmcc_sim::experiments`]; this crate only
//! drives it and formats output. Per-workload cells fan out across a
//! worker pool sized by `RMCC_JOBS` (default: all host cores); results are
//! byte-identical at any width.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod service;
pub mod throughput;

use rmcc_sim::experiments::{serving_scenarios, table1, Experiments, Series};
use rmcc_workloads::workload::Scale;

/// Parses a scale name, defaulting from the `RMCC_SCALE` environment
/// variable and finally to `tiny`.
///
/// Unknown names are an error, not a silent fallback: a typo like `"ful"`
/// must not quietly run a tiny-scale benchmark and corrupt a comparison.
pub fn scale_from(arg: Option<&str>) -> Result<Scale, String> {
    let name = arg
        .map(str::to_string)
        .or_else(|| std::env::var("RMCC_SCALE").ok())
        .unwrap_or_else(|| "tiny".to_string());
    match name.as_str() {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!(
            "unknown scale {other:?} (valid scales: tiny, small, full)"
        )),
    }
}

/// Every figure id this harness knows, in paper order; `serving` is the
/// repo's own serving-corpus extension, not a paper figure.
pub const ALL_FIGURES: [&str; 18] = [
    "table1", "fig03", "fig04", "fig10", "fig12", "fig13+14", "fig15", "fig16", "fig17", "fig18",
    "fig19+20", "fig21+22", "maxctr", "accel", "page4k", "ablation", "relwork", "serving",
];

/// Runs one figure by id and returns its printable series (empty for
/// `table1`, which is plain text), or an error naming the known ids when
/// the id is not recognised.
pub fn run_figure(ex: &Experiments, id: &str) -> Result<Vec<Series>, String> {
    let series = match id {
        "table1" => {
            println!("{}", table1());
            vec![]
        }
        "fig03" => vec![ex.fig03_counter_miss()],
        "fig04" => vec![ex.fig04_tlb()],
        "fig10" => vec![ex.fig10_hit_breakdown()],
        "fig12" => vec![ex.fig12_bandwidth()],
        "fig13+14" => {
            let (a, b) = ex.fig13_fig14();
            vec![a, b]
        }
        "fig13" | "fig14" => {
            let (a, b) = ex.fig13_fig14();
            if id == "fig13" {
                vec![a]
            } else {
                vec![b]
            }
        }
        "fig15" => vec![ex.fig15_coverage()],
        "fig16" => vec![ex.fig16_traffic()],
        "fig17" => vec![ex.fig17_aes_latency()],
        "fig18" => vec![ex.fig18_counter_cache()],
        "fig19+20" => {
            let (a, b) = ex.fig19_fig20();
            vec![a, b]
        }
        "fig19" | "fig20" => {
            let (a, b) = ex.fig19_fig20();
            if id == "fig19" {
                vec![a]
            } else {
                vec![b]
            }
        }
        "fig21+22" => {
            let (a, b) = ex.fig21_fig22();
            vec![a, b]
        }
        "fig21" | "fig22" => {
            let (a, b) = ex.fig21_fig22();
            if id == "fig21" {
                vec![a]
            } else {
                vec![b]
            }
        }
        "maxctr" => vec![ex.max_counter_growth()],
        "serving" => vec![serving_scenarios()],
        "accel" => vec![ex.accelerated_misses()],
        "page4k" => vec![ex.page_size_sensitivity()],
        "relwork" => vec![ex.related_work_speculation()],
        "ablation" => vec![ex.ablation_read_triggered()],
        other => {
            return Err(format!(
                "unknown figure id {other:?} (known: {ALL_FIGURES:?})"
            ))
        }
    };
    Ok(series)
}

/// Entry point shared by the per-figure bench targets: builds the context
/// at the `RMCC_SCALE` env scale (default `tiny` so `cargo bench` stays
/// affordable; `small`/`full` regenerate publication-scale numbers), runs
/// one figure, and prints its series.
pub fn bench_main(id: &str) {
    let scale = match scale_from(None) {
        Ok(scale) => scale,
        Err(err) => {
            eprintln!("[{id}] {err}");
            std::process::exit(2);
        }
    };
    eprintln!("[{id}] scale = {scale} (set RMCC_SCALE=small|full for paper-scale runs)");
    let t0 = std::time::Instant::now();
    let ex = Experiments::new(scale);
    eprintln!("[{id}] jobs = {} (set RMCC_JOBS=n to override)", ex.jobs());
    match run_figure(&ex, id) {
        Ok(series) => {
            for s in series {
                println!("{s}");
            }
        }
        Err(err) => {
            eprintln!("[{id}] {err}");
            std::process::exit(2);
        }
    }
    eprintln!("[{id}] done in {:.1}s", t0.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(scale_from(Some("full")), Ok(Scale::Full));
        assert_eq!(scale_from(Some("small")), Ok(Scale::Small));
        assert_eq!(scale_from(Some("tiny")), Ok(Scale::Tiny));
    }

    #[test]
    fn scale_typos_are_rejected_with_the_valid_names() {
        for typo in ["ful", "smal", "bogus", "TINY"] {
            let err = scale_from(Some(typo)).expect_err("typo must not map to a scale");
            assert!(err.contains(typo), "error names the offender: {err}");
            assert!(
                err.contains("tiny") && err.contains("small") && err.contains("full"),
                "error lists the valid scales: {err}"
            );
        }
    }

    #[test]
    fn every_listed_figure_runs_at_tiny() {
        let ex = Experiments::new(Scale::Tiny);
        // The cheap, single-config figures; sweeps are covered by their own
        // bench targets.
        for id in ["table1", "fig03", "fig04", "fig15", "accel", "serving"] {
            assert!(run_figure(&ex, id).is_ok());
        }
    }

    #[test]
    fn unknown_figure_is_an_error_not_a_panic() {
        let ex = Experiments::new(Scale::Tiny);
        let err = run_figure(&ex, "fig99").expect_err("fig99 is not a figure");
        assert!(err.contains("fig99"), "{err}");
        assert!(err.contains("table1"), "error lists known ids: {err}");
    }
}
