//! Sustained-load service benchmark: the serving corpus's key-value mix
//! driven through the sharded [`SecureMemoryService`]'s batched `submit`
//! API.
//!
//! Where [`crate::throughput`] measures the single-engine hot path, this
//! harness measures the serving-scale question: aggregate accesses/s when
//! many tenants' traffic — skewed the way real tenant populations are —
//! lands on one service as batches. The stream is
//! [`rmcc_workloads::corpus`]'s key-value serving scenario (zipfian tenant
//! and key popularity, pure integer arithmetic, bit-identical on every
//! host), sized in *keyed regions* — one counter-coverage group per region,
//! ~1 M at small scale and up.
//!
//! Two passes run over the identical pre-generated workload: `submit` at
//! width 1 (the serial reference) and at the requested `RMCC_JOBS` width.
//! The deterministic line carries access counts, the order-sensitive
//! result checksum, the AES backend name, the trace-codec footprint, and
//! the memoization tallies — all byte-identical across runs, hosts, and
//! pool widths — so CI diffs it between a serial and a pooled invocation
//! exactly as it does for `BENCH_hotpath.json`. Timing lives only in the
//! JSON (`BENCH_service.json`).
//!
//! Two lifecycle rows ride in the timing section: a **degraded-mode** pass
//! (every shard forced `Degraded`, so writes take the counted full-AES
//! fail-safe path and bypass the memo table — the floor a faulted tenant
//! pays while the breaker decides) and a **recovery-cost** row (one shard
//! quarantined and rebuilt, timing the integrity-tree + MAC re-verification
//! pass). Neither touches the deterministic line.
//!
//! A **record-once / replay-many** stage exercises the compact on-disk
//! trace codec: the scenario is encoded to a temp file once (timed), then
//! decoded back several times (timed), with the first replay checked
//! event-for-event against the live stream. The encoded bytes/event lands
//! in the deterministic line, so CI pins the codec's footprint too.

use std::time::Instant;

use rmcc_core::shard::{aggregate_stats, memo_policy, MemoHandle, ShardMemoConfig, ShardMemoStats};
use rmcc_crypto::aes::Backend;
use rmcc_secmem::service::{
    digest_results, Access, HealthConfig, SecureMemoryService, ServiceConfig,
};
use rmcc_sim::service_run::access_for_event;
use rmcc_workloads::codec::{reader_from_path, record_to_path};
use rmcc_workloads::corpus::{KvServingConfig, Scenario};
use rmcc_workloads::trace::{TraceEvent, TraceSource, VecSink};
use rmcc_workloads::workload::Scale;

use crate::throughput::ComponentResult;

/// Workload geometry for one scale. Every field participates in the
/// deterministic result; none depend on the worker width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceBenchConfig {
    /// Shards in the service under test.
    pub shards: usize,
    /// Distinct tenants (zipfian popularity).
    pub tenants: u64,
    /// Keyed regions per tenant (zipfian popularity within the tenant).
    pub regions_per_tenant: u64,
    /// Batches submitted.
    pub batches: u64,
    /// Accesses per batch.
    pub batch_size: usize,
    /// Probability, in per-mille, that an access is a write.
    pub write_permille: u32,
    /// Protected-region capacity in bytes (spans every tenant's regions;
    /// the arenas are sparse so only touched regions materialize).
    pub data_bytes: u64,
    /// Stream seed.
    pub seed: u64,
}

impl ServiceBenchConfig {
    /// Geometry per scale. `tiny` is the CI smoke (a few thousand
    /// accesses); `small` covers ~1 M keyed regions in a few seconds;
    /// `full` pushes ~2 M accesses over the same keyspace.
    pub fn from_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => ServiceBenchConfig {
                shards: 4,
                tenants: 64,
                regions_per_tenant: 16,
                batches: 12,
                batch_size: 256,
                write_permille: 250,
                data_bytes: 1 << 26,
                seed: 0x5EC5_7AFF_0000_0001,
            },
            Scale::Small => ServiceBenchConfig {
                shards: 8,
                tenants: 4_096,
                regions_per_tenant: 256,
                batches: 48,
                batch_size: 4_096,
                write_permille: 250,
                data_bytes: 1 << 33,
                seed: 0x5EC5_7AFF_0000_0002,
            },
            Scale::Full => ServiceBenchConfig {
                shards: 16,
                tenants: 8_192,
                regions_per_tenant: 128,
                batches: 256,
                batch_size: 8_192,
                write_permille: 250,
                data_bytes: 1 << 33,
                seed: 0x5EC5_7AFF_0000_0003,
            },
        }
    }

    /// Total keyed regions in the keyspace.
    pub fn total_regions(&self) -> u64 {
        self.tenants * self.regions_per_tenant
    }

    /// Total accesses the workload submits.
    pub fn total_accesses(&self) -> u64 {
        self.batches * self.batch_size as u64
    }

    /// The corpus generator behind the bench stream: key-value serving over
    /// this geometry, one counter-coverage group per keyed region.
    pub fn corpus_scenario(&self, coverage: u64) -> Scenario {
        Scenario::KvServing(KvServingConfig {
            tenants: self.tenants,
            regions_per_tenant: self.regions_per_tenant,
            blocks_per_region: coverage.max(1),
            hot_blocks_per_region: 8,
            events: self.total_accesses(),
            write_permille: self.write_permille,
            churn_period: 0,
            seed: self.seed,
        })
    }
}

/// The benchmark's output: serial-reference and pooled passes over the
/// identical workload, plus the pooled pass's memoization tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBenchReport {
    /// Scale name the run was configured from.
    pub scale: String,
    /// Worker-pool width of the pooled pass.
    pub jobs: usize,
    /// Shards in the service under test.
    pub shards: usize,
    /// Keyed regions in the keyspace.
    pub regions: u64,
    /// Distinct tenants in the mix.
    pub tenants: u64,
    /// `submit` at width 1 over the workload.
    pub serial: ComponentResult,
    /// `submit` at the requested width over the same workload.
    pub pooled: ComponentResult,
    /// `submit` at the requested width with every shard forced `Degraded`
    /// (memo bypassed, counted full-AES fail-safe writes).
    pub degraded: ComponentResult,
    /// Wall-clock cost of one shard's quarantine → rebuild → readmit pass.
    pub recovery: RecoveryCost,
    /// Memoization tallies of the pooled pass, folded across shards.
    pub memo: ShardMemoStats,
    /// AES backend name every shard's key schedules used (`RMCC_BACKEND`).
    pub backend: &'static str,
    /// Record-once / replay-many results for the compact trace codec.
    pub trace: TraceRoundtrip,
}

/// Outcome of encoding the bench stream to the compact on-disk format once
/// and decoding it back several times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRoundtrip {
    /// Events in the recorded trace.
    pub events: u64,
    /// Total encoded file size, header included.
    pub total_bytes: u64,
    /// Seconds the single recording pass took.
    pub record_seconds: f64,
    /// Seconds all replay passes took together.
    pub replay_seconds: f64,
    /// Decode passes over the recorded file.
    pub replay_passes: u64,
    /// Whether the first replay reproduced the live stream event-for-event.
    pub matches_live: bool,
}

impl TraceRoundtrip {
    /// Average encoded bytes per event, header included (0 for an empty
    /// trace). Deterministic: a pure function of the stream.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.events as f64
        }
    }

    /// Events encoded per second (0 when the pass was too fast to time).
    pub fn record_events_per_s(&self) -> f64 {
        if self.record_seconds > 0.0 {
            self.events as f64 / self.record_seconds
        } else {
            0.0
        }
    }

    /// Events decoded per second across all replay passes (0 when too fast
    /// to time).
    pub fn replay_events_per_s(&self) -> f64 {
        if self.replay_seconds > 0.0 {
            (self.events * self.replay_passes) as f64 / self.replay_seconds
        } else {
            0.0
        }
    }
}

/// Timing of one shard's full rebuild (integrity-tree node refresh plus a
/// MAC re-verification sweep over every stored data block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryCost {
    /// Seconds the rebuild pass took.
    pub seconds: f64,
    /// Tree nodes whose images were re-derived from trusted counters.
    pub nodes_rebuilt: u64,
    /// Data blocks whose MACs re-verified against trusted state.
    pub data_verified: u64,
}

impl RecoveryCost {
    /// Re-verified data blocks per second (0 when the pass was too fast to
    /// time).
    pub fn blocks_per_s(&self) -> f64 {
        if self.seconds > 0.0 {
            // Lossless for any plausible block count.
            self.data_verified as f64 / self.seconds
        } else {
            0.0
        }
    }
}

impl ServiceBenchReport {
    /// The deterministic results as one canonical JSON line —
    /// byte-identical across runs, hosts, and pool widths.
    pub fn deterministic_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"rmcc-bench-service-v2\",",
                "\"backend\":\"{}\",",
                "\"shards\":{},\"regions\":{},\"tenants\":{},",
                "\"accesses\":{},\"result_checksum\":\"{:#018x}\",",
                "\"conformed_writes\":{},\"budget_ok\":{},",
                "\"pooled_matches_serial\":{},",
                "\"trace_events\":{},\"trace_bytes_per_event\":\"{:.2}\",",
                "\"replay_matches_live\":{}}}"
            ),
            self.backend,
            self.shards,
            self.regions,
            self.tenants,
            self.serial.ops,
            self.serial.checksum,
            self.memo.conformed_writes,
            self.memo.budget_ok,
            self.pooled_matches_serial(),
            self.trace.events,
            self.trace.bytes_per_event(),
            self.trace.matches_live,
        )
    }

    /// Whether the pooled pass reproduced the serial reference exactly.
    pub fn pooled_matches_serial(&self) -> bool {
        self.serial.checksum == self.pooled.checksum && self.serial.ops == self.pooled.ops
    }

    /// The full report (deterministic results + timing), the content of
    /// `BENCH_service.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"rmcc-bench-service-v2\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str("  \"deterministic\": ");
        out.push_str(&self.deterministic_json());
        out.push_str(",\n  \"timing\": {\n");
        out.push_str(&format!(
            "    \"serial_accesses_per_s\": {:.1},\n",
            self.serial.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"sustained_accesses_per_s\": {:.1},\n",
            self.pooled.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"degraded_accesses_per_s\": {:.1},\n",
            self.degraded.ops_per_s()
        ));
        out.push_str(&format!(
            "    \"rebuild_seconds\": {:.6},\n",
            self.recovery.seconds
        ));
        out.push_str(&format!(
            "    \"rebuild_nodes\": {},\n",
            self.recovery.nodes_rebuilt
        ));
        out.push_str(&format!(
            "    \"rebuild_blocks_verified\": {},\n",
            self.recovery.data_verified
        ));
        out.push_str(&format!(
            "    \"rebuild_blocks_per_s\": {:.1},\n",
            self.recovery.blocks_per_s()
        ));
        out.push_str(&format!(
            "    \"trace_record_events_per_s\": {:.1},\n",
            self.trace.record_events_per_s()
        ));
        out.push_str(&format!(
            "    \"trace_replay_events_per_s\": {:.1}\n",
            self.trace.replay_events_per_s()
        ));
        out.push_str("  }\n}\n");
        out
    }
}

/// Pre-generates the whole workload so the timed loop measures the service
/// alone, not stream synthesis. Returns both the raw events (for the trace
/// roundtrip to compare against) and the batched accesses.
fn generate_batches(
    cfg: &ServiceBenchConfig,
    coverage: u64,
) -> (Vec<TraceEvent>, Vec<Vec<Access>>) {
    let scenario = cfg.corpus_scenario(coverage);
    let events: Vec<TraceEvent> = scenario.events().collect();
    let batches = events
        .chunks(cfg.batch_size.max(1))
        .enumerate()
        .map(|(b, chunk)| {
            let base = (b * cfg.batch_size.max(1)) as u64;
            chunk
                .iter()
                .enumerate()
                .map(|(i, ev)| access_for_event(ev, base + i as u64))
                .collect()
        })
        .collect();
    (events, batches)
}

/// Records the bench stream to a temp file once, replays it several times,
/// and checks the first replay event-for-event against the live stream.
fn run_trace_roundtrip(
    cfg: &ServiceBenchConfig,
    coverage: u64,
    live: &[TraceEvent],
    scale: Scale,
) -> TraceRoundtrip {
    const REPLAY_PASSES: u64 = 3;
    let path = std::env::temp_dir().join(format!("rmcc_bench_service_{scale}.trc"));
    let start = Instant::now();
    let summary = match record_to_path(&path, &mut cfg.corpus_scenario(coverage)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("service bench: trace recording failed: {e}");
            return TraceRoundtrip {
                events: 0,
                total_bytes: 0,
                record_seconds: 0.0,
                replay_seconds: 0.0,
                replay_passes: 0,
                matches_live: false,
            };
        }
    };
    let record_seconds = start.elapsed().as_secs_f64();
    let mut matches_live = false;
    let start = Instant::now();
    for pass in 0..REPLAY_PASSES {
        let Ok(mut reader) = reader_from_path(&path) else {
            break;
        };
        if pass == 0 {
            // First replay decodes into memory and is checked exactly.
            let mut sink = VecSink::default();
            reader.stream(&mut sink);
            matches_live = reader.error().is_none() && sink.events == live;
        } else {
            let mut sink = rmcc_workloads::trace::CountingSink::default();
            reader.stream(&mut sink);
        }
    }
    let replay_seconds = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    TraceRoundtrip {
        events: summary.events,
        total_bytes: summary.total_bytes(),
        record_seconds,
        replay_seconds,
        replay_passes: REPLAY_PASSES,
        matches_live,
    }
}

/// Builds a fresh memoizing service for one pass, optionally with the
/// health lifecycle enabled.
fn build_service(
    cfg: &ServiceBenchConfig,
    health: Option<HealthConfig>,
) -> (SecureMemoryService, Vec<MemoHandle>) {
    let memo_cfg = {
        let mut m = ShardMemoConfig::paper().with_epoch(4_096);
        m.budget_fraction = 0.05;
        m
    };
    let mut svc_cfg = ServiceConfig::new(cfg.shards, cfg.data_bytes);
    if let Some(h) = health {
        svc_cfg = svc_cfg.with_health(h);
    }
    let mut handles = Vec::with_capacity(cfg.shards);
    let service = SecureMemoryService::with_policies(&svc_cfg, |_| {
        let (policy, handle) = memo_policy(&memo_cfg);
        handle.seed_groups([4]);
        handles.push(handle);
        policy
    });
    (service, handles)
}

/// Health thresholds that never trip and never roll a window: shards keep
/// whatever state the bench forces on them for an entire timed pass.
fn frozen_health() -> HealthConfig {
    HealthConfig {
        epoch_accesses: u64::MAX,
        degrade_faults: u64::MAX,
        quarantine_faults: u64::MAX,
        recover_epochs: u64::MAX,
        quarantine_epochs: u64::MAX,
    }
}

/// One pass: a fresh service, then the workload twice — an *untimed* warm
/// traversal that materializes every touched region's counters and tree
/// path (first-touch cost, not sustained cost), then the identical
/// workload timed. `ops` counts the timed traversal; the checksum folds
/// both traversals so the warm phase is pinned by CI too. The warm
/// traversal always runs at full shard width — the service's determinism
/// contract makes results width-invariant, so this only affects wall
/// clock.
fn run_pass(
    cfg: &ServiceBenchConfig,
    batches: &[Vec<Access>],
    jobs: usize,
) -> (ComponentResult, ShardMemoStats) {
    let (service, handles) = build_service(cfg, None);
    let mut checksum = 0u64;
    for batch in batches {
        let results = service.submit_with_jobs(batch, cfg.shards);
        checksum = checksum.rotate_left(9) ^ digest_results(&results);
    }
    let start = Instant::now();
    let mut ops = 0u64;
    for batch in batches {
        let results = service.submit_with_jobs(batch, jobs);
        checksum = checksum.rotate_left(9) ^ digest_results(&results);
        ops += results.len() as u64;
    }
    (
        ComponentResult {
            ops,
            seconds: start.elapsed().as_secs_f64(),
            checksum,
        },
        aggregate_stats(&handles),
    )
}

/// One degraded-mode pass: a fresh health-enabled service, an untimed warm
/// traversal, then every shard forced `Degraded` (frozen there — see
/// [`frozen_health`]) and the workload timed. Writes take the counted
/// full-AES fail-safe path and the memo table is bypassed, so this is the
/// floor a faulted tenant pays while the circuit breaker decides.
fn run_degraded_pass(
    cfg: &ServiceBenchConfig,
    batches: &[Vec<Access>],
    jobs: usize,
) -> ComponentResult {
    let (service, _handles) = build_service(cfg, Some(frozen_health()));
    let mut checksum = 0u64;
    for batch in batches {
        let results = service.submit_with_jobs(batch, cfg.shards);
        checksum = checksum.rotate_left(9) ^ digest_results(&results);
    }
    for shard in 0..cfg.shards {
        service.force_degraded(shard);
    }
    let start = Instant::now();
    let mut ops = 0u64;
    for batch in batches {
        let results = service.submit_with_jobs(batch, jobs);
        checksum = checksum.rotate_left(9) ^ digest_results(&results);
        ops += results.len() as u64;
    }
    ComponentResult {
        ops,
        seconds: start.elapsed().as_secs_f64(),
        checksum,
    }
}

/// Times one shard's quarantine → rebuild pass after the full workload has
/// materialized its state: integrity-tree images re-derived from trusted
/// counters, every stored data block's MAC re-verified.
fn run_recovery_pass(cfg: &ServiceBenchConfig, batches: &[Vec<Access>]) -> RecoveryCost {
    let (service, _handles) = build_service(cfg, Some(frozen_health()));
    for batch in batches {
        service.submit_with_jobs(batch, cfg.shards);
    }
    service.force_quarantine(0);
    let start = Instant::now();
    let report = service.try_rebuild(0).unwrap_or_default();
    RecoveryCost {
        seconds: start.elapsed().as_secs_f64(),
        nodes_rebuilt: report.nodes_rebuilt,
        data_verified: report.data_verified,
    }
}

/// Runs the sustained-load benchmark: serial reference, pooled pass,
/// degraded-mode pass, and recovery-cost probe over the identical
/// workload.
pub fn run(scale: Scale, jobs: usize) -> ServiceBenchReport {
    let cfg = ServiceBenchConfig::from_scale(scale);
    let coverage = rmcc_secmem::counters::CounterOrg::Morphable128.coverage() as u64;
    let (events, batches) = generate_batches(&cfg, coverage);
    let (serial, _) = run_pass(&cfg, &batches, 1);
    let (pooled, memo) = run_pass(&cfg, &batches, jobs.max(1));
    let degraded = run_degraded_pass(&cfg, &batches, jobs.max(1));
    let recovery = run_recovery_pass(&cfg, &batches);
    let trace = run_trace_roundtrip(&cfg, coverage, &events, scale);
    ServiceBenchReport {
        scale: scale.to_string(),
        jobs: jobs.max(1),
        shards: cfg.shards,
        regions: cfg.total_regions(),
        tenants: cfg.tenants,
        serial,
        pooled,
        degraded,
        recovery,
        memo,
        backend: Backend::from_env().name(),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_deterministic_and_width_invariant() {
        let a = run(Scale::Tiny, 1);
        let b = run(Scale::Tiny, 4);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert!(a.pooled_matches_serial());
        assert!(b.pooled_matches_serial());
        assert_eq!(
            a.serial.ops,
            ServiceBenchConfig::from_scale(Scale::Tiny).total_accesses()
        );
    }

    #[test]
    fn tiny_run_memoizes_and_respects_budget() {
        let r = run(Scale::Tiny, 2);
        assert!(r.memo.conformed_writes > 0, "{:?}", r.memo);
        assert!(r.memo.budget_ok);
    }

    #[test]
    fn emitted_json_parses_with_repo_reader() {
        let r = run(Scale::Tiny, 2);
        let parsed = rmcc_telemetry::export::parse_json_line(&r.to_json()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("rmcc-bench-service-v2")
        );
        let det = rmcc_telemetry::export::parse_json_line(&r.deterministic_json())
            .expect("valid deterministic line");
        assert!(det.get("pooled_matches_serial").is_some());
        assert_eq!(
            det.get("backend").and_then(|v| v.as_str()),
            Some(Backend::from_env().name())
        );
        assert!(det.get("trace_bytes_per_event").is_some());
    }

    #[test]
    fn trace_roundtrip_matches_live_and_stays_compact() {
        let r = run(Scale::Tiny, 1);
        assert!(
            r.trace.matches_live,
            "replayed stream diverged: {:?}",
            r.trace
        );
        assert_eq!(
            r.trace.events,
            ServiceBenchConfig::from_scale(Scale::Tiny).total_accesses()
        );
        assert!(
            r.trace.bytes_per_event() <= 4.0,
            "encoding regressed past 4 bytes/event: {:.2}",
            r.trace.bytes_per_event()
        );
        let json = r.to_json();
        assert!(json.contains("trace_record_events_per_s"));
        assert!(json.contains("trace_replay_events_per_s"));
    }

    #[test]
    fn lifecycle_rows_are_populated() {
        let r = run(Scale::Tiny, 2);
        assert_eq!(
            r.degraded.ops,
            ServiceBenchConfig::from_scale(Scale::Tiny).total_accesses(),
            "degraded pass serves the whole workload"
        );
        assert!(r.recovery.nodes_rebuilt > 0, "{:?}", r.recovery);
        assert!(r.recovery.data_verified > 0, "{:?}", r.recovery);
        let json = r.to_json();
        for key in [
            "degraded_accesses_per_s",
            "rebuild_seconds",
            "rebuild_nodes",
            "rebuild_blocks_verified",
            "rebuild_blocks_per_s",
        ] {
            assert!(json.contains(key), "timing row {key} missing");
        }
        assert!(
            !r.deterministic_json().contains("degraded"),
            "lifecycle rows are timing-only"
        );
    }
}
